#!/usr/bin/env python3
"""Snapshots and time travel on the versioned object store.

DAOS objects are transactional and versioned (§2.4): every write commits
at an epoch, and reads can target any past epoch.  This example shows the
capability end to end through ROS2:

1. write three versions of a model config file,
2. capture the container epoch after each version (a snapshot),
3. read the file *as of* each snapshot — time travel — while the head
   keeps moving,
4. show an atomic multi-file transaction (rename + metadata) that a
   snapshot either sees entirely or not at all.

Run:  python examples/snapshot_time_travel.py
"""

from repro.core import Ros2Config, Ros2System
from repro.sim import Environment


def main() -> None:
    env = Environment()
    system = Ros2System(env, Ros2Config(transport="rdma", client="host",
                                        data_mode=True))
    token = system.register_tenant("historian")

    def demo(env):
        yield from system.start()
        session = yield from system.open_session(token)
        state = system.service.sessions[session.session_id]
        ns, ctx, cont = state.ns, state.svc_ctx, state.cont

        f = yield from ns.create(ctx, "/config.yaml")
        snapshots = {}
        for i, blob in enumerate([b"lr: 1e-3\n", b"lr: 5e-4\n", b"lr: 1e-4\n"]):
            yield from f.write(ctx, 0, data=blob)
            snapshots[f"v{i + 1}"] = yield from cont.query_epoch(ctx)
            print(f"wrote v{i + 1} -> snapshot at epoch {snapshots[f'v{i + 1}']}")

        # Time travel: read the file as of each snapshot.
        for name, epoch in snapshots.items():
            data = yield from f.read(ctx, 0, 9, epoch=epoch)
            print(f"  read@{name} (epoch {epoch}): {data!r}")
        head = yield from f.read(ctx, 0, 9)
        print(f"  read@head: {head!r}")

        # Atomic multi-op transaction: the namespace move either happened
        # or it didn't — no snapshot can see a half-rename.
        before_rename = yield from cont.query_epoch(ctx)
        yield from ns.mkdir(ctx, "/archive")
        yield from ns.rename(ctx, "/config.yaml", "/archive/config-v3.yaml")
        after_rename = yield from cont.query_epoch(ctx)

        old_view = yield from ns.readdir(ctx, "/")
        print(f"head sees: / -> {old_view}")
        # A reader pinned to the pre-rename snapshot still finds the file
        # at its old path (entry lookups honour the epoch).
        entry = yield from cont.obj(ns.root_oid).kv_get(
            ctx, b"config.yaml", b"entry", epoch=before_rename
        )
        print(f"snapshot@{before_rename} still resolves /config.yaml "
              f"-> oid {entry['oid']}")
        print(f"epochs: before rename {before_rename}, after {after_rename}")

    done = env.process(demo(env))
    env.run(until=done)
    print("snapshot demo complete.")


if __name__ == "__main__":
    main()
