#!/usr/bin/env python3
"""Reproduce the paper's headline takeaway interactively.

Runs the same FIO workload (1 MiB sequential reads and 4 KiB random
reads) over every configuration axis of Fig. 5 — TCP vs RDMA, host vs
BlueField-3 client — and prints the comparison that motivates the paper:
RDMA makes SmartNIC offload performance-equivalent; TCP does not.

Run:  python examples/transport_comparison.py
"""

from repro.bench.runner import run_fig5_cell
from repro.hw.specs import KIB, MIB


def main() -> None:
    print("DFS end-to-end (1 SSD), 8 jobs @ 1 MiB sequential read:")
    large = {}
    for provider in ["tcp", "rdma"]:
        for client in ["host", "dpu"]:
            r = run_fig5_cell(provider, client, "read", MIB, 8)
            large[(provider, client)] = r.bandwidth_gib
            print(f"  {provider:4s} / {client:4s}: {r.bandwidth_gib:6.2f} GiB/s")

    print("\nDFS end-to-end (1 SSD), 16 jobs @ 4 KiB random read:")
    small = {}
    for provider in ["tcp", "rdma"]:
        for client in ["host", "dpu"]:
            r = run_fig5_cell(provider, client, "randread", 4 * KIB, 16)
            small[(provider, client)] = r.kiops
            print(f"  {provider:4s} / {client:4s}: {r.kiops:7.1f} K IOPS")

    print("\nTakeaways (paper §4.4):")
    eq = large[("rdma", "dpu")] / large[("rdma", "host")]
    print(f"  (i)  RDMA offload is performance-equivalent at 1 MiB: "
          f"DPU/host = {eq:.2f}")
    drop = large[("tcp", "dpu")] / large[("tcp", "host")]
    print(f"  (ii) the DPU TCP receive path is unsuitable for reads: "
          f"DPU/host = {drop:.2f}")
    gain = small[("rdma", "dpu")] / small[("tcp", "dpu")]
    print(f"  (iii) on the DPU, RDMA gives {gain:.1f}x the TCP small-I/O rate "
          "-> RDMA-first is the right deployment")


if __name__ == "__main__":
    main()
