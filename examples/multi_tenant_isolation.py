#!/usr/bin/env python3
"""Multi-tenant isolation on the DPU: PDs, scoped rkeys, and rate limits.

The security discussion (§2.3) lists the RDMA risks in shared clouds and
the DPU-resident controls ROS2 applies.  This example demonstrates each
control *functionally*:

1. per-tenant protection domains: tenant B's QP cannot use tenant A's
   rkey, even though the rkey itself is valid;
2. scoped (short-lived) rkeys: a leaked capability goes stale after its
   TTL;
3. token-bucket rate limits: a greedy tenant is shaped to its contract
   while a victim tenant keeps its throughput;
4. revocation: a revoked tenant's session stops authenticating.

Run:  python examples/multi_tenant_isolation.py
"""

from repro.core import Ros2Config, Ros2System
from repro.core.control_plane import GrpcError
from repro.hw.specs import GIB, KIB, MIB
from repro.net.rdma import AccessViolation
from repro.sim import Environment


def main() -> None:
    env = Environment()
    system = Ros2System(env, Ros2Config(
        transport="rdma", client="dpu", n_ssds=4, data_mode=True
    ))
    tok_a = system.register_tenant("tenant-a", rkey_ttl=0.005)
    tok_b = system.register_tenant(
        "tenant-b", bytes_per_sec=1 * GIB, burst_bytes=64 * MIB
    )

    def demo(env):
        yield from system.start()
        sa = yield from system.open_session(tok_a)
        sb = yield from system.open_session(tok_b)

        # --- 1. cross-PD rkey use is rejected by the NIC ---------------
        caps_a = yield from sa.get_caps(1 * MIB)
        region_a = caps_a["region"]
        chan_b = system.service.sessions[sb.session_id].daos.channel
        try:
            yield from chan_b.rma_read("storage", region_a, 4 * KIB)
            print("1. CROSS-TENANT READ SUCCEEDED (BUG!)")
        except (AccessViolation, Exception) as exc:
            print(f"1. cross-PD access rejected: {type(exc).__name__}: {exc}")

        # --- 2. scoped rkeys expire -------------------------------------
        # The window lives in the DPU's memory; its legitimate user is the
        # storage server (it RDMA-writes read payloads into it).  After the
        # 5 ms TTL even that legitimate path goes stale.
        chan_a = system.service.sessions[sa.session_id].daos.channel
        yield env.timeout(0.01)  # past tenant-a's 5 ms TTL
        try:
            yield from chan_a.rma_read("storage", region_a, 4 * KIB)
            print("2. STALE CAPABILITY STILL VALID (BUG!)")
        except AccessViolation as exc:
            print(f"2. scoped rkey expired as configured: {exc}")

        # --- 3. rate limiting shapes the greedy tenant ------------------
        fh_b = yield from sb.create("/b.dat")
        port_b = sb.data_port()
        ctx_b = port_b.new_context()
        t0 = env.now
        total = 256 * MIB
        for off in range(0, total, MIB):
            yield from port_b.write(ctx_b, fh_b, off, nbytes=MIB)
        rate = total / (env.now - t0)
        print(f"3. tenant-b shaped to {rate / GIB:.2f} GiB/s "
              "(contract: 1 GiB/s + 64 MiB burst)")

        # --- 4. revocation ------------------------------------------------
        system.service.tenants.revoke("tenant-a")
        try:
            yield from sa.readdir("/")
            print("4. REVOKED TENANT STILL SERVED (BUG!)")
        except GrpcError as exc:
            print(f"4. revoked tenant rejected: {exc}")

    done = env.process(demo(env))
    env.run(until=done)
    print("isolation demo complete.")


if __name__ == "__main__":
    main()
