#!/usr/bin/env python3
"""Quickstart: bring up ROS2 and do POSIX file I/O through the offloaded client.

Builds the paper's testbed (Fig. 2) in one call — BlueField-3 DPU client,
RDMA data plane, 4-SSD DAOS server — opens an authenticated session over
the gRPC control plane, and walks the POSIX surface: mkdir, create, write,
read, stat, readdir.  Data mode is on, so every byte is really stored,
checksummed and read back.

Run:  python examples/quickstart.py
"""

from repro.core import Ros2Config, Ros2System
from repro.sim import Environment


def main() -> None:
    env = Environment()
    system = Ros2System(env, Ros2Config(
        transport="rdma",   # ucx+rc verbs provider
        client="dpu",       # DFS client offloaded to the BlueField-3
        n_ssds=4,
        data_mode=True,     # carry real bytes end to end
    ))
    token = system.register_tenant("quickstart")

    def workflow(env):
        # -- control plane: session setup + namespace ops (gRPC) ---------
        yield from system.start()
        session = yield from system.open_session(token)
        yield from session.mkdir("/datasets")
        fh = yield from session.create("/datasets/hello.bin")

        # -- data plane: POSIX I/O on the DPU-resident client ------------
        port = session.data_port()
        ctx = port.new_context()
        payload = b"RDMA-first object storage, offloaded to the SmartNIC.\n" * 100
        yield from port.write(ctx, fh, 0, data=payload)
        readback = yield from port.read(ctx, fh, 0, len(payload))
        assert readback == payload, "end-to-end data mismatch!"

        # -- namespace queries -------------------------------------------
        st = yield from session.stat("/datasets/hello.bin")
        names = yield from session.readdir("/datasets")
        caps = yield from session.get_caps(1 << 20)

        print(f"wrote+verified {len(payload)} bytes through the DPU client")
        print(f"stat: type={st['type']} size={st['size']} "
              f"chunk={st['chunk_size']}")
        print(f"readdir /datasets -> {names}")
        print(f"capability exchange: rkey={caps['region'].rkey:#x} "
              f"len={caps['region'].length}")
        print(f"simulated time elapsed: {env.now * 1e3:.3f} ms")

    done = env.process(workflow(env))
    env.run(until=done)
    print("quickstart complete.")


if __name__ == "__main__":
    main()
