#!/usr/bin/env python3
"""Target failure, degraded service, and rebuild with redundant classes.

Walks the durability machinery of the DAOS-like engine end to end:

1. store the same dataset three ways — striped (SX), mirrored (RP2) and
   erasure-coded (EC 2+1);
2. fail a storage target;
3. show who still serves reads (RP2 via its surviving replica, EC via
   XOR reconstruction, SX not at all);
4. rebuild the failed target from its peers and verify service is fully
   restored — including after losing the *other* replica.

Run:  python examples/failure_and_rebuild.py
"""

from repro.core import Ros2Config, Ros2System
from repro.daos.types import ObjectClass
from repro.hw.specs import GIB
from repro.sim import Environment

PAYLOAD = bytes((i * 17 + 3) % 256 for i in range(128 * 1024))  # 2 EC stripes


def main() -> None:
    env = Environment()
    system = Ros2System(env, Ros2Config(transport="rdma", client="host",
                                        n_ssds=4, data_mode=True))
    token = system.register_tenant("operator")
    engine = system.engine

    def demo(env):
        yield from system.start()
        session = yield from system.open_session(token)
        state = system.service.sessions[session.session_id]
        ns, ctx = state.ns, state.svc_ctx

        files = {}
        for name, oclass in [("sx", ObjectClass.SX), ("rp2", ObjectClass.RP2),
                             ("ec", ObjectClass.EC2P1)]:
            f = yield from ns.create(ctx, f"/{name}.bin",
                                     chunk_size=len(PAYLOAD), oclass=oclass)
            yield from f.write(ctx, 0, data=PAYLOAD)
            files[name] = f
        print(f"stored {len(PAYLOAD)} bytes as SX, RP2 and EC2P1 "
              f"across {engine.n_targets} targets")

        # Fail the primary target of each file's first chunk.
        chunk_key = b"\x00" * 8
        victims = {name: engine.target_for(f.oid, chunk_key).index
                   for name, f in files.items()}
        for idx in set(victims.values()):
            engine.fail_target(idx)
        print(f"failed targets: {sorted(set(victims.values()))}")

        for name, f in files.items():
            try:
                data = yield from f.read(ctx, 0, len(PAYLOAD))
                status = "OK (intact)" if data == PAYLOAD else "CORRUPT"
            except Exception as exc:
                status = f"unavailable ({type(exc).__name__})"
            print(f"  degraded read {name.upper():5s}: {status}")

        # Rebuild every failed target from surviving peers.
        for idx in sorted(set(victims.values())):
            n = yield from engine.rebuild_target(idx)
            print(f"rebuilt target {idx}: {n or 0} records resynced")

        # Prove the rebuild is real: fail the RP2 *survivor* and read again.
        survivor = engine.replicas_for(files["rp2"].oid, chunk_key)[1]
        engine.fail_target(survivor.index)
        data = yield from files["rp2"].read(ctx, 0, len(PAYLOAD))
        print("RP2 read served by the REBUILT replica:",
              "OK (intact)" if data == PAYLOAD else "CORRUPT")

    done = env.process(demo(env))
    env.run(until=done)
    print("failure/rebuild demo complete.")


if __name__ == "__main__":
    main()
