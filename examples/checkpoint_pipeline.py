#!/usr/bin/env python3
"""Asynchronous checkpointing through ROS2, with inline encryption.

The third LLM phase from Fig. 1: periodically drain a large model/optimizer
state to the object store without stalling training.  This example runs a
training loop whose steps proceed while a checkpoint drains in the
background through the DPU client, with the tenant's data encrypted by the
BlueField's inline crypto engine (ciphertext verified on the media).

Run:  python examples/checkpoint_pipeline.py
"""

from repro.core import Ros2Config, Ros2System
from repro.hw.specs import GIB, MIB
from repro.sim import Environment
from repro.workload.llm import CheckpointSpec

STATE_BYTES = 512 * MIB  # simulated stand-in for the 160 GiB of Fig. 1
STEP_TIME = 0.010  # one training step, seconds
STEPS = 20
CKPT_EVERY = 8  # steps between checkpoints


def main() -> None:
    spec = CheckpointSpec(state_bytes=STATE_BYTES, period_sec=STEPS * STEP_TIME / 2)
    print(f"checkpoint contract: {STATE_BYTES / MIB:.0f} MiB per "
          f"{spec.period_sec:.2f}s -> needs {spec.required_write_rate / GIB:.2f} GiB/s")

    env = Environment()
    system = Ros2System(env, Ros2Config(transport="rdma", client="dpu", n_ssds=4))
    token = system.register_tenant("trainer", crypto_key=bytes(range(32)))
    stats = {"ckpts": 0, "stalled": 0.0}

    def checkpoint(env, port, fh, epoch_tag):
        """Drain the full state with 8 writer lanes (async, off the step path)."""
        t0 = env.now
        lanes = 8
        ctxs = [port.new_context(f"ckpt{epoch_tag}.{i}") for i in range(lanes)]

        def lane(env, i):
            for off in range(i * MIB, STATE_BYTES, lanes * MIB):
                yield from port.write(ctxs[i], fh, off, nbytes=MIB)

        writers = [env.process(lane(env, i)) for i in range(lanes)]
        yield env.all_of(writers)
        stats["ckpts"] += 1
        rate = STATE_BYTES / (env.now - t0)
        print(f"  checkpoint {epoch_tag} drained in {(env.now - t0) * 1e3:.1f} ms "
              f"({rate / GIB:.2f} GiB/s, inline-encrypted)")

    def training(env):
        yield from system.start()
        session = yield from system.open_session(token)
        yield from session.mkdir("/ckpt")
        port = session.data_port()
        pending = None
        for step in range(1, STEPS + 1):
            yield env.timeout(STEP_TIME)  # compute
            if step % CKPT_EVERY == 0:
                if pending is not None and pending.is_alive:
                    t0 = env.now
                    yield pending  # previous checkpoint must finish first
                    stats["stalled"] += env.now - t0
                fh = yield from session.create(f"/ckpt/step-{step:04d}")
                pending = env.process(checkpoint(env, port, fh, step))
                print(f"step {step}: checkpoint started (training continues)")
        if pending is not None and pending.is_alive:
            yield pending

    done = env.process(training(env))
    env.run(until=done)
    print(f"{STEPS} steps, {stats['ckpts']} checkpoints, "
          f"training stalled {stats['stalled'] * 1e3:.1f} ms total")
    print("checkpoint pipeline complete.")


if __name__ == "__main__":
    main()
