#!/usr/bin/env python3
"""LLM dataloader over ROS2: shuffled sample reads feeding a GPU node.

The paper's motivating workload (§2.1, Fig. 1): a training node needs
B ~ G * r * s bytes/second of shuffled samples.  This example

1. computes the required ingest rate for an 8xH100 node,
2. stores a sharded dataset through the offloaded client,
3. runs a prefetching dataloader (16 workers, random 256 KiB samples)
   with reads placed directly in GPU HBM via the GPUDirect extension,
4. reports delivered vs required bandwidth.

Run:  python examples/llm_dataloader.py
"""

from repro.core import Ros2Config, Ros2System
from repro.core.gpudirect import GpuDirectPath
from repro.hw.gpu import GpuDevice
from repro.hw.specs import GIB, GPU_BY_NAME, KIB, MIB
from repro.sim import Environment, RngStreams
from repro.workload.llm import LlmIngestModel

DATASET_BYTES = 256 * MIB  # simulated shard (stands in for terabytes)
SAMPLE_BYTES = 256 * KIB
WORKERS = 16
WINDOW = 0.1  # measured seconds


def main() -> None:
    requirement = LlmIngestModel(
        gpus_per_node=8, samples_per_gpu_per_sec=200, bytes_per_sample=2 * MIB
    )
    need = requirement.node_ingest_rate()
    print(f"required ingest (8 GPUs x 200 samp/s x 2 MiB): {need / GIB:.2f} GiB/s")

    env = Environment()
    system = Ros2System(env, Ros2Config(transport="rdma", client="dpu", n_ssds=4))
    token = system.register_tenant("trainer")
    rng = RngStreams(42).stream("dataloader")
    delivered = [0]

    def pipeline(env):
        yield from system.start()
        session = yield from system.open_session(token)
        yield from session.mkdir("/dataset")
        fh = yield from session.create("/dataset/shard-000", chunk_size=MIB)
        port = session.data_port()

        # Ingest the shard (the data-prep job).
        ctx = port.new_context("ingest")
        for off in range(0, DATASET_BYTES, MIB):
            yield from port.write(ctx, fh, off, nbytes=MIB)
        print(f"shard written: {DATASET_BYTES // MIB} MiB at t={env.now:.3f}s")

        # GPUDirect: sample reads land straight in H100 HBM (§3.5).
        gpu = GpuDevice(env, GPU_BY_NAME["H100"])
        path = GpuDirectPath(system.service, session.session_id, gpu)
        measure_from = env.now + 0.02
        n_samples = DATASET_BYTES // SAMPLE_BYTES

        def worker(env, wid):
            wctx = port.new_context(f"loader{wid}")
            while True:
                sample = int(rng.integers(0, n_samples))
                yield from path.read(wctx, fh, sample * SAMPLE_BYTES, SAMPLE_BYTES)
                if env.now >= measure_from:
                    delivered[0] += SAMPLE_BYTES

        for wid in range(WORKERS):
            env.process(worker(env, wid))
        yield env.timeout(0.02)  # warm-up
        delivered[0] = 0
        yield env.timeout(WINDOW)
        return delivered[0] / WINDOW

    done = env.process(pipeline(env))
    rate = env.run(until=done)
    print(f"dataloader delivered: {rate / GIB:.2f} GiB/s "
          f"({WORKERS} workers, {SAMPLE_BYTES // KIB} KiB random samples, "
          "GPUDirect placement)")
    print("requirement covered" if rate > need else "requirement NOT covered",
          f"(need {need / GIB:.2f} GiB/s)")


if __name__ == "__main__":
    main()
