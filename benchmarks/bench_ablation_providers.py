"""Ablation: the five fabric provider strings of §3.2.

DAOS configures one provider per engine (ofi+tcp;ofi_rxm, ucx+tcp,
ucx+rc, ucx+dc_x, ofi+verbs;ofi_rxm) and clients must match.  The paper
treats providers within a family as interchangeable; this bench verifies
our registry behaves the same way: both TCP bindings perform alike, all
three verbs bindings perform alike, and the family split is the whole
story.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.bench.runner import run_fig5_cell
from repro.hw.specs import GIB, KIB, MIB
from repro.net.fabric import list_providers, resolve_provider

CACHE = CellCache()
PROVIDERS = list(list_providers())


def cell(provider: str):
    return CACHE.get_or_run(
        (provider,),
        lambda: run_fig5_cell(provider, "host", "randread", 4 * KIB, 8,
                              runtime=0.02),
    )


@pytest.mark.parametrize("provider", PROVIDERS)
def test_provider(benchmark, provider):
    result = benchmark.pedantic(lambda: cell(provider), rounds=1, iterations=1)
    assert result.total_ios > 0


def test_providers_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: provider bindings (DFS 4 KiB randread, host client, 8 jobs)",
        ["family", "KIOPS"],
        row_header="provider",
    )
    by_family = {"tcp": [], "rdma": []}
    for provider in PROVIDERS:
        r = cell(provider)
        family = resolve_provider(provider).family
        by_family[family].append(r.iops)
        table.add_row(provider, [family, f"{r.kiops:.1f}"])

    def spread(vals):
        return (max(vals) - min(vals)) / max(vals)

    tcp_spread, rdma_spread = spread(by_family["tcp"]), spread(by_family["rdma"])
    gap = min(by_family["rdma"]) / max(by_family["tcp"])
    lines = [
        f"[{'OK ' if tcp_spread < 0.05 else 'OUT'}] TCP bindings equivalent "
        f"(spread {tcp_spread * 100:.1f}%)",
        f"[{'OK ' if rdma_spread < 0.05 else 'OUT'}] verbs bindings equivalent "
        f"(spread {rdma_spread * 100:.1f}%)",
        f"[{'OK ' if gap > 1.2 else 'OUT'}] the family split is the whole story "
        f"(worst verbs {gap:.2f}x best TCP)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_providers.txt", text)
    print("\n" + text)
    assert tcp_spread < 0.05 and rdma_spread < 0.05
    assert gap > 1.2
