"""Ablation: host-side resource savings from SmartNIC offload (§5).

The paper's discussion names this as unmeasured future work: "Our study
does not yet quantify host-side resource savings".  The simulated testbed
can: we run the same DFS workload with the client on the host vs on the
DPU and account every x86-host CPU second consumed (core pool, TCP RX
cores, serialized stack sections, job threads), reporting host
core-seconds per GiB moved.

Expected shape: host-resident TCP burns the most host CPU per byte;
host-resident RDMA much less (kernel bypass); with the client offloaded
to the BlueField the host spends ~nothing — the offload argument in one
table.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.core import Ros2Config, Ros2System
from repro.hw.specs import GIB, MIB
from repro.sim import Environment

CACHE = CellCache()

CONFIGS = [("tcp", "host"), ("rdma", "host"), ("tcp", "dpu"), ("rdma", "dpu")]
MEASURE = 0.1
RAMP = 0.03
JOBS, LANES = 8, 8


def host_cpu_seconds(node, ctxs) -> float:
    """Total x86-host core-seconds: pools, locks, and job threads."""
    total = node.cpu.busy_time + node.tcp_rx_cpu.busy_time
    total += sum(sec.busy_time for sec in node._locks.values())
    total += sum(ctx.busy_time for ctx in ctxs)
    return total


def run_case(provider: str, client: str):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport=provider, client=client,
                                            n_ssds=4))
        token = system.register_tenant("acct")
        moved = [0]
        host = None  # the x86 launcher host
        ctxs = []

        def setup(env):
            yield from system.start()
            session = yield from system.open_session(token)
            fh = yield from session.create("/acct.dat")
            return session.data_port(), fh

        p = env.process(setup(env))
        env.run(until=p)
        port, fh = p.value
        host = system.launcher_node
        measure_from = env.now + RAMP
        cpu_at_start = [None]

        def writer(env, j, k):
            ctx = port.new_context()
            # Job threads run on the client node; count them against the
            # host only when the client *is* the host.
            if client == "host":
                ctxs.append(ctx)
            off = (j * LANES + k) * 32 * MIB
            while True:
                yield from port.write(ctx, fh, off % (2048 * MIB), nbytes=MIB)
                off += MIB
                if env.now >= measure_from:
                    moved[0] += MIB

        for j in range(JOBS):
            for k in range(LANES):
                env.process(writer(env, j, k))
        env.run(until=measure_from)
        moved[0] = 0
        cpu_at_start[0] = host_cpu_seconds(host, ctxs)
        env.run(until=measure_from + MEASURE)
        cpu_spent = host_cpu_seconds(host, ctxs) - cpu_at_start[0]
        gib = moved[0] / GIB
        return {
            "throughput": moved[0] / MEASURE,
            "host_cores": cpu_spent / MEASURE,  # core-equivalents busy
            "cpu_per_gib": cpu_spent / gib if gib else float("inf"),
        }

    return CACHE.get_or_run((provider, client), _run)


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_host_accounting(benchmark, cfg):
    stats = benchmark.pedantic(lambda: run_case(*cfg), rounds=1, iterations=1)
    assert stats["throughput"] > 0


def test_host_savings_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: x86-host CPU consumed by the storage data path "
        "(1 MiB writes, 4 SSDs)",
        ["GiB/s", "host cores busy", "core-sec per GiB"],
        row_header="transport/client",
    )
    for provider, client in CONFIGS:
        s = run_case(provider, client)
        table.add_row(f"{provider}/{client}", [
            f"{s['throughput'] / GIB:.2f}",
            f"{s['host_cores']:.2f}",
            f"{s['cpu_per_gib']:.3f}",
        ])

    tcp_host = run_case("tcp", "host")["cpu_per_gib"]
    rdma_host = run_case("rdma", "host")["cpu_per_gib"]
    tcp_dpu = run_case("tcp", "dpu")["cpu_per_gib"]
    rdma_dpu = run_case("rdma", "dpu")["cpu_per_gib"]
    lines = [
        f"[{'OK ' if rdma_host < 0.5 * tcp_host else 'OUT'}] kernel bypass: "
        f"host RDMA uses <50% of host TCP CPU per GiB "
        f"({rdma_host:.3f} vs {tcp_host:.3f})",
        f"[{'OK ' if max(tcp_dpu, rdma_dpu) < 0.05 * tcp_host else 'OUT'}] "
        "offload: with the client on the BlueField the host data-path CPU "
        f"is negligible ({tcp_dpu:.4f} / {rdma_dpu:.4f} core-sec/GiB)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_host_savings.txt", text)
    print("\n" + text)
    assert rdma_host < 0.5 * tcp_host
    assert max(tcp_dpu, rdma_dpu) < 0.05 * tcp_host
