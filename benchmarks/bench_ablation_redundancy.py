"""Ablation: redundancy classes — none (SX) vs mirroring (RP2) vs EC 2+1.

The paper evaluates single-target paths; DAOS deployments pick a
redundancy class per container.  This bench quantifies the classic
trade-off on the ROS2 stack: write throughput and storage overhead for
the three classes, plus the degraded-read penalty EC pays when a target
is lost.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.core import Ros2Config, Ros2System
from repro.daos.types import ObjectClass
from repro.hw.specs import GIB, MIB
from repro.sim import Environment

CACHE = CellCache()

CLASSES = {"SX": ObjectClass.SX, "RP2": ObjectClass.RP2, "EC2P1": ObjectClass.EC2P1}
TOTAL = 256 * MIB


def run_case(cls_name: str):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client="host",
                                            n_ssds=4))
        token = system.register_tenant("redundancy")

        def go(env):
            yield from system.start()
            session = yield from system.open_session(token)
            state = system.service.sessions[session.session_id]
            ctx = state.svc_ctx
            f = yield from state.ns.create(ctx, "/data.bin",
                                           oclass=CLASSES[cls_name])
            lanes = 8
            t0 = env.now

            def lane(env, k):
                lctx = state.daos.new_context()
                for off in range(k * MIB, TOTAL, lanes * MIB):
                    yield from f.write(lctx, off, nbytes=MIB)

            procs = [env.process(lane(env, k)) for k in range(lanes)]
            yield env.all_of(procs)
            write_rate = TOTAL / (env.now - t0)

            # Healthy read rate.
            t0 = env.now
            procs = [env.process(read_lane(env, state, f, k, lanes))
                     for k in range(lanes)]
            yield env.all_of(procs)
            read_rate = TOTAL / (env.now - t0)

            # Degraded read (one target down), only meaningful for
            # redundant classes.
            degraded_rate = None
            if cls_name != "SX":
                victim = system.engine.target_for(f.oid, b"\x00" * 8)
                system.engine.fail_target(victim.index)
                t0 = env.now
                procs = [env.process(read_lane(env, state, f, k, lanes))
                         for k in range(lanes)]
                yield env.all_of(procs)
                degraded_rate = TOTAL / (env.now - t0)

            stored = sum(t.vos.nvme_used_bytes for t in system.engine.targets)
            return write_rate, read_rate, degraded_rate, stored / TOTAL

        def read_lane(env, state, f, k, lanes):
            lctx = state.daos.new_context()
            for off in range(k * MIB, TOTAL, lanes * MIB):
                yield from f.read(lctx, off, MIB)

        p = env.process(go(env))
        env.run(until=p)
        return p.value

    return CACHE.get_or_run((cls_name,), _run)


@pytest.mark.parametrize("cls_name", sorted(CLASSES))
def test_redundancy_case(benchmark, cls_name):
    write_rate, read_rate, _, overhead = benchmark.pedantic(
        lambda: run_case(cls_name), rounds=1, iterations=1
    )
    assert write_rate > 0 and read_rate > 0


def test_redundancy_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: redundancy classes (1 MiB I/O, RDMA host client, 4 SSDs)",
        ["write GiB/s", "read GiB/s", "degraded read", "storage overhead"],
        row_header="class",
    )
    stats = {}
    for name in ["SX", "RP2", "EC2P1"]:
        w, r, d, ov = run_case(name)
        stats[name] = (w, r, d, ov)
        table.add_row(name, [
            f"{w / GIB:.2f}", f"{r / GIB:.2f}",
            f"{d / GIB:.2f}" if d else "n/a",
            f"{ov:.2f}x",
        ])

    lines = [
        f"[{'OK ' if abs(stats['RP2'][3] - 2.0) < 0.05 else 'OUT'}] RP2 stores "
        f"2x ({stats['RP2'][3]:.2f}x)",
        f"[{'OK ' if abs(stats['EC2P1'][3] - 1.5) < 0.05 else 'OUT'}] EC2P1 "
        f"stores 1.5x ({stats['EC2P1'][3]:.2f}x)",
        f"[{'OK ' if stats['SX'][0] >= stats['EC2P1'][0] >= 0 and stats['SX'][0] > stats['RP2'][0] else 'OUT'}] "
        "durability costs write throughput (SX fastest)",
        # In a 2+1 layout a degraded read touches the SAME byte count
        # (sibling + parity instead of both data cells) and XOR is cheap,
        # so throughput holds - the penalty only appears for wider groups.
        f"[{'OK ' if stats['EC2P1'][2] and abs(stats['EC2P1'][2] / stats['EC2P1'][1] - 1) < 0.15 else 'OUT'}] "
        "EC 2+1 degraded reads hold throughput (byte-count-neutral "
        f"reconstruction: {(stats['EC2P1'][2] or 0) / GIB:.2f} vs "
        f"{stats['EC2P1'][1] / GIB:.2f} GiB/s)",
        f"[{'OK ' if stats['RP2'][2] and abs(stats['RP2'][2] / stats['RP2'][1] - 1) < 0.15 else 'OUT'}] "
        "RP2 failover reads hold throughput (served by the surviving replica)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_redundancy.txt", text)
    print("\n" + text)
    assert abs(stats["RP2"][3] - 2.0) < 0.05
    assert abs(stats["EC2P1"][3] - 1.5) < 0.05
    assert stats["SX"][0] > stats["RP2"][0]
    assert abs(stats["EC2P1"][2] / stats["EC2P1"][1] - 1) < 0.15
    assert abs(stats["RP2"][2] / stats["RP2"][1] - 1) < 0.15
