"""Paper Fig. 3: local FIO with the IO_URING engine.

Sweeps jobs x {1 MiB throughput, 4 KiB IOPS} x {read, write, randread,
randwrite} for 1 and 4 NVMe SSDs, and checks the paper's stated ceilings:

* 1 SSD: reads plateau ~5-5.6 GiB/s, writes ~2.7 GiB/s, flat in numjobs;
* 4 SSDs: reads ~20-22 GiB/s, writes ~10.6-10.7 GiB/s (near-linear);
* 4 KiB IOPS grow ~80 K (1 job) -> ~600 K (16 jobs), nearly identical for
  1 vs 4 SSDs (host-path limited).
"""

import pytest
from conftest import CellCache, cells_payload, write_report

from repro.bench.calibration import PAPER_BANDS, describe_band
from repro.bench.report import render_series
from repro.bench.runner import run_fig3_cell
from repro.hw.specs import KIB, MIB
from repro.workload.fio import WORKLOADS

JOBS = (1, 4, 16)
SSDS = (1, 4)
CACHE = CellCache()


def cell(n_ssds: int, rw: str, bs: int, jobs: int):
    return CACHE.get_or_run(
        (n_ssds, rw, bs, jobs),
        lambda: run_fig3_cell(rw, bs, jobs, n_ssds=n_ssds),
    )


@pytest.mark.parametrize("n_ssds", SSDS)
@pytest.mark.parametrize("rw", WORKLOADS)
@pytest.mark.parametrize("jobs", JOBS)
def test_fig3_1mib(benchmark, n_ssds, rw, jobs):
    result = benchmark.pedantic(
        lambda: cell(n_ssds, rw, MIB, jobs), rounds=1, iterations=1
    )
    assert result.total_ios > 0


@pytest.mark.parametrize("n_ssds", SSDS)
@pytest.mark.parametrize("rw", WORKLOADS)
@pytest.mark.parametrize("jobs", JOBS)
def test_fig3_4k(benchmark, n_ssds, rw, jobs):
    result = benchmark.pedantic(
        lambda: cell(n_ssds, rw, 4 * KIB, jobs), rounds=1, iterations=1
    )
    assert result.total_ios > 0


def test_fig3_report(benchmark, results_dir):
    """Render Fig. 3a-3d and assert every stated paper band."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep in --benchmark-only runs
    sections = []
    for n_ssds in SSDS:
        for bs, unit, conv in [(MIB, "GiB/s", lambda r: r.bandwidth),
                               (4 * KIB, "KIOPS", lambda r: r.iops)]:
            series = {
                rw: [conv(cell(n_ssds, rw, bs, j)) for j in JOBS]
                for rw in WORKLOADS
            }
            label = "a" if (n_ssds, bs) == (1, MIB) else \
                    "b" if (n_ssds, bs) == (1, 4 * KIB) else \
                    "c" if bs == MIB else "d"
            sections.append(render_series(
                f"Fig. 3{label}: local io_uring, {n_ssds} SSD(s), "
                f"bs={'1MiB' if bs == MIB else '4KiB'}",
                "numjobs", JOBS, series, unit,
            ))

    checks = [
        ("fig3.1ssd.read.1mib", cell(1, "read", MIB, 4).bandwidth),
        ("fig3.1ssd.write.1mib", cell(1, "write", MIB, 4).bandwidth),
        ("fig3.4ssd.read.1mib", cell(4, "read", MIB, 16).bandwidth),
        ("fig3.4ssd.write.1mib", cell(4, "write", MIB, 16).bandwidth),
        ("fig3.4k.1job", cell(1, "randread", 4 * KIB, 1).iops),
        ("fig3.4k.16job", cell(1, "randread", 4 * KIB, 16).iops),
    ]
    lines = [describe_band(PAPER_BANDS[k], v) for k, v in checks]

    # Shape assertions from the implications paragraph:
    # (a) one job saturates large-block per-device bandwidth,
    flat = cell(1, "read", MIB, 1).bandwidth / cell(1, "read", MIB, 16).bandwidth
    lines.append(f"[{'OK ' if flat > 0.9 else 'OUT'}] 1 job saturates 1 MiB reads "
                 f"(1j/16j ratio {flat:.2f})")
    # (b) drives scale large transfers near-linearly,
    scale = cell(4, "read", MIB, 16).bandwidth / cell(1, "read", MIB, 16).bandwidth
    lines.append(f"[{'OK ' if 3.4 < scale < 4.2 else 'OUT'}] 4-SSD read scaling {scale:.2f}x")
    # (c) small-block IOPS are submission-limited, not drive-limited.
    iops_ratio = cell(4, "randread", 4 * KIB, 16).iops / cell(1, "randread", 4 * KIB, 16).iops
    lines.append(f"[{'OK ' if 0.85 < iops_ratio < 1.2 else 'OUT'}] 4 KiB IOPS "
                 f"~independent of drive count ({iops_ratio:.2f}x)")

    text = "\n\n".join(sections) + "\n\nPaper-vs-measured:\n" + "\n".join(lines)
    write_report(results_dir, "fig3_local_fio.txt", text,
                 payload={"cells": cells_payload(
                     CACHE, ["n_ssds", "rw", "bs", "jobs"])})
    print("\n" + text)
    for k, v in checks:
        assert PAPER_BANDS[k].holds(v), describe_band(PAPER_BANDS[k], v)
    assert flat > 0.9
    assert 3.4 < scale < 4.2
    assert 0.85 < iops_ratio < 1.2
