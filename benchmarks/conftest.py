"""Shared infrastructure for the figure-reproduction benches.

Each bench module accumulates its sweep cells in a module-level cache (the
parametrized benchmark tests fill it; the final ``*_report`` test renders
the figure table from it, computing any missing cells on demand so the
report test also works standalone).  Rendered tables land in
``benchmarks/results/`` and feed EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where benches drop their rendered figure tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


class CellCache:
    """Per-module sweep cache: benchmark tests fill it, reports read it."""

    def __init__(self) -> None:
        self._cells: Dict[tuple, object] = {}

    def get_or_run(self, key: tuple, fn: Callable[[], object]):
        result = self._cells.get(key)
        if result is None:
            result = self._cells[key] = fn()
        return result

    def __len__(self) -> int:
        return len(self._cells)


def write_report(results_dir: str, name: str, text: str) -> str:
    """Persist one rendered figure report and return its path."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
