"""Shared infrastructure for the figure-reproduction benches.

Each bench module accumulates its sweep cells in a module-level cache (the
parametrized benchmark tests fill it; the final ``*_report`` test renders
the figure table from it, computing any missing cells on demand so the
report test also works standalone).  Rendered tables land in
``benchmarks/results/`` and feed EXPERIMENTS.md; passing ``payload`` to
:func:`write_report` additionally drops a machine-readable ``.json``
sibling next to the ``.txt`` so sweeps can be diffed and plotted without
re-parsing tables.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where benches drop their rendered figure tables."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


class CellCache:
    """Per-module sweep cache: benchmark tests fill it, reports read it."""

    def __init__(self) -> None:
        self._cells: Dict[tuple, object] = {}

    def get_or_run(self, key: tuple, fn: Callable[[], object]):
        result = self._cells.get(key)
        if result is None:
            result = self._cells[key] = fn()
        return result

    def items(self):
        """``(key, result)`` pairs for every computed cell."""
        return self._cells.items()

    def __len__(self) -> int:
        return len(self._cells)


def cells_payload(cache: CellCache, key_names: Sequence[str]) -> list:
    """Serialize a cell cache: one record per cell, key fields + result.

    Results exposing ``to_dict()`` (e.g. ``FioResult``) are expanded;
    anything else is stored as-is (must be JSON-serialisable).
    """
    rows = []
    for key, result in sorted(cache.items(), key=lambda kv: repr(kv[0])):
        row = dict(zip(key_names, key))
        to_dict = getattr(result, "to_dict", None)
        row["result"] = to_dict() if callable(to_dict) else result
        rows.append(row)
    return rows


def write_report(results_dir: str, name: str, text: str,
                 payload: Optional[dict] = None) -> str:
    """Persist one rendered figure report and return its path.

    With ``payload`` a machine-readable ``<stem>.json`` sibling is written
    alongside the text table (format tag ``repro-bench-v1``).
    """
    path = os.path.join(results_dir, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    if payload is not None:
        stem = os.path.splitext(name)[0]
        doc = {"format": "repro-bench-v1", "name": stem}
        doc.update(payload)
        with open(os.path.join(results_dir, stem + ".json"), "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return path
