"""Ablation: multi-tenant isolation on the DPU (§2.3, §5).

The discussion argues offload "still delivers isolation and multi-tenant
control (dedicated QPs/PDs, per-tenant queues and rate limits)".  This
bench runs a victim tenant against a greedy neighbour on the same DPU,
with and without a per-tenant rate limit, and reports the victim's
throughput — the rate limiter is what keeps the neighbour from starving
it.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.core import Ros2Config, Ros2System
from repro.hw.specs import GIB, MIB
from repro.sim import Environment

CACHE = CellCache()

MEASURE = 0.12
RAMP = 0.04


def run_scenario(limit_noisy: bool):
    """Victim + greedy neighbour on one DPU; returns both goodputs."""

    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client="dpu", n_ssds=4))
        victim_token = system.register_tenant("victim")
        noisy_policy = {"bytes_per_sec": 2.0 * GIB, "burst_bytes": 256 * MIB} \
            if limit_noisy else {}
        noisy_token = system.register_tenant("noisy", **noisy_policy)
        counts = {"victim": 0, "noisy": 0}

        def setup(env):
            yield from system.start()
            sv = yield from system.open_session(victim_token)
            sn = yield from system.open_session(noisy_token)
            fhv = yield from sv.create("/victim.dat")
            fhn = yield from sn.create("/noisy.dat")
            return sv.data_port(), fhv, sn.data_port(), fhn

        p = env.process(setup(env))
        env.run(until=p)
        pv, fhv, pn, fhn = p.value

        t0 = env.now
        measure_from = t0 + RAMP

        def writer(env, port, fh, who, lanes_offset):
            ctx = port.new_context()
            offset = lanes_offset * 64 * MIB
            while True:
                yield from port.write(ctx, fh, offset % (1024 * MIB), nbytes=MIB)
                offset += MIB
                if env.now >= measure_from:
                    counts[who] += 1

        # The noisy tenant floods with 24 lanes; the victim runs 8.
        for i in range(8):
            env.process(writer(env, pv, fhv, "victim", i))
        for i in range(24):
            env.process(writer(env, pn, fhn, "noisy", i))
        env.run(until=measure_from)
        counts["victim"] = counts["noisy"] = 0
        env.run(until=measure_from + MEASURE)
        return {
            "victim": counts["victim"] * MIB / MEASURE,
            "noisy": counts["noisy"] * MIB / MEASURE,
        }

    return CACHE.get_or_run(("scenario", limit_noisy), _run)


@pytest.mark.parametrize("limited", [False, True], ids=["unlimited", "rate-limited"])
def test_noisy_neighbour(benchmark, limited):
    rates = benchmark.pedantic(lambda: run_scenario(limited), rounds=1, iterations=1)
    assert rates["victim"] > 0


def test_isolation_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    free = run_scenario(False)
    shaped = run_scenario(True)
    table = Table(
        "Ablation: victim throughput vs a greedy neighbour on the DPU "
        "(1 MiB writes, RDMA, 4 SSDs)",
        ["victim GiB/s", "noisy GiB/s"],
        row_header="policy",
    )
    table.add_row("no limits", [f"{free['victim'] / GIB:.2f}", f"{free['noisy'] / GIB:.2f}"])
    table.add_row("noisy capped @2GiB/s",
                  [f"{shaped['victim'] / GIB:.2f}", f"{shaped['noisy'] / GIB:.2f}"])

    gain = shaped["victim"] / max(free["victim"], 1.0)
    # The shaper admits at 2 GiB/s steady state; completions measured over a
    # finite window carry pipeline slack (ops admitted during ramp complete
    # inside the window), so allow ~25% on top of the configured cap.
    cap_ok = shaped["noisy"] < 2.5 * GIB
    lines = [
        f"[{'OK ' if gain > 1.5 else 'OUT'}] rate limit restores victim "
        f"throughput ({gain:.1f}x)",
        f"[{'OK ' if cap_ok else 'OUT'}] noisy tenant held near its 2 GiB/s "
        f"cap ({shaped['noisy'] / GIB:.2f} GiB/s)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_tenant_isolation.txt", text)
    print("\n" + text)
    assert gain > 1.5
    assert cap_ok
