"""Paper Table 1: NVIDIA data-center GPUs across generations, plus the
ingest-rate implication (B_node ~ G * r * s) drawn from it (§2.1).

Regenerates the table verbatim from :data:`repro.hw.specs.GPU_GENERATIONS`
and derives the per-node ingest requirement sweep the section argues from.
"""

from conftest import write_report

from repro.bench.report import Table
from repro.hw.specs import GIB, GPU_GENERATIONS
from repro.workload.llm import LlmIngestModel


def render_table1() -> str:
    table = Table(
        "Table 1: NVIDIA data center GPUs across generations",
        ["Arch", "Mem (GB)", "Mem BW (GB/s)", "NVLink", "FP16 TF", "FP8 TF", "FP4 TF"],
        row_header="GPU",
    )
    for g in GPU_GENERATIONS:
        table.add_row(g.name, [
            g.architecture,
            f"{g.memory_gb} {g.memory_type}",
            f"{g.mem_bw_gbs:g}",
            f"v{g.nvlink_gen}/{g.nvlink_gbs:g}GB/s",
            f"{g.fp16_tflops:g}",
            f"{g.fp8_tflops:g}" if g.fp8_tflops else "N/A",
            f"{g.fp4_tflops:g}" if g.fp4_tflops else "N/A",
        ])
    return table.render()


def render_ingest_sweep() -> str:
    table = Table(
        "Implication: required per-node ingest B ~ G*r*s (8 GPUs/node, "
        "r scaled with tensor throughput)",
        ["ingest (GiB/s)", "x P100"],
        row_header="GPU",
    )
    sweep = LlmIngestModel.generation_sweep()
    base = sweep[0][1]
    for gpu, rate in sweep:
        table.add_row(gpu.name, [f"{rate / GIB:.2f}", f"{rate / base:.1f}x"])
    return table.render()


def test_table1_matches_paper(benchmark):
    """The datasheet rows the paper prints, regenerated."""
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    assert "B200" in text and "Blackwell" in text
    assert "8000" in text  # B200 HBM bandwidth GB/s
    assert "20000" in text  # B200 FP4 TFLOPS


def test_ingest_model_is_multi_gib(benchmark):
    """'Even conservative choices yield multi-GiB/s per node' (§2.1)."""
    sweep = benchmark.pedantic(LlmIngestModel.generation_sweep, rounds=1, iterations=1)
    by_name = {gpu.name: rate for gpu, rate in sweep}
    assert by_name["H100"] > 2 * GIB
    assert by_name["B200"] > by_name["P100"] * 100


def test_table1_report(benchmark, results_dir):
    def build():
        return render_table1() + "\n\n" + render_ingest_sweep()

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    path = write_report(results_dir, "table1_gpus.txt", text)
    print("\n" + text)
    assert path
