"""Ablation: eager vs rendezvous protocol threshold on the RDMA data plane.

§3.2: "sequential I/O uses rendezvous-style transfers to amortize
per-message overhead; random I/O uses short transfers but preserves
zero-copy".  This bench sweeps the rendezvous threshold and measures both
ends of the tradeoff: large-message throughput (rendezvous enables
zero-copy pipelining at one extra RTT) and small-message latency (eager
avoids the RTS/CTS round-trip).
"""

import dataclasses

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.hw import make_paper_testbed
from repro.hw.specs import KIB, MIB, RDMA_COSTS, US
from repro.net.rdma import AccessFlags, RdmaDevice
from repro.sim import Environment

CACHE = CellCache()

THRESHOLDS = (None, 4 * KIB, 16 * KIB, 256 * KIB)  # None = always eager


def _costs(threshold):
    return dataclasses.replace(RDMA_COSTS, rendezvous_threshold=threshold)


def run_case(threshold, msg_bytes, n_msgs=64):
    """Two-sided stream of ``n_msgs`` messages; returns (throughput, per-msg lat)."""

    def _run():
        env = Environment()
        top = make_paper_testbed(env, client="host")
        dev_c = RdmaDevice(top.client, _costs(threshold))
        dev_s = RdmaDevice(top.server, _costs(threshold))
        qc = dev_c.create_qp(dev_c.alloc_pd())
        qs = dev_s.create_qp(dev_s.alloc_pd())
        qc.connect(qs)
        lat = []

        def sender(env):
            for _ in range(n_msgs):
                qs.post_recv(0)
                t0 = env.now
                yield from qc.post_send(nbytes=msg_bytes)
                lat.append(env.now - t0)

        p = env.process(sender(env))
        env.run(until=p)
        return n_msgs * msg_bytes / env.now, sum(lat) / len(lat)

    return CACHE.get_or_run((threshold, msg_bytes), _run)


@pytest.mark.parametrize("threshold", THRESHOLDS,
                         ids=lambda t: "eager-only" if t is None else f"rndv@{t}")
@pytest.mark.parametrize("msg", [4 * KIB, MIB], ids=["4KiB", "1MiB"])
def test_threshold_case(benchmark, threshold, msg):
    rate, lat = benchmark.pedantic(
        lambda: run_case(threshold, msg), rounds=1, iterations=1
    )
    assert rate > 0


def test_rendezvous_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: rendezvous threshold on a two-sided RDMA stream",
        ["4KiB lat (us)", "1MiB lat (us)"],
        row_header="threshold",
    )
    for t in THRESHOLDS:
        name = "eager-only" if t is None else f"rndv @{t // KIB} KiB"
        table.add_row(name, [
            f"{run_case(t, 4 * KIB)[1] / US:.1f}",
            f"{run_case(t, MIB)[1] / US:.1f}",
        ])

    # Shape: the default 16 KiB threshold keeps small messages eager
    # (no extra RTT) while large messages pay only a small relative cost.
    small_eager = run_case(None, 4 * KIB)[1]
    small_dflt = run_case(16 * KIB, 4 * KIB)[1]
    large_dflt = run_case(16 * KIB, MIB)[1]
    large_low = run_case(4 * KIB, MIB)[1]
    lines = [
        f"[{'OK ' if small_dflt == pytest.approx(small_eager) else 'OUT'}] "
        "4 KiB messages stay eager below the default threshold",
        f"[{'OK ' if large_dflt <= large_low * 1.01 else 'OUT'}] "
        "threshold placement does not penalize 1 MiB transfers",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_rendezvous.txt", text)
    print("\n" + text)
    assert small_dflt == pytest.approx(small_eager)
    assert large_dflt <= large_low * 1.01
