"""Paper Fig. 5: end-to-end DFS over ROS2 — TCP vs RDMA, host vs DPU.

The headline experiment: the DAOS DFS client either on the EPYC host or
offloaded to the BlueField-3, over TCP or RDMA, against 1 or 4 NVMe SSDs,
for the four POSIX workloads at 1 MiB (throughput) and 4 KiB (IOPS).

Stated shapes checked:

* host TCP: ~5-6 GiB/s (1 SSD) and ~10 GiB/s (4 SSDs) at 1 MiB;
  ~0.4-0.6 M IOPS at 4 KiB;
* DPU TCP: reads cap at ~1.6-3.1 GiB/s (RX-path bottleneck) while 4-SSD
  writes still approach ~10 GiB/s; 4 KiB tops out ~0.18-0.23 M IOPS;
* RDMA: DPU == host at 1 MiB (~6.4 GiB/s 1 SSD, ~10-11 GiB/s 4 SSDs);
  at 4 KiB the DPU is >= 2x its own TCP but trails the host by ~20-40 %.
"""

import pytest
from conftest import CellCache, cells_payload, write_report

from repro.bench.calibration import PAPER_BANDS, describe_band
from repro.bench.report import Table
from repro.bench.runner import run_fig5_cell
from repro.hw.specs import KIB, MIB
from repro.workload.fio import WORKLOADS

CACHE = CellCache()

CONFIGS = [("tcp", "host"), ("tcp", "dpu"), ("rdma", "host"), ("rdma", "dpu")]


def cell(provider, client, rw, bs, n_ssds, numjobs=None):
    if numjobs is None:
        numjobs = 8 if bs >= MIB else 16
    return CACHE.get_or_run(
        (provider, client, rw, bs, n_ssds, numjobs),
        lambda: run_fig5_cell(provider, client, rw, bs, numjobs, n_ssds=n_ssds),
    )


@pytest.mark.parametrize("n_ssds", [1, 4])
@pytest.mark.parametrize("rw", WORKLOADS)
@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_fig5_1mib(benchmark, cfg, rw, n_ssds):
    provider, client = cfg
    result = benchmark.pedantic(
        lambda: cell(provider, client, rw, MIB, n_ssds), rounds=1, iterations=1
    )
    assert result.total_ios > 0


@pytest.mark.parametrize("rw", ["randread", "randwrite"])
@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_fig5_4k(benchmark, cfg, rw):
    provider, client = cfg
    result = benchmark.pedantic(
        lambda: cell(provider, client, rw, 4 * KIB, 1), rounds=1, iterations=1
    )
    assert result.total_ios > 0


def test_fig5_report(benchmark, results_dir):
    """Render Fig. 5a-5d tables and assert every stated band."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sections = []

    for label, provider in [("5a TCP", "tcp"), ("5b RDMA", "rdma")]:
        table = Table(
            f"Fig. {label}: DFS 1 MiB throughput [GiB/s] "
            "(R/W/RR/RW = read/write/randread/randwrite)",
            ["R", "W", "RR", "RW"],
            row_header="client x SSDs",
        )
        for client in ["host", "dpu"]:
            for n_ssds in [1, 4]:
                table.add_row(f"{client} x{n_ssds}", [
                    f"{cell(provider, client, rw, MIB, n_ssds).bandwidth_gib:.2f}"
                    for rw in WORKLOADS
                ])
        sections.append(table.render())

    for label, provider in [("5c TCP", "tcp"), ("5d RDMA", "rdma")]:
        table = Table(
            f"Fig. {label}: DFS 4 KiB IOPS [K]",
            ["RR", "RW"],
            row_header="client",
        )
        for client in ["host", "dpu"]:
            table.add_row(client, [
                f"{cell(provider, client, rw, 4 * KIB, 1).kiops:.0f}"
                for rw in ["randread", "randwrite"]
            ])
        sections.append(table.render())

    checks = [
        ("fig5.host.tcp.read.1mib.1ssd", cell("tcp", "host", "read", MIB, 1).bandwidth),
        ("fig5.host.tcp.read.1mib.4ssd", cell("tcp", "host", "read", MIB, 4).bandwidth),
        ("fig5.host.tcp.4k", cell("tcp", "host", "randread", 4 * KIB, 1).iops),
        ("fig5.dpu.tcp.read.1mib.1ssd", cell("tcp", "dpu", "read", MIB, 1).bandwidth),
        ("fig5.dpu.tcp.write.1mib.4ssd", cell("tcp", "dpu", "write", MIB, 4).bandwidth),
        ("fig5.dpu.tcp.4k", cell("tcp", "dpu", "randread", 4 * KIB, 1).iops),
        ("fig5.rdma.read.1mib.1ssd", cell("rdma", "dpu", "read", MIB, 1).bandwidth),
        ("fig5.rdma.1mib.4ssd", cell("rdma", "dpu", "read", MIB, 4).bandwidth),
        ("fig5.dpu_rdma_vs_host_ratio.4k",
         cell("rdma", "dpu", "randread", 4 * KIB, 1).iops
         / cell("rdma", "host", "randread", 4 * KIB, 1).iops),
        ("fig5.dpu_rdma_vs_dpu_tcp.4k",
         cell("rdma", "dpu", "randread", 4 * KIB, 1).iops
         / cell("tcp", "dpu", "randread", 4 * KIB, 1).iops),
        ("fig5.dpu_rdma_vs_host_ratio.1mib",
         cell("rdma", "dpu", "read", MIB, 1).bandwidth
         / cell("rdma", "host", "read", MIB, 1).bandwidth),
    ]
    lines = [describe_band(PAPER_BANDS[k], v) for k, v in checks]

    text = "\n\n".join(sections) + "\n\nPaper-vs-measured:\n" + "\n".join(lines)
    write_report(results_dir, "fig5_dfs_offload.txt", text,
                 payload={"cells": cells_payload(
                     CACHE, ["provider", "client", "rw", "bs", "n_ssds", "numjobs"])})
    print("\n" + text)
    for k, v in checks:
        assert PAPER_BANDS[k].holds(v), describe_band(PAPER_BANDS[k], v)
