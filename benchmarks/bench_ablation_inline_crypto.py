"""Ablation: DPU-resident inline encryption (abstract, §5).

ROS2's pitch for offload includes "inline services (e.g. encryption/
decryption) close to the NIC".  This bench quantifies it: sequential-read
throughput with encryption off, with the DPU's inline crypto engine, and
with host software crypto — showing the accelerator keeps the encrypted
data path near the plain-path rate while software crypto eats job-thread
CPU.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.bench.runner import run_ros2_fio
from repro.core import Ros2Config, Ros2System
from repro.hw.specs import MIB
from repro.sim import Environment
from repro.workload.fio import FioJobSpec

CACHE = CellCache()

CASES = {
    # (client, encrypted): the DPU uses its accelerator automatically.
    "dpu-plain": ("dpu", False),
    "dpu-inline-crypto": ("dpu", True),
    "host-plain": ("host", False),
    "host-sw-crypto": ("host", True),
}


def run_case(name: str):
    def _run():
        client, encrypted = CASES[name]
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client=client, n_ssds=1))
        # One job thread: crypto cost lands on the application's critical
        # path (software ChaCha20 streams ~3 GiB/s per core; the DPU's
        # accelerator runs near line rate off-thread).
        spec = FioJobSpec(rw="read", bs=MIB, numjobs=1, iodepth=16,
                          runtime=0.1, ramp_time=0.03, size=64 * MIB)
        policy = {"crypto_key": bytes(32)} if encrypted else {}
        return run_ros2_fio(system, spec, tenant_policy=policy)

    return CACHE.get_or_run((name,), _run)


@pytest.mark.parametrize("case", sorted(CASES))
def test_crypto_case(benchmark, case):
    result = benchmark.pedantic(lambda: run_case(case), rounds=1, iterations=1)
    assert result.total_ios > 0


def test_crypto_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: inline encryption on the 1 MiB sequential-read path (RDMA)",
        ["GiB/s", "vs plain"],
        row_header="configuration",
    )
    base = {"dpu": run_case("dpu-plain").bandwidth, "host": run_case("host-plain").bandwidth}
    for name in ["dpu-plain", "dpu-inline-crypto", "host-plain", "host-sw-crypto"]:
        r = run_case(name)
        client = CASES[name][0]
        table.add_row(name, [f"{r.bandwidth_gib:.2f}",
                             f"{r.bandwidth / base[client] * 100:.0f}%"])

    dpu_ratio = run_case("dpu-inline-crypto").bandwidth / base["dpu"]
    host_ratio = run_case("host-sw-crypto").bandwidth / base["host"]
    lines = [
        f"[{'OK ' if dpu_ratio > 0.9 else 'OUT'}] DPU inline crypto retains "
        f">90% of plain throughput ({dpu_ratio * 100:.0f}%)",
        f"[{'OK ' if dpu_ratio > host_ratio else 'OUT'}] accelerator beats host "
        f"software crypto ({dpu_ratio * 100:.0f}% vs {host_ratio * 100:.0f}%)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_inline_crypto.txt", text)
    print("\n" + text)
    assert dpu_ratio > 0.9
    assert dpu_ratio > host_ratio
