"""Ablation: client-side read caching (the dfuse caching layer).

Epoch-style training re-reads the same dataset; a client cache on the
DPU absorbs repeat fetches before they reach the wire.  This bench runs
two epochs of a dataloader over a working set that fits in cache and
reports epoch-2 speedup plus the fetch traffic that never left the node.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.core import Ros2Config, Ros2System
from repro.daos.dcache import CachedDfsFile, ClientCache
from repro.hw.specs import GIB, KIB, MIB
from repro.sim import Environment

CACHE = CellCache()

DATASET = 128 * MIB
CHUNK = 256 * KIB


def run_case(cached: bool):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client="dpu",
                                            n_ssds=4))
        token = system.register_tenant("epochs")

        def go(env):
            yield from system.start()
            session = yield from system.open_session(token)
            state = system.service.sessions[session.session_id]
            ctx = state.svc_ctx
            f = yield from state.ns.create(ctx, "/epoch.bin", chunk_size=CHUNK)
            for off in range(0, DATASET, MIB):
                yield from f.write(ctx, off, nbytes=MIB)
            reader = f
            cache = None
            if cached:
                cache = ClientCache(env, capacity_bytes=DATASET)
                reader = CachedDfsFile(f, cache)

            def epoch(env):
                lanes = 16
                done = []

                def lane(env, k):
                    lctx = session.data_port().new_context()
                    for off in range(k * CHUNK, DATASET, lanes * CHUNK):
                        yield from reader.read(lctx, off, CHUNK)

                procs = [env.process(lane(env, k)) for k in range(lanes)]
                yield env.all_of(procs)

            t0 = env.now
            yield from epoch(env)
            e1 = env.now - t0
            t0 = env.now
            yield from epoch(env)
            e2 = env.now - t0
            return e1, e2, cache

        p = env.process(go(env))
        env.run(until=p)
        return p.value

    return CACHE.get_or_run((cached,), _run)


@pytest.mark.parametrize("cached", [False, True], ids=["uncached", "cached"])
def test_epochs(benchmark, cached):
    e1, e2, _ = benchmark.pedantic(lambda: run_case(cached), rounds=1, iterations=1)
    assert e1 > 0 and e2 > 0


def test_client_cache_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    e1_u, e2_u, _ = run_case(False)
    e1_c, e2_c, cache = run_case(True)
    table = Table(
        "Ablation: client read cache over two dataloader epochs "
        f"({DATASET // MIB} MiB working set, {CHUNK // KIB} KiB samples, DPU)",
        ["epoch1 GiB/s", "epoch2 GiB/s"],
        row_header="mode",
    )
    table.add_row("uncached", [f"{DATASET / e1_u / GIB:.2f}",
                               f"{DATASET / e2_u / GIB:.2f}"])
    table.add_row("cached", [f"{DATASET / e1_c / GIB:.2f}",
                             f"{DATASET / e2_c / GIB:.2f}"])

    speedup = e2_u / e2_c
    lines = [
        f"[{'OK ' if speedup > 5 else 'OUT'}] warm epoch served from client "
        f"memory ({speedup:.0f}x faster than uncached)",
        f"[{'OK ' if cache.hit_rate() > 0.45 else 'OUT'}] cache hit rate over "
        f"both epochs: {cache.hit_rate() * 100:.0f}%",
        f"[{'OK ' if abs(e1_c / e1_u - 1) < 0.1 else 'OUT'}] cold epoch pays "
        f"no measurable caching tax ({e1_c / e1_u:.2f}x)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_client_cache.txt", text)
    print("\n" + text)
    assert speedup > 5
    assert cache.hit_rate() > 0.45
    assert abs(e1_c / e1_u - 1) < 0.1
