"""Ablation: GPUDirect RDMA placement vs DPU-DRAM staging (paper §3.5).

The paper leaves GPU placement as future work but specifies the design;
we implemented it, so this bench measures what it buys: read throughput
into GPU HBM with direct placement (server RDMA-writes into GPU memory)
vs the staged baseline (payload terminates in DPU DRAM, then crosses PCIe
into HBM), across GPU generations.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.bench.runner import run_ros2_fio  # noqa: F401 (doc reference)
from repro.core import Ros2Config, Ros2System
from repro.core.gpudirect import GpuDirectPath, StagedGpuPath
from repro.hw.gpu import GpuDevice
from repro.hw.specs import GIB, GPU_BY_NAME, MIB
from repro.sim import Environment

CACHE = CellCache()

GPUS = ("A100", "H100", "B200")
MEASURE = 0.1
RAMP = 0.03


#: DPU DRAM available for payload staging in this scenario: the 30 GiB
#: BlueField DRAM is shared by many tenants; the GPU reader's buffer pool
#: is a small carve-out.  GPUDirect bypasses staging entirely (§3.5), so
#: only the staged baseline feels the pressure.
STAGING_BUDGET = 3 * MIB


def run_case(gpu_name: str, direct: bool):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client="dpu", n_ssds=4))
        token = system.register_tenant("gpu")
        count = [0]

        def setup(env):
            yield from system.start()
            session = yield from system.open_session(token)
            fh = yield from session.create("/model.shard")
            port = session.data_port()
            ctx = port.new_context()
            # Lay out 512 MiB of model bytes (full staging budget for setup).
            for off in range(0, 512 * MIB, MIB):
                yield from port.write(ctx, fh, off, nbytes=MIB)
            # Now shrink the staging pool to the scenario's carve-out.
            from repro.core.data_plane import DataPlane

            system.service.data_plane = DataPlane(
                system.client_node, "rdma", staging_budget_bytes=STAGING_BUDGET
            )
            gpu = GpuDevice(env, GPU_BY_NAME[gpu_name])
            cls = GpuDirectPath if direct else StagedGpuPath
            return cls(system.service, session.session_id, gpu), port, fh

        p = env.process(setup(env))
        env.run(until=p)
        path, port, fh = p.value
        measure_from = env.now + RAMP

        def reader(env, lane):
            ctx = port.new_context()
            off = lane * 16 * MIB
            while True:
                yield from path.read(ctx, fh, off % (512 * MIB), MIB)
                off += MIB
                if env.now >= measure_from:
                    count[0] += 1

        for lane in range(16):
            env.process(reader(env, lane))
        env.run(until=measure_from)
        count[0] = 0
        env.run(until=measure_from + MEASURE)
        return count[0] * MIB / MEASURE

    return CACHE.get_or_run((gpu_name, direct), _run)


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("direct", [True, False], ids=["gpudirect", "staged"])
def test_gpu_path(benchmark, gpu, direct):
    rate = benchmark.pedantic(lambda: run_case(gpu, direct), rounds=1, iterations=1)
    assert rate > 0


def test_gpudirect_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: GPU ingest from ROS2 under DPU-DRAM pressure "
        f"(staging pool {STAGING_BUDGET // MIB} MiB; RDMA, DPU client, "
        "4 SSDs, 1 MiB reads)",
        ["staged GiB/s", "GPUDirect GiB/s", "speedup"],
        row_header="GPU",
    )
    speedups = {}
    for gpu in GPUS:
        staged = run_case(gpu, False)
        direct = run_case(gpu, True)
        speedups[gpu] = direct / staged
        table.add_row(gpu, [f"{staged / GIB:.2f}", f"{direct / GIB:.2f}",
                            f"{speedups[gpu]:.2f}x"])

    lines = [
        f"[{'OK ' if all(s >= 1.0 for s in speedups.values()) else 'OUT'}] "
        "direct placement never loses to staging",
        f"[{'OK ' if max(speedups.values()) > 1.3 else 'OUT'}] "
        "bypassing DPU-DRAM staging wins clearly under memory pressure "
        f"(best {max(speedups.values()):.2f}x)",
        "note: with an unconstrained staging pool the two paths deliver the "
        "same throughput (PCIe Gen5 is not the bottleneck) - the gain is "
        "DRAM footprint and the removed copy, exactly as §3.5 argues.",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_gpudirect.txt", text)
    print("\n" + text)
    assert all(s >= 1.0 for s in speedups.values())
    assert max(speedups.values()) > 1.3
