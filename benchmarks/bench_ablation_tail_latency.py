"""Ablation: latency distributions — TCP vs RDMA at moderate load.

The background section credits RDMA designs with "predictable low
latency" (§2.2).  Throughput plots hide that; this bench runs the same
4 KiB random-read workload at ~60 % of each transport's capacity and
compares p50/p99 latency across transport x client placement — showing
RDMA's tighter distribution and the DPU's added-but-bounded cost.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.bench.runner import run_ros2_fio
from repro.core import Ros2Config, Ros2System
from repro.hw.specs import KIB, MIB
from repro.sim import Environment
from repro.workload.fio import FioJobSpec

CACHE = CellCache()

CONFIGS = [("tcp", "host"), ("tcp", "dpu"), ("rdma", "host"), ("rdma", "dpu")]

#: Moderate load: jobs x iodepth chosen to sit near 60% of each
#: configuration's 4 KiB ceiling (queueing shows, saturation doesn't).
LOAD = {("tcp", "host"): (8, 4), ("tcp", "dpu"): (4, 4),
        ("rdma", "host"): (8, 6), ("rdma", "dpu"): (6, 4)}


def run_case(provider: str, client: str):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport=provider, client=client,
                                            n_ssds=1))
        jobs, qd = LOAD[(provider, client)]
        spec = FioJobSpec(rw="randread", bs=4 * KIB, numjobs=jobs, iodepth=qd,
                          runtime=0.05, ramp_time=0.015, size=48 * MIB,
                          record_latency=True)
        return run_ros2_fio(system, spec)

    return CACHE.get_or_run((provider, client), _run)


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_latency_case(benchmark, cfg):
    result = benchmark.pedantic(lambda: run_case(*cfg), rounds=1, iterations=1)
    assert result.latency["count"] > 0


def test_tail_latency_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: 4 KiB randread latency at ~60% load (us)",
        ["p50", "p95", "p99", "KIOPS"],
        row_header="transport/client",
    )
    lat = {}
    for provider, client in CONFIGS:
        r = run_case(provider, client)
        lat[(provider, client)] = r.latency
        table.add_row(f"{provider}/{client}", [
            f"{r.latency['p50'] * 1e6:.0f}",
            f"{r.latency['p95'] * 1e6:.0f}",
            f"{r.latency['p99'] * 1e6:.0f}",
            f"{r.kiops:.0f}",
        ])

    rdma_h, tcp_h = lat[("rdma", "host")], lat[("tcp", "host")]
    rdma_d = lat[("rdma", "dpu")]
    lines = [
        f"[{'OK ' if rdma_h['p50'] < tcp_h['p50'] else 'OUT'}] RDMA median "
        f"beats TCP on the host ({rdma_h['p50'] * 1e6:.0f} vs "
        f"{tcp_h['p50'] * 1e6:.0f} us)",
        f"[{'OK ' if rdma_h['p99'] < tcp_h['p99'] else 'OUT'}] RDMA p99 beats "
        f"TCP p99 ({rdma_h['p99'] * 1e6:.0f} vs {tcp_h['p99'] * 1e6:.0f} us)",
        f"[{'OK ' if rdma_d['p99'] < tcp_h['p50'] * 4 else 'OUT'}] DPU RDMA "
        "tail stays bounded (offload does not blow up p99: "
        f"{rdma_d['p99'] * 1e6:.0f} us)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_tail_latency.txt", text)
    print("\n" + text)
    assert rdma_h["p50"] < tcp_h["p50"]
    assert rdma_h["p99"] < tcp_h["p99"]
    assert rdma_d["p99"] < tcp_h["p50"] * 4
