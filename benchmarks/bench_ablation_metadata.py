"""Ablation: metadata operation rates (mdtest) — host vs DPU client.

DAOS advertises "scalable metadata operations" (§2.4); the offload
question is whether moving the client to the BlueField's slower cores
hurts the metadata path (many small RPCs, no bulk to amortize).  This
bench runs mdtest (create/stat/unlink) for both placements and rank
counts.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.core import Ros2Config, Ros2System
from repro.sim import Environment
from repro.workload.mdtest import MdtestSpec, run_mdtest

CACHE = CellCache()

RANKS = (1, 4, 16)


def run_case(client: str, ranks: int):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client=client,
                                            n_ssds=1, data_mode=False))
        token = system.register_tenant("md")

        def go(env):
            yield from system.start()
            session = yield from system.open_session(token)
            state = system.service.sessions[session.session_id]
            spec = MdtestSpec(ranks=ranks, files_per_rank=24)
            return (yield from run_mdtest(
                env, state.ns, state.daos.new_context, spec
            ))

        p = env.process(go(env))
        env.run(until=p)
        return p.value

    return CACHE.get_or_run((client, ranks), _run)


@pytest.mark.parametrize("client", ["host", "dpu"])
@pytest.mark.parametrize("ranks", RANKS)
def test_mdtest_case(benchmark, client, ranks):
    result = benchmark.pedantic(lambda: run_case(client, ranks),
                                rounds=1, iterations=1)
    assert result.create_per_sec > 0


def test_metadata_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: mdtest metadata rates over ROS2 (RDMA, ops/s)",
        ["create/s", "stat/s", "unlink/s"],
        row_header="client x ranks",
    )
    for client in ["host", "dpu"]:
        for ranks in RANKS:
            r = run_case(client, ranks)
            table.add_row(f"{client} x{ranks}", [
                f"{r.create_per_sec:,.0f}",
                f"{r.stat_per_sec:,.0f}",
                f"{r.unlink_per_sec:,.0f}",
            ])

    host16 = run_case("host", 16).create_per_sec
    dpu16 = run_case("dpu", 16).create_per_sec
    scaling = run_case("host", 16).create_per_sec / run_case("host", 1).create_per_sec
    ratio = dpu16 / host16
    lines = [
        f"[{'OK ' if scaling > 3 else 'OUT'}] metadata rate scales with ranks "
        f"({scaling:.1f}x from 1 to 16)",
        f"[{'OK ' if 0.3 < ratio < 1.0 else 'OUT'}] DPU metadata path is "
        f"slower but serviceable ({ratio:.2f}x of host — Arm cores on the "
        "RPC path, no bulk to amortize)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_metadata.txt", text)
    print("\n" + text)
    assert scaling > 3
    assert 0.3 < ratio < 1.0
