"""Paper Fig. 4: remote SPDK NVMe-oF, TCP vs RDMA, one NVMe SSD.

The paper sweeps client x server core counts {1,2,4,8,16}^2 and reports
1 MiB throughput heatmaps (4a TCP, 4b RDMA) and 4 KiB IOPS heatmaps
(4c TCP, 4d RDMA).  We sweep a representative sub-grid and check the
stated shapes:

* at 1 MiB, both transports plateau at the media ceiling once a few cores
  are present (TCP ~ RDMA);
* at 4 KiB, RDMA delivers substantially higher IOPS and keeps scaling
  with cores, while TCP plateaus early.
"""

import pytest
from conftest import CellCache, cells_payload, write_report

from repro.bench.calibration import PAPER_BANDS, describe_band
from repro.bench.report import format_heatmap
from repro.bench.runner import run_fig4_cell
from repro.hw.specs import KIB, MIB

CORES = (1, 4, 16)
GRID = [(c, s) for c in CORES for s in CORES]
CACHE = CellCache()


def cell(provider: str, rw: str, bs: int, c: int, s: int):
    runtime = 0.03 if bs >= MIB else 0.02
    return CACHE.get_or_run(
        (provider, rw, bs, c, s),
        lambda: run_fig4_cell(provider, rw, bs, c, s, runtime=runtime),
    )


@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc"])
@pytest.mark.parametrize("cs", GRID, ids=lambda cs: f"c{cs[0]}s{cs[1]}")
def test_fig4_1mib(benchmark, provider, cs):
    result = benchmark.pedantic(
        lambda: cell(provider, "read", MIB, *cs), rounds=1, iterations=1
    )
    assert result.total_ios > 0


@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc"])
@pytest.mark.parametrize("cs", GRID, ids=lambda cs: f"c{cs[0]}s{cs[1]}")
def test_fig4_4k(benchmark, provider, cs):
    result = benchmark.pedantic(
        lambda: cell(provider, "randread", 4 * KIB, *cs), rounds=1, iterations=1
    )
    assert result.total_ios > 0


def test_fig4_report(benchmark, results_dir):
    """Render the four heatmaps and assert the stated shapes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sections = []
    for label, provider, rw, bs, unit, conv in [
        ("4a TCP 1MiB read", "ucx+tcp", "read", MIB, "GiB/s", lambda r: r.bandwidth),
        ("4b RDMA 1MiB read", "ucx+rc", "read", MIB, "GiB/s", lambda r: r.bandwidth),
        ("4c TCP 4KiB randread", "ucx+tcp", "randread", 4 * KIB, "KIOPS",
         lambda r: r.iops),
        ("4d RDMA 4KiB randread", "ucx+rc", "randread", 4 * KIB, "KIOPS",
         lambda r: r.iops),
    ]:
        values = {
            (c, s): conv(cell(provider, rw, bs, c, s)) for c, s in GRID
        }
        sections.append(format_heatmap(
            f"Fig. {label} (remote SPDK, 1 SSD)",
            "client cores", "server cores", CORES, CORES, values, unit,
        ))

    # Shape checks from the text.
    tcp_1m = cell("ucx+tcp", "read", MIB, 4, 4).bandwidth
    rdma_1m = cell("ucx+rc", "read", MIB, 4, 4).bandwidth
    ratio_1m = tcp_1m / rdma_1m
    tcp_4k = cell("ucx+tcp", "randread", 4 * KIB, 4, 4).iops
    rdma_4k = cell("ucx+rc", "randread", 4 * KIB, 4, 4).iops
    ratio_4k = rdma_4k / tcp_4k
    rdma_scaling = (cell("ucx+rc", "randread", 4 * KIB, 16, 16).iops
                    / cell("ucx+rc", "randread", 4 * KIB, 1, 1).iops)

    checks = [
        ("fig4.1mib.tcp_vs_rdma_ratio", ratio_1m),
        ("fig4.4k.rdma_vs_tcp_ratio", ratio_4k),
        ("fig4.4k.rdma_core_scaling", rdma_scaling),
    ]
    lines = [describe_band(PAPER_BANDS[k], v) for k, v in checks]
    # "TCP heatmaps show limited benefit from additional cores, while RDMA
    # continues to gain": RDMA beats TCP in every matched cell, RDMA
    # reaches the media ceiling, TCP never does.
    rdma_wins_everywhere = all(
        cell("ucx+rc", "randread", 4 * KIB, c, s).iops
        > cell("ucx+tcp", "randread", 4 * KIB, c, s).iops
        for c, s in GRID
    )
    tcp_best = max(cell("ucx+tcp", "randread", 4 * KIB, c, s).iops for c, s in GRID)
    rdma_best = max(cell("ucx+rc", "randread", 4 * KIB, c, s).iops for c, s in GRID)
    lines.append(
        f"[{'OK ' if rdma_wins_everywhere else 'OUT'}] RDMA > TCP in every "
        f"core-combination cell"
    )
    lines.append(
        f"[{'OK ' if rdma_best > 1.5 * tcp_best else 'OUT'}] best RDMA cell "
        f"({rdma_best / 1e3:.0f} K) >> best TCP cell ({tcp_best / 1e3:.0f} K)"
    )

    text = "\n\n".join(sections) + "\n\nPaper-vs-measured:\n" + "\n".join(lines)
    write_report(results_dir, "fig4_remote_spdk.txt", text,
                 payload={"cells": cells_payload(
                     CACHE, ["provider", "rw", "bs", "client_cores", "server_cores"])})
    print("\n" + text)
    for k, v in checks:
        assert PAPER_BANDS[k].holds(v), describe_band(PAPER_BANDS[k], v)
    assert rdma_wins_everywhere
    assert rdma_best > 1.5 * tcp_best
