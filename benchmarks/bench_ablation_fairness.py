"""Ablation: multi-tenant fairness on the DPU (§5 future work, implemented).

The paper plans to "stress multi-tenant scheduling and fairness on the
DPU".  Three tenants with unequal offered load share one DPU data plane:

* without per-tenant queues, the most aggressive tenant wins (low Jain
  fairness index);
* with the SFQ scheduler at equal weights, shares equalize (index → 1);
* with 4:2:1 weights, shares track the configured ratios.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.core import Ros2Config, Ros2System
from repro.core.qos import QosScheduler
from repro.hw.specs import GIB, MIB
from repro.sim import Environment

CACHE = CellCache()

#: Offered load (flood lanes) per tenant: deliberately skewed.
LANES = {"t0": 24, "t1": 8, "t2": 2}
MEASURE = 0.15
RAMP = 0.05


def run_scenario(mode: str):
    """mode: 'none' | 'equal' | 'weighted'; returns per-tenant GiB/s."""

    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client="dpu",
                                            n_ssds=4))
        tokens = {name: system.register_tenant(name) for name in LANES}
        if mode == "equal":
            system.service.enable_qos(9 * GIB)
        elif mode == "weighted":
            system.service.enable_qos(
                9 * GIB, weights={"t0": 4.0, "t1": 2.0, "t2": 1.0}
            )
        counts = {name: 0 for name in LANES}

        def setup(env):
            yield from system.start()
            out = {}
            for name in LANES:
                s = yield from system.open_session(tokens[name])
                fh = yield from s.create(f"/{name}.dat")
                out[name] = (s.data_port(), fh)
            return out

        p = env.process(setup(env))
        env.run(until=p)
        ports = p.value
        measure_from = env.now + RAMP

        def writer(env, name, k):
            port, fh = ports[name]
            ctx = port.new_context()
            off = k * 64 * MIB
            while True:
                yield from port.write(ctx, fh, off % (1024 * MIB), nbytes=MIB)
                off += MIB
                if env.now >= measure_from:
                    counts[name] += 1

        for name, lanes in LANES.items():
            for k in range(lanes):
                env.process(writer(env, name, k))
        env.run(until=measure_from)
        for name in counts:
            counts[name] = 0
        env.run(until=measure_from + MEASURE)
        return {name: counts[name] * MIB / MEASURE for name in LANES}

    return CACHE.get_or_run((mode,), _run)


@pytest.mark.parametrize("mode", ["none", "equal", "weighted"])
def test_fairness_case(benchmark, mode):
    rates = benchmark.pedantic(lambda: run_scenario(mode), rounds=1, iterations=1)
    assert all(r >= 0 for r in rates.values())


def test_fairness_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table(
        "Ablation: 3-tenant fairness on the DPU (offered load 24:8:2 lanes, "
        "1 MiB writes, RDMA, 4 SSDs)",
        ["t0 GiB/s", "t1 GiB/s", "t2 GiB/s", "Jain index"],
        row_header="scheduler",
    )
    indices = {}
    for mode, label in [("none", "no per-tenant queues"),
                        ("equal", "SFQ, equal weights"),
                        ("weighted", "SFQ, weights 4:2:1")]:
        rates = run_scenario(mode)
        indices[mode] = QosScheduler.jain_index(list(rates.values()))
        table.add_row(label, [
            f"{rates['t0'] / GIB:.2f}", f"{rates['t1'] / GIB:.2f}",
            f"{rates['t2'] / GIB:.2f}", f"{indices[mode]:.3f}",
        ])

    weighted = run_scenario("weighted")
    ratio_01 = weighted["t0"] / weighted["t1"]
    ratio_12 = weighted["t1"] / weighted["t2"]
    lines = [
        f"[{'OK ' if indices['equal'] > indices['none'] + 0.1 else 'OUT'}] "
        f"SFQ raises fairness (Jain {indices['none']:.2f} -> "
        f"{indices['equal']:.2f})",
        f"[{'OK ' if indices['equal'] > 0.95 else 'OUT'}] equal weights reach "
        f"near-perfect fairness ({indices['equal']:.3f})",
        f"[{'OK ' if 1.6 < ratio_01 < 2.5 and 1.6 < ratio_12 < 2.5 else 'OUT'}] "
        f"4:2:1 weights hold ({ratio_01:.2f}:{ratio_12:.2f}:1 measured)",
    ]
    text = table.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "ablation_fairness.txt", text)
    print("\n" + text)
    assert indices["equal"] > indices["none"] + 0.1
    assert indices["equal"] > 0.95
    assert 1.6 < ratio_01 < 2.5 and 1.6 < ratio_12 < 2.5
