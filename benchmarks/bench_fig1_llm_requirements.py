"""Paper Fig. 1: diverse storage requirements of LLM tasks.

Fig. 1 is the motivation figure: LLM pipelines stress storage in three
very different ways (shuffled dataloader reads, bulk parameter loads,
periodic checkpoints).  We reproduce it quantitatively: each phase's
requirement profile (pattern, block size, direction) is characterized and
then *run* against the assembled ROS2 stack (RDMA, host client, 4 SSDs)
to show the delivered rates, alongside the B ~ G*r*s ingest requirement.
"""

import pytest
from conftest import CellCache, write_report

from repro.bench.report import Table
from repro.bench.runner import run_ros2_fio
from repro.core import Ros2Config, Ros2System
from repro.hw.specs import GIB, MIB
from repro.sim import Environment
from repro.workload.llm import (
    CheckpointSpec,
    DataloaderSpec,
    LlmIngestModel,
    ParameterLoadSpec,
)

CACHE = CellCache()

PHASES = {
    "dataloader": DataloaderSpec(),
    "parameter_load": ParameterLoadSpec(),
    "checkpoint": CheckpointSpec(),
}


def run_phase(name: str):
    def _run():
        env = Environment()
        system = Ros2System(env, Ros2Config(transport="rdma", client="host", n_ssds=4))
        spec = PHASES[name].fio_spec(runtime=0.05)
        # Keep the simulated footprint tractable: cap per-job regions.
        import dataclasses
        spec = dataclasses.replace(spec, size=min(spec.size, 64 * MIB))
        return run_ros2_fio(system, spec)

    return CACHE.get_or_run((name,), _run)


@pytest.mark.parametrize("phase", sorted(PHASES))
def test_fig1_phase(benchmark, phase):
    result = benchmark.pedantic(lambda: run_phase(phase), rounds=1, iterations=1)
    assert result.total_ios > 0


def test_fig1_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    req = Table(
        "Fig. 1: storage requirement profile per LLM phase",
        ["pattern", "direction", "block", "key pressure"],
        row_header="phase",
    )
    req.add_row("dataloader", ["random", "read", "256 KiB",
                               "IOPS + tail latency (shuffle)"])
    req.add_row("parameter_load", ["sequential", "read", "1 MiB",
                                   "burst bandwidth at job start"])
    req.add_row("checkpoint", ["sequential", "write", "1 MiB",
                               "sustained bandwidth, periodic"])

    measured = Table(
        "Delivered by ROS2 (RDMA, host client, 4 SSDs)",
        ["GiB/s", "KIOPS"],
        row_header="phase",
    )
    for name in sorted(PHASES):
        r = run_phase(name)
        measured.add_row(name, [f"{r.bandwidth_gib:.2f}", f"{r.kiops:.1f}"])

    need = LlmIngestModel().node_ingest_rate()
    delivered = run_phase("dataloader").bandwidth
    ckpt = CheckpointSpec()
    lines = [
        f"required ingest per node (B ~ G*r*s, 8 GPUs): {need / GIB:.2f} GiB/s",
        f"dataloader delivered: {delivered / GIB:.2f} GiB/s "
        f"[{'OK ' if delivered > need else 'OUT'}] covers the requirement",
        f"checkpoint requirement ({ckpt.state_bytes / GIB:.0f} GiB per "
        f"{ckpt.period_sec:.0f}s): {ckpt.required_write_rate / GIB:.2f} GiB/s; "
        f"delivered {run_phase('checkpoint').bandwidth / GIB:.2f} GiB/s "
        f"[{'OK ' if run_phase('checkpoint').bandwidth > ckpt.required_write_rate else 'OUT'}]",
    ]

    text = req.render() + "\n\n" + measured.render() + "\n\n" + "\n".join(lines)
    write_report(results_dir, "fig1_llm_requirements.txt", text)
    print("\n" + text)
    assert delivered > need
    assert run_phase("checkpoint").bandwidth > ckpt.required_write_rate
