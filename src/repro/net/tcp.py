"""Kernel TCP transport model.

What the model charges for one message (all constants in
:data:`repro.hw.specs.TCP_COSTS`, scaled by each host's factors):

=================  =========================================================
sender             ``tx_cpu_per_op`` on a general core (syscall, skb setup)
                   plus ``tx_cpu_per_byte * size`` (copy into socket buffer)
sender, serial     ``stack_serial_per_op`` in the host-wide TCP stack
                   section (socket/qdisc locks, scaled by ``lock_factor``)
connection         ``per_conn_byte_cost * size`` through the connection's
                   own FIFO server — the classic single-stream ceiling
wire               ``frame/goodput_efficiency`` bytes across the switch,
                   plus ``rtt_overhead/2`` fixed stack latency
receiver, RX path  ``rx_cpu_per_byte * size`` on the *restricted RX core
                   set* (softirq + copy-to-user).  On BlueField-3 this pool
                   is 2 slow cores — the receive bottleneck of §4.4
receiver           ``rx_cpu_per_op`` on a general core (wakeup, syscall)
receiver, serial   ``stack_serial_per_op`` in the receiver's stack section
=================  =========================================================

The *functional* layer is a connection with in-order reliable delivery of
:class:`~repro.net.message.Message` objects into the receiver's inbox.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.hw.platform import ComputeNode
from repro.hw.specs import TCP_COSTS, TransportCosts
from repro.net.message import Message
from repro.sim.core import Environment, Event
from repro.sim.monitor import RateMeter
from repro.sim.queues import FifoServer
from repro.sim.resources import Store

__all__ = ["TcpConnection", "TcpStack"]


class TcpConnection:
    """One established, bidirectional TCP connection between two nodes."""

    _ids = 0

    def __init__(
        self,
        a: "TcpStack",
        b: "TcpStack",
    ) -> None:
        TcpConnection._ids += 1
        self.conn_id = TcpConnection._ids
        self._stacks: Dict[str, TcpStack] = {a.node.name: a, b.node.name: b}
        # Per-direction single-stream processing (per_conn_byte_cost).
        env = a.env
        # Wait-attribution names are shared across connections of the same
        # endpoint (one blame bucket per node-wide concept, not per conn).
        self._stream: Dict[str, FifoServer] = {
            a.node.name: FifoServer(env, name=f"{a.node.name}.tcp_stream"),
            b.node.name: FifoServer(env, name=f"{b.node.name}.tcp_stream"),
        }
        #: Per-endpoint inbox of delivered messages.
        self.inbox: Dict[str, Store] = {
            a.node.name: Store(env, name=f"{a.node.name}.tcp_inbox"),
            b.node.name: Store(env, name=f"{b.node.name}.tcp_inbox"),
        }
        #: Separate inbox for provider-internal messages (kinds starting
        #: with "_"), so RMA emulation never races application receives.
        self.internal: Dict[str, Store] = {
            a.node.name: Store(env, name=f"{a.node.name}.tcp_internal"),
            b.node.name: Store(env, name=f"{b.node.name}.tcp_internal"),
        }
        self.closed = False
        #: Injected-reset window end: sends raise :class:`ConnectionError`
        #: while ``env.now < fail_until``.  The connection object (and its
        #: inboxes, with any parked receivers) survives the reset — only
        #: the stream is interrupted, as with a kernel RST + reconnect.
        self.fail_until = 0.0
        self._env = env
        #: Per-direction hot-path capsule: every object :meth:`send` needs
        #: for a ``src -> peer`` message, resolved once at connect time
        #: instead of through 10+ attribute/dict lookups per message.
        self._dir: Dict[str, tuple] = {}
        for name, stack in self._stacks.items():
            peer = self._stacks[self.peer_of(name)]
            snode, dnode = stack.node, peer.node
            self._dir[name] = (
                stack,                              # 0: source stack
                peer,                               # 1: destination stack
                stack.costs,                        # 2: transport costs
                snode.cpu,                          # 3: sender cores
                snode.lock("tcp_stack"),            # 4: sender stack section
                self._stream[name],                 # 5: per-conn stream
                snode.switch,                       # 6
                dnode.name,                         # 7
                dnode.tcp_rx_cpu,                   # 8: restricted RX cores
                dnode.cpu,                          # 9: receiver cores
                dnode.lock("tcp_stack"),            # 10: receiver section
                "bluefield" in snode.spec.name,     # 11
                "bluefield" in dnode.spec.name,     # 12
            )

    def peer_of(self, name: str) -> str:
        """The other endpoint's node name."""
        for n in self._stacks:
            if n != name:
                return n
        raise KeyError(name)

    def send(self, msg: Message) -> Generator[Event, None, None]:
        """Send ``msg`` from ``msg.src``; completes when it is delivered.

        Use as ``yield from conn.send(msg)`` or wrap in ``env.process`` to
        pipeline multiple sends.
        """
        if self.closed:
            raise ConnectionError(f"connection {self.conn_id} is closed")
        if self.fail_until > self._env.now:
            raise ConnectionError(
                f"connection {self.conn_id} reset (injected fault)"
            )
        cap = self._dir.get(msg.src)
        if cap is None:
            raise KeyError(f"{msg.src!r} is not an endpoint of this connection")
        # Hot-path capsule resolved at connect time (see __init__) — this
        # generator runs once per wire message and is the single hottest
        # model function in every TCP experiment.
        (src, dst, costs, src_cpu, src_lock, stream, switch, dst_name,
         rx_pool, dst_cpu, dst_lock, src_bf3, dst_bf3) = cap
        env = src.env
        size = msg.nbytes
        trace = msg.meta.get("trace") if msg.meta else None

        # --- sender ---------------------------------------------------
        span = trace.child("tcp.tx", node=msg.src, nbytes=size) if trace is not None else None
        yield src_cpu.execute(
            costs.tx_cpu_per_op + costs.tx_cpu_per_byte * size
        )
        if span is not None:
            span.finish()
        serial = costs.stack_serial_per_op
        if serial:
            # The host-wide serialized stack section.  On a BlueField this
            # section is the calibrated stand-in for the Arm kernel RX/stack
            # path of §4.4 (it is what caps DPU TCP at ~200 K IOPS, Fig. 5c
            # bottom), so the breakdown attributes it to ``arm_rx``
            # regardless of which direction's syscall stalled on it.
            span = None
            if trace is not None:
                span = trace.child("arm_rx" if src_bf3 else "tcp.stack",
                                   node=msg.src)
            yield src_lock.enter(serial)
            if span is not None:
                span.finish()
        # Single-stream per-connection processing (sequential per direction).
        if costs.per_conn_byte_cost and size:
            span = trace.child("tcp.stream", node=msg.src, nbytes=size) if trace is not None else None
            yield stream.serve(costs.per_conn_byte_cost * size)
            if span is not None:
                span.finish()

        # --- wire ------------------------------------------------------
        # Fixed stack latency (rtt/2) is merged into the switch crossing's
        # propagation event — one kernel event, bit-identical fire time.
        span = trace.child("net.wire", nbytes=size) if trace is not None else None
        wire = int(msg.frame_bytes / costs.goodput_efficiency)
        yield from switch.transmit(
            msg.src, dst_name, wire, pre_delay=costs.rtt_overhead / 2.0
        )
        if span is not None:
            span.finish()

        # --- receiver ---------------------------------------------------
        if costs.rx_cpu_per_byte and size:
            # Per-byte RX work runs on the restricted RX core set; the
            # pool's own factor already includes the platform RX penalty.
            # On a BlueField this is the Arm RX path of the paper's §4.4.
            if trace is not None:
                span = trace.child("arm_rx" if dst_bf3 else "host_rx",
                                   node=dst_name, nbytes=size)
            yield rx_pool.execute(costs.rx_cpu_per_byte * size)
            if trace is not None:
                span.finish()
        span = trace.child("tcp.rx", node=dst_name, nbytes=size) if trace is not None else None
        yield dst_cpu.execute(costs.rx_cpu_per_op)
        if span is not None:
            span.finish()
        if serial:
            span = None
            if trace is not None:
                span = trace.child("arm_rx" if dst_bf3 else "tcp.stack",
                                   node=dst_name)
            yield dst_lock.enter(serial)
            if span is not None:
                span.finish()

        src.sent.record(size)
        dst.received.record(size)
        box = self.internal if msg.kind.startswith("_") else self.inbox
        yield box[dst_name].put(msg)

    def recv(self, name: str):
        """Event yielding the next message delivered to endpoint ``name``."""
        return self.inbox[name].get()

    def recv_internal(self, name: str):
        """Event yielding the next provider-internal message for ``name``."""
        return self.internal[name].get()

    def reset(self, duration: float) -> None:
        """Injected reset: sends fail for ``duration`` sim-seconds."""
        until = self._env.now + duration
        if until > self.fail_until:
            self.fail_until = until

    def close(self) -> None:
        """Mark the connection closed; further sends raise."""
        self.closed = True


class TcpStack:
    """The per-node TCP stack: connection setup plus cost bookkeeping."""

    def __init__(
        self,
        node: ComputeNode,
        costs: TransportCosts = TCP_COSTS,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.costs = costs
        self.sent = RateMeter(self.env, f"{node.name}.tcp.tx")
        self.received = RateMeter(self.env, f"{node.name}.tcp.rx")
        self.connections: list = []

    def connect(self, remote: "TcpStack") -> TcpConnection:
        """Open a connection to ``remote`` (handshake cost is negligible
        next to the paper's multi-second measurement windows)."""
        conn = TcpConnection(self, remote)
        self.connections.append(conn)
        remote.connections.append(conn)
        return conn
