"""Message framing and wire-size accounting.

A :class:`Message` is what upper layers (RPC, NVMe-oF, DAOS) hand to a
transport.  Payloads may be:

* real bytes (``bytes``/``bytearray``/``numpy`` arrays) — used by the
  functional tests and examples, where data integrity is checked
  end-to-end, or
* *virtual* payloads (``payload=None`` with an explicit ``nbytes``) — used
  by the performance benches, where only sizes matter and copying megabytes
  per simulated I/O would waste host memory bandwidth for nothing.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Message", "payload_nbytes", "HEADER_BYTES"]

#: Fixed per-message framing overhead we account on the wire (transport
#: header + protocol framing); protocol goodput efficiency is applied on
#: top of this by each transport.
HEADER_BYTES = 64


def payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a payload object."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:  # numpy arrays and friends
        return int(nbytes)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p) for p in payload) + 8
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()) + 8
    # Opaque control objects: a small fixed estimate.
    return 96


class Message:
    """One transport message.

    ``nbytes`` defaults to the payload's size; set it explicitly for
    virtual payloads.  ``kind`` and ``tag`` are free-form routing fields
    used by the RPC layers (service/method, request id).

    Implementation note: previously a ``@dataclass``; now a plain
    ``__slots__`` class with a hand-written constructor.  One Message is
    allocated per wire crossing, and the generated dataclass ``__init__``
    plus ``__post_init__`` and a per-instance ``__dict__`` showed up in
    run profiles (DESIGN.md §9).  The constructor signature and field
    semantics are unchanged.
    """

    __slots__ = ("src", "dst", "kind", "tag", "payload", "nbytes", "meta")

    def __init__(
        self,
        src: str,
        dst: str,
        kind: str = "data",
        tag: int = 0,
        payload: Any = None,
        nbytes: Optional[int] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.tag = tag
        self.payload = payload
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        elif nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        self.nbytes = nbytes
        self.meta = {} if meta is None else meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, kind={self.kind!r}, "
            f"tag={self.tag}, nbytes={self.nbytes})"
        )

    @property
    def frame_bytes(self) -> int:
        """Payload plus framing header."""
        return self.nbytes + HEADER_BYTES

    def reply_to(self, payload: Any = None, nbytes: Optional[int] = None,
                 kind: Optional[str] = None) -> "Message":
        """Build a response message addressed back to the sender.

        Metadata (trace context, HLC-style fields) is carried forward into
        the reply, mirroring how CaRT echoes capsule metadata, so a span
        collector can attribute the response leg to the originating request.
        """
        return Message(
            src=self.dst,
            dst=self.src,
            kind=kind or self.kind,
            tag=self.tag,
            payload=payload,
            nbytes=nbytes,
            meta=dict(self.meta),
        )
