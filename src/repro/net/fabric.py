"""Provider registry and the unified fabric channel abstraction.

DAOS configures one fabric provider per engine — ``ofi+tcp;ofi_rxm``,
``ucx+tcp``, ``ucx+rc``, ``ucx+dc_x`` or ``ofi+verbs;ofi_rxm`` (§3.2/§3.3)
— and clients must match.  This module gives every upper layer (Mercury
RPC, NVMe-oF, the ROS2 data plane) one interface regardless of provider:

* :meth:`FabricChannel.send` / :meth:`FabricChannel.recv` — two-sided
  messaging (RPC traffic).
* :meth:`FabricChannel.register` — expose a memory window for one-sided
  access; returns a serializable :class:`RemoteRegion` descriptor
  (address, rkey, length) the control plane can convey.
* :meth:`FabricChannel.rma_read` / :meth:`FabricChannel.rma_write` — bulk
  transfers.  On verbs providers these are true one-sided ops (zero target
  CPU).  On TCP providers they are *emulated* by the provider's progress
  engine (exactly what ``ofi_rxm`` does), paying full two-sided CPU costs
  — which is precisely why TCP loses the small-I/O race in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from repro.hw.platform import ComputeNode
from repro.hw.specs import RDMA_COSTS, TCP_COSTS, TransportCosts
from repro.net.message import Message
from repro.net.rdma import (
    AccessFlags,
    MemoryRegion,
    ProtectionDomain,
    QueuePair,
    RdmaDevice,
    RdmaError,
)
from repro.net.tcp import TcpConnection, TcpStack
from repro.sim.core import Environment, Event
from repro.sim.resources import Store

__all__ = [
    "PROVIDERS",
    "ProviderInfo",
    "RemoteRegion",
    "FabricChannel",
    "TcpChannel",
    "RdmaChannel",
    "FabricEndpoint",
    "Fabric",
    "list_providers",
    "resolve_provider",
]


@dataclass(frozen=True, slots=True)
class ProviderInfo:
    """One fabric provider binding."""

    name: str
    family: str  # "tcp" | "rdma"
    costs: TransportCosts
    description: str


#: The provider strings the paper's configurations use (§3.2).
PROVIDERS: Dict[str, ProviderInfo] = {
    "ofi+tcp;ofi_rxm": ProviderInfo(
        "ofi+tcp;ofi_rxm", "tcp", TCP_COSTS, "libfabric TCP with RxM messaging"
    ),
    "ucx+tcp": ProviderInfo("ucx+tcp", "tcp", TCP_COSTS, "UCX over kernel TCP"),
    "ucx+rc": ProviderInfo("ucx+rc", "rdma", RDMA_COSTS, "UCX reliable-connected verbs"),
    "ucx+dc_x": ProviderInfo(
        "ucx+dc_x", "rdma", RDMA_COSTS, "UCX dynamically-connected verbs"
    ),
    "ofi+verbs;ofi_rxm": ProviderInfo(
        "ofi+verbs;ofi_rxm", "rdma", RDMA_COSTS, "libfabric verbs with RxM"
    ),
}

#: Convenience aliases accepted anywhere a provider name is.
_ALIASES = {"tcp": "ucx+tcp", "rdma": "ucx+rc", "verbs": "ofi+verbs;ofi_rxm"}


def list_providers() -> Tuple[str, ...]:
    """All registered provider names."""
    return tuple(PROVIDERS)


def resolve_provider(name: str) -> ProviderInfo:
    """Look up a provider by exact name or alias ('tcp', 'rdma')."""
    key = _ALIASES.get(name, name)
    try:
        return PROVIDERS[key]
    except KeyError:
        raise ValueError(
            f"unknown fabric provider {name!r}; known: {sorted(PROVIDERS)}"
        ) from None


@dataclass(frozen=True, slots=True)
class RemoteRegion:
    """A serializable descriptor of a registered memory window.

    This is what the ROS2 control plane conveys between client, DPU and
    server ("memory registration handles", §3.2): everything a peer needs
    for one-sided access, nothing more.
    """

    node: str
    addr: int
    rkey: int
    length: int


class FabricChannel:
    """Base class: a connected pair of endpoints on one provider."""

    def __init__(self, provider: ProviderInfo, a: ComputeNode, b: ComputeNode) -> None:
        self.provider = provider
        self.nodes: Dict[str, ComputeNode] = {a.name: a, b.name: b}
        self.env: Environment = a.env

    def peer_of(self, name: str) -> str:
        """The other endpoint's node name."""
        for n in self.nodes:
            if n != name:
                return n
        raise KeyError(name)

    def ensure_connected(self) -> bool:
        """Repair the channel after a transport fault if possible.

        Returns True when a reconnect was performed.  The base transport
        needs none (TCP reset windows clear on their own); the verbs
        channel replaces errored QPs.  Raises when the channel is still
        inside an active fault window (caller backs off and retries).
        """
        return False

    # Interface -------------------------------------------------------------
    def send(self, msg: Message) -> Generator[Event, None, None]:
        """Deliver ``msg`` to the peer's inbox (two-sided)."""
        raise NotImplementedError

    def recv(self, name: str):
        """Event yielding the next message for endpoint ``name``."""
        raise NotImplementedError

    def register(
        self,
        name: str,
        length: int,
        buffer: Optional[Any] = None,
        valid_until: Optional[float] = None,
    ) -> RemoteRegion:
        """Expose a window of ``name``'s memory for peer one-sided access."""
        raise NotImplementedError

    def deregister(self, region: RemoteRegion) -> None:
        """Revoke a window."""
        raise NotImplementedError

    def rma_read(
        self, initiator: str, region: RemoteRegion, nbytes: int, offset: int = 0,
        trace: Any = None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """Pull ``nbytes`` from the peer's window into the initiator."""
        raise NotImplementedError

    def rma_write(
        self,
        initiator: str,
        region: RemoteRegion,
        payload: Any = None,
        nbytes: Optional[int] = None,
        offset: int = 0,
        trace: Any = None,
    ) -> Generator[Event, None, None]:
        """Push bytes into the peer's window."""
        raise NotImplementedError


class TcpChannel(FabricChannel):
    """TCP provider: messaging is native; RMA is provider-emulated (RxM)."""

    def __init__(
        self,
        provider: ProviderInfo,
        a: ComputeNode,
        b: ComputeNode,
        stacks: Dict[str, TcpStack],
    ) -> None:
        super().__init__(provider, a, b)
        self._conn: TcpConnection = stacks[a.name].connect(stacks[b.name])
        self._regions: Dict[int, Tuple[str, Optional[Any], int, Optional[float], bool]] = {}
        self._next_key = 0x7000
        self._next_addr = 0x20_0000_0000
        fx = self.env._faults
        if fx is not None:
            for name in self.nodes:
                fx.register_channel(f"{name}.tcp", self)

    def reset(self, duration: float) -> None:
        """Injected TCP reset: sends fail until the window passes."""
        self._conn.reset(duration)

    def send(self, msg: Message) -> Generator[Event, None, None]:
        # Plain delegation: return the connection's generator directly
        # instead of wrapping it in another generator frame — callers
        # ``yield from`` the result either way, but this removes one
        # frame from every resumption of the hottest path in the model.
        return self._conn.send(msg)

    def recv(self, name: str):
        return self._conn.recv(name)

    def register(self, name, length, buffer=None, valid_until=None):
        if name not in self.nodes:
            raise KeyError(f"{name!r} is not an endpoint of this channel")
        if length <= 0:
            raise ValueError(f"region length must be positive, got {length}")
        self._next_key += 1
        self._next_addr += length + 4096
        region = RemoteRegion(name, self._next_addr - length, self._next_key, length)
        self._regions[region.rkey] = (name, buffer, region.addr, valid_until, False)
        return region

    def deregister(self, region: RemoteRegion) -> None:
        entry = self._regions.get(region.rkey)
        if entry is not None:
            name, buffer, addr, valid_until, _ = entry
            self._regions[region.rkey] = (name, buffer, addr, valid_until, True)

    def _lookup(self, region: RemoteRegion, nbytes: int, offset: int):
        entry = self._regions.get(region.rkey)
        if entry is None or entry[4]:
            raise PermissionError(f"region rkey {region.rkey:#x} is not registered")
        if entry[3] is not None and self.env.now > entry[3]:
            raise PermissionError(f"region rkey {region.rkey:#x} has expired")
        if offset < 0 or offset + nbytes > region.length:
            raise PermissionError(
                f"access [+{offset}, +{offset + nbytes}) outside region of {region.length}"
            )
        return entry

    def rma_read(self, initiator, region, nbytes, offset=0, trace=None):
        """Emulated read: request message out, data message back.

        The target pays full TCP receive+send CPU (its rxm progress
        engine), the initiator pays receive costs for the data — this is
        the CPU tax that makes TCP RMA expensive.
        """
        entry = self._lookup(region, nbytes, offset)
        target = self.peer_of(initiator)
        meta = {"trace": trace} if trace is not None else {}
        req = Message(src=initiator, dst=target, kind="_rxm_read_req", nbytes=32,
                      meta=dict(meta))
        yield from self._conn.send(req)
        yield self._conn.recv_internal(target)
        data = Message(src=target, dst=initiator, kind="_rxm_read_data",
                       nbytes=nbytes, meta=dict(meta))
        yield from self._conn.send(data)
        yield self._conn.recv_internal(initiator)
        buffer = entry[1]
        if buffer is not None:
            return bytes(memoryview(buffer)[offset:offset + nbytes])
        return None

    def rma_write(self, initiator, region, payload=None, nbytes=None, offset=0,
                  trace=None):
        size = nbytes if nbytes is not None else Message(
            src="", dst="", payload=payload
        ).nbytes
        entry = self._lookup(region, size, offset)
        target = self.peer_of(initiator)
        meta = {"trace": trace} if trace is not None else {}
        data = Message(src=initiator, dst=target, kind="_rxm_write", nbytes=size,
                       meta=dict(meta))
        yield from self._conn.send(data)
        yield self._conn.recv_internal(target)
        buffer = entry[1]
        if buffer is not None and payload is not None:
            memoryview(buffer)[offset:offset + size] = bytes(payload)


class RdmaChannel(FabricChannel):
    """Verbs provider: a connected QP pair with real MRs and rkeys."""

    def __init__(
        self,
        provider: ProviderInfo,
        a: ComputeNode,
        b: ComputeNode,
        devices: Dict[str, RdmaDevice],
        pds: Optional[Dict[str, ProtectionDomain]] = None,
    ) -> None:
        super().__init__(provider, a, b)
        self.devices = devices
        self.pds: Dict[str, ProtectionDomain] = pds or {
            a.name: devices[a.name].alloc_pd(),
            b.name: devices[b.name].alloc_pd(),
        }
        self.qps: Dict[str, QueuePair] = {
            a.name: devices[a.name].create_qp(self.pds[a.name]),
            b.name: devices[b.name].create_qp(self.pds[b.name]),
        }
        self.qps[a.name].connect(self.qps[b.name])
        self._inbox: Dict[str, Store] = {
            a.name: Store(self.env, name=f"{a.name}.fabric_inbox"),
            b.name: Store(self.env, name=f"{b.name}.fabric_inbox"),
        }
        self._mrs: Dict[int, MemoryRegion] = {}
        fx = self.env._faults
        if fx is not None:
            for name in self.nodes:
                fx.register_channel(f"{name}.qp", self)

    # -- fault handling ------------------------------------------------------
    def break_qps(self, reason: str) -> None:
        """Transition both QPs of the pair to the error state (CQ flush)."""
        for qp in self.qps.values():
            qp.transition_to_error(reason)

    def ensure_connected(self) -> bool:
        """Replace errored QPs with fresh ones in the same PDs.

        RC QPs cannot leave the error state in place; recovery creates
        new QPs (existing MRs and rkeys survive — they belong to the
        PDs).  Refuses while a ``qp_break`` fault window is still active
        on either endpoint, so retries keep backing off until the
        injected outage ends.
        """
        if all(qp.error is None for qp in self.qps.values()):
            return False
        fx = self.env._faults
        if fx is not None:
            for name in self.nodes:
                ev = fx.active("qp_break", f"{name}.qp")
                if ev is not None:
                    raise RdmaError(
                        f"cannot reconnect {name}.qp: fault window active"
                    )
        names = list(self.nodes)
        fresh = {
            name: self.devices[name].create_qp(self.pds[name]) for name in names
        }
        fresh[names[0]].connect(fresh[names[1]])
        self.qps = fresh
        if fx is not None:
            fx.stats.reconnects += 1
        return True

    def send(self, msg: Message) -> Generator[Event, None, None]:
        qp = self.qps[msg.src]
        peer = self.qps[self.peer_of(msg.src)]
        peer.post_recv(wr_id=msg.tag)
        yield from qp.post_send(payload=msg.payload, nbytes=msg.nbytes, wr_id=msg.tag,
                                trace=msg.meta.get("trace") if msg.meta else None)
        # Drain the receiver-side completion and hand the message up.
        yield peer.recv_cq.poll()
        yield self._inbox[peer.device.node.name].put(msg)

    def recv(self, name: str):
        return self._inbox[name].get()

    def register(self, name, length, buffer=None, valid_until=None):
        if name not in self.nodes:
            raise KeyError(f"{name!r} is not an endpoint of this channel")
        mr = self.pds[name].register_mr(
            length,
            AccessFlags.remote_rw(),
            buffer=buffer,
            valid_until=valid_until,
        )
        self._mrs[mr.rkey] = mr
        return RemoteRegion(name, mr.addr, mr.rkey, mr.length)

    def deregister(self, region: RemoteRegion) -> None:
        mr = self._mrs.pop(region.rkey, None)
        if mr is not None:
            mr.pd.deregister_mr(mr)

    def rma_read(self, initiator, region, nbytes, offset=0, trace=None):
        qp = self.qps[initiator]
        comp = yield from qp.rdma_read(region.addr + offset, region.rkey, nbytes,
                                       trace=trace)
        return comp.payload

    def rma_write(self, initiator, region, payload=None, nbytes=None, offset=0,
                  trace=None):
        qp = self.qps[initiator]
        yield from qp.rdma_write(
            region.addr + offset, region.rkey, payload=payload, nbytes=nbytes,
            trace=trace,
        )


class FabricEndpoint:
    """A node's attachment point on one provider."""

    def __init__(self, fabric: "Fabric", node: ComputeNode, provider: ProviderInfo) -> None:
        self.fabric = fabric
        self.node = node
        self.provider = provider

    def connect(self, remote: "FabricEndpoint") -> FabricChannel:
        """Open a channel to ``remote`` (must share the provider)."""
        if remote.provider.name != self.provider.name:
            raise ValueError(
                f"provider mismatch: {self.provider.name} vs {remote.provider.name} "
                "(DAOS requires matching providers on client and engine)"
            )
        return self.fabric._make_channel(self.provider, self.node, remote.node)


class Fabric:
    """Factory/registry of per-node transport state and channels."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._tcp_stacks: Dict[str, TcpStack] = {}
        self._rdma_devices: Dict[str, RdmaDevice] = {}

    def endpoint(self, node: ComputeNode, provider: str) -> FabricEndpoint:
        """Attach ``node`` to ``provider`` (idempotent per node)."""
        info = resolve_provider(provider)
        if info.family == "tcp":
            if node.name not in self._tcp_stacks:
                self._tcp_stacks[node.name] = TcpStack(node, info.costs)
        else:
            if node.name not in self._rdma_devices:
                self._rdma_devices[node.name] = RdmaDevice(node, info.costs)
        return FabricEndpoint(self, node, info)

    def tcp_stack(self, name: str) -> TcpStack:
        """The node's TCP stack (must have a tcp endpoint)."""
        return self._tcp_stacks[name]

    def rdma_device(self, name: str) -> RdmaDevice:
        """The node's RDMA device (must have an rdma endpoint)."""
        return self._rdma_devices[name]

    def _make_channel(
        self, provider: ProviderInfo, a: ComputeNode, b: ComputeNode
    ) -> FabricChannel:
        if provider.family == "tcp":
            return TcpChannel(provider, a, b, self._tcp_stacks)
        return RdmaChannel(provider, a, b, self._rdma_devices)

    def connect(
        self, a: ComputeNode, b: ComputeNode, provider: str
    ) -> FabricChannel:
        """One-call endpoint setup + channel between two nodes."""
        ea = self.endpoint(a, provider)
        eb = self.endpoint(b, provider)
        return ea.connect(eb)
