"""Network transports: kernel TCP and RDMA verbs, plus provider bindings.

The paper's data plane runs over UCX or libfabric with either a TCP or an
RDMA (verbs) provider (§3.2).  This package implements both transports
*functionally* — messages really carry payloads, RDMA really enforces
protection domains, memory-region bounds and rkeys — while charging the
calibrated CPU/wire costs from :mod:`repro.hw.specs` so the performance
shape matches the physical stacks:

* :mod:`repro.net.message` — message framing and wire-size accounting.
* :mod:`repro.net.tcp` — kernel-path TCP: per-op syscall costs, per-byte
  copy/checksum work, a host-wide serialized stack section, per-connection
  stream processing, and receive-side processing confined to the RX cores
  (the BlueField-3 bottleneck).
* :mod:`repro.net.rdma` — verbs: devices, PDs, MRs with lkey/rkey, RC
  queue pairs, completion queues, two-sided SEND/RECV and one-sided
  READ/WRITE, eager vs rendezvous protocols, zero remote CPU on the
  one-sided path.
* :mod:`repro.net.fabric` — the provider registry (``ucx+rc``,
  ``ucx+dc_x``, ``ofi+verbs;ofi_rxm``, ``ucx+tcp``, ``ofi+tcp;ofi_rxm``)
  giving every upper layer one endpoint interface regardless of transport.
"""

from repro.net.fabric import Fabric, FabricEndpoint, list_providers, resolve_provider
from repro.net.message import Message
from repro.net.rdma import (
    AccessFlags,
    AccessViolation,
    CompletionQueue,
    MemoryRegion,
    ProtectionDomain,
    QueuePair,
    RdmaDevice,
    RdmaError,
)
from repro.net.tcp import TcpConnection, TcpStack

__all__ = [
    "AccessFlags",
    "AccessViolation",
    "CompletionQueue",
    "Fabric",
    "FabricEndpoint",
    "list_providers",
    "MemoryRegion",
    "Message",
    "ProtectionDomain",
    "QueuePair",
    "RdmaDevice",
    "RdmaError",
    "resolve_provider",
    "TcpConnection",
    "TcpStack",
]
