"""RDMA verbs transport model.

Functional semantics follow the verbs API closely enough to express the
paper's security discussion (§2.3) and ROS2's multi-tenant design:

* :class:`RdmaDevice` — one per node (the ConnectX / BlueField NIC).
* :class:`ProtectionDomain` — the isolation unit; QPs and MRs belong to a
  PD, and one-sided access with an rkey from a different PD is rejected.
* :class:`MemoryRegion` — a registered buffer window with ``lkey``/``rkey``
  and access flags; may carry a real ``bytearray``/NumPy buffer (functional
  mode) or be *virtual* (performance mode).  Regions can be bounded in
  time (scoped rkeys) and revoked.
* :class:`QueuePair` — reliable-connected QP with SEND/RECV plus one-sided
  READ/WRITE, each raising :class:`AccessViolation` on rkey/bounds/PD/flag
  violations instead of silently moving data.
* :class:`CompletionQueue` — completions as a store the owner drains.

Timing (constants in :data:`repro.hw.specs.RDMA_COSTS`): the initiator
pays ``tx_cpu_per_op`` to post and poll; payload bytes cross the switch at
``goodput_efficiency`` with **zero per-byte CPU anywhere** (zero-copy DMA);
one-sided ops cost the target **nothing**; two-sided delivery charges the
target ``rx_cpu_per_op`` for its CQ poll.  Messages above
``rendezvous_threshold`` pay one extra control round-trip (RTS/CTS) —
the rendezvous protocol §3.2 uses to amortize per-message overhead on
large sequential I/O.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.hw.platform import ComputeNode
from repro.hw.specs import RDMA_COSTS, TransportCosts
from repro.net.message import HEADER_BYTES
from repro.sim.core import Environment, Event
from repro.sim.monitor import RateMeter
from repro.sim.resources import Store

__all__ = [
    "AccessFlags",
    "AccessViolation",
    "RdmaError",
    "MemoryRegion",
    "ProtectionDomain",
    "CompletionQueue",
    "Completion",
    "QueuePair",
    "RdmaDevice",
]


class RdmaError(RuntimeError):
    """Generic RDMA failure (bad state, disconnected QP...)."""


class AccessViolation(RdmaError):
    """A one-sided operation failed its rkey / bounds / PD / flags check."""


class AccessFlags(enum.IntFlag):
    """MR access permissions (subset of ibv_access_flags)."""

    LOCAL_READ = 0x1
    LOCAL_WRITE = 0x2
    REMOTE_READ = 0x4
    REMOTE_WRITE = 0x8

    @classmethod
    def local_only(cls) -> "AccessFlags":
        return cls.LOCAL_READ | cls.LOCAL_WRITE

    @classmethod
    def remote_rw(cls) -> "AccessFlags":
        return cls.LOCAL_READ | cls.LOCAL_WRITE | cls.REMOTE_READ | cls.REMOTE_WRITE


_key_counter = itertools.count(0x1000)
_addr_counter = itertools.count(0x10_0000_0000)
_qp_counter = itertools.count(1)


class MemoryRegion:
    """A registered memory window.

    ``buffer`` is optional: when present (bytearray or 1-D uint8 NumPy
    array) one-sided operations move real bytes; when absent the region is
    virtual and only sizes/permissions are enforced.
    """

    __slots__ = (
        "pd", "addr", "length", "lkey", "rkey", "flags",
        "buffer", "valid_until", "_revoked",
    )

    def __init__(
        self,
        pd: "ProtectionDomain",
        length: int,
        flags: AccessFlags,
        buffer: Optional[Any] = None,
        valid_until: Optional[float] = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"MR length must be positive, got {length}")
        if buffer is not None and len(buffer) < length:
            raise ValueError(
                f"buffer of {len(buffer)} bytes cannot back an MR of {length}"
            )
        self.pd = pd
        self.addr = next(_addr_counter)
        self.length = int(length)
        self.lkey = next(_key_counter)
        self.rkey = next(_key_counter)
        self.flags = flags
        self.buffer = buffer
        #: Simulated-time expiry for scoped rkeys (ROS2 tenant capability).
        self.valid_until = valid_until
        self._revoked = False

    @property
    def revoked(self) -> bool:
        """True once deregistered or explicitly revoked."""
        return self._revoked

    def revoke(self) -> None:
        """Invalidate the region's keys immediately."""
        self._revoked = True

    def expired(self, now: float) -> bool:
        """True if a scoped rkey has passed its validity window."""
        return self.valid_until is not None and now > self.valid_until

    def contains(self, addr: int, nbytes: int) -> bool:
        """Whether ``[addr, addr+nbytes)`` lies inside the region."""
        return self.addr <= addr and addr + nbytes <= self.addr + self.length

    def read_bytes(self, addr: int, nbytes: int) -> Optional[bytes]:
        """Copy real bytes out (None for virtual regions)."""
        if self.buffer is None:
            return None
        off = addr - self.addr
        return bytes(memoryview(self.buffer)[off:off + nbytes])

    def write_bytes(self, addr: int, data: Any) -> None:
        """Copy real bytes in (no-op for virtual regions)."""
        if self.buffer is None or data is None:
            return
        off = addr - self.addr
        view = memoryview(self.buffer)
        view[off:off + len(data)] = bytes(data)


class ProtectionDomain:
    """The verbs isolation unit: MRs and QPs that may interoperate."""

    _ids = itertools.count(1)

    def __init__(self, device: "RdmaDevice") -> None:
        self.device = device
        self.pd_id = next(ProtectionDomain._ids)
        self.regions: Dict[int, MemoryRegion] = {}  # rkey -> MR

    def register_mr(
        self,
        length: int,
        flags: AccessFlags = AccessFlags.local_only(),
        buffer: Optional[Any] = None,
        valid_until: Optional[float] = None,
    ) -> MemoryRegion:
        """Register a buffer (or a virtual window) and mint its keys."""
        mr = MemoryRegion(self, length, flags, buffer, valid_until)
        self.regions[mr.rkey] = mr
        return mr

    def deregister_mr(self, mr: MemoryRegion) -> None:
        """Remove the region; its keys stop validating immediately."""
        mr.revoke()
        self.regions.pop(mr.rkey, None)

    def lookup(self, rkey: int) -> Optional[MemoryRegion]:
        """The live region for ``rkey`` within this PD, else None."""
        mr = self.regions.get(rkey)
        if mr is None or mr.revoked:
            return None
        return mr


@dataclass(frozen=True, slots=True)
class Completion:
    """One CQ entry."""

    wr_id: int
    opcode: str  # "send" | "recv" | "read" | "write"
    status: str  # "ok" | error string
    nbytes: int = 0
    payload: Any = None


class CompletionQueue:
    """Completion delivery; owners drain it with ``yield cq.poll()``."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._store = Store(env, name="rdma.cq")

    def push(self, completion: Completion) -> None:
        """Add a completion (never blocks)."""
        self._store.put(completion)

    def poll(self):
        """Event yielding the next completion."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


class QueuePair:
    """A reliable-connected queue pair.

    All data-moving methods are generators (``yield from``) that complete
    when the operation's ACK would arrive at the initiator.
    """

    def __init__(
        self,
        device: "RdmaDevice",
        pd: ProtectionDomain,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
    ) -> None:
        if pd.device is not device:
            raise RdmaError("PD belongs to a different device")
        self.device = device
        self.pd = pd
        self.qp_num = next(_qp_counter)
        self.env: Environment = device.env
        self.send_cq = send_cq or CompletionQueue(self.env)
        self.recv_cq = recv_cq or CompletionQueue(self.env)
        self.remote: Optional["QueuePair"] = None
        #: Non-None once the QP has transitioned to the error state
        #: (fault injection / fatal transport failure); holds the reason.
        self.error: Optional[str] = None
        self._recv_queue: Store = Store(self.env,
                                        name="rdma.recv_queue")  # posted recv WRs

    # -- connection management ---------------------------------------------
    def connect(self, remote: "QueuePair") -> None:
        """Pair two QPs (both directions)."""
        if self.remote is not None or remote.remote is not None:
            raise RdmaError("QP already connected")
        self.remote = remote
        remote.remote = self

    def transition_to_error(self, reason: str) -> None:
        """Move the QP to the error state and flush its work requests.

        Mirrors IBV_QPS_ERR semantics: posted RECV WRs complete to the
        recv CQ with a flush status, processes parked waiting for a RECV
        to match are failed with :class:`RdmaError`, and every later
        verb on this QP raises until it is replaced (RC QPs cannot be
        repaired in place; recovery creates fresh QPs in the same PD).
        """
        if self.error is not None:
            return
        self.error = reason
        rq = self._recv_queue
        # Flush posted-but-unmatched receive buffers.
        while rq.items:
            wr_id, _mr = rq.items.popleft()
            self.recv_cq.push(Completion(wr_id, "recv", "flush-err"))
        # Fail senders parked on the recv queue (RNR wait) — their SEND
        # can no longer complete.
        exc = RdmaError(f"QP {self.qp_num} flushed: {reason}")
        wt = self.env._wait_tracer
        for getter in list(rq._getters):
            if not getter.triggered:
                if wt is not None:
                    wt.end_block(getter)
                getter.fail(exc)
        rq._getters.clear()

    def _require_remote(self) -> "QueuePair":
        if self.error is not None:
            raise RdmaError(f"QP {self.qp_num} is in the error state: {self.error}")
        if self.remote is None:
            raise RdmaError(f"QP {self.qp_num} is not connected")
        if self.remote.error is not None:
            raise RdmaError(
                f"remote QP {self.remote.qp_num} is in the error state: "
                f"{self.remote.error}"
            )
        return self.remote

    # -- two-sided ------------------------------------------------------------
    def post_recv(self, wr_id: int, mr: Optional[MemoryRegion] = None) -> None:
        """Post a receive work request (buffer optional in virtual mode)."""
        if self.error is not None:
            raise RdmaError(f"QP {self.qp_num} is in the error state: {self.error}")
        self._recv_queue.put((wr_id, mr))

    def post_send(
        self,
        payload: Any = None,
        nbytes: Optional[int] = None,
        wr_id: int = 0,
        trace: Any = None,
    ) -> Generator[Event, None, Completion]:
        """Two-sided SEND; matches a posted RECV at the peer.

        Returns the initiator-side completion.  The receiver's completion
        (with the payload) lands in its ``recv_cq``.
        """
        remote = self._require_remote()
        costs = self.device.costs
        env = self.env
        size = nbytes if nbytes is not None else _payload_size(payload)

        span = trace.child("rdma.post", node=self.device.node.name, nbytes=size) if trace is not None else None
        yield self.device.node.cpu.execute(costs.tx_cpu_per_op)
        if span is not None:
            span.finish()
        yield from self._wire(remote, size, trace=trace, stage="rdma.eager")
        if self.error is not None or remote.error is not None:
            # The QP broke while the message was on the wire.
            raise RdmaError(
                f"QP {self.qp_num} failed in flight: "
                f"{self.error or remote.error}"
            )

        # Receiver must have a posted RECV (flow control is the upper
        # layer's job; we block until one is available, like an RC QP
        # with RNR retries).
        span = trace.child("rdma.recv", node=remote.device.node.name, nbytes=size) if trace is not None else None
        wr_id_recv, mr = yield remote._recv_queue.get()
        if mr is not None and isinstance(payload, (bytes, bytearray, memoryview)):
            mr.write_bytes(mr.addr, payload)
        yield remote.device.node.cpu.execute(costs.rx_cpu_per_op)
        if span is not None:
            span.finish()
        remote.recv_cq.push(Completion(wr_id_recv, "recv", "ok", size, payload))

        comp = Completion(wr_id, "send", "ok", size)
        self.send_cq.push(comp)
        self.device.sent.record(size)
        remote.device.received.record(size)
        return comp

    # -- one-sided -------------------------------------------------------------
    def rdma_write(
        self,
        remote_addr: int,
        rkey: int,
        payload: Any = None,
        nbytes: Optional[int] = None,
        wr_id: int = 0,
        trace: Any = None,
    ) -> Generator[Event, None, Completion]:
        """One-sided WRITE into the peer's memory.  Zero remote CPU."""
        remote = self._require_remote()
        size = nbytes if nbytes is not None else _payload_size(payload)
        mr = self._validate(remote, remote_addr, size, AccessFlags.REMOTE_WRITE, rkey)

        span = trace.child("rdma.post", node=self.device.node.name, nbytes=size) if trace is not None else None
        yield self.device.node.cpu.execute(self.device.costs.tx_cpu_per_op)
        if span is not None:
            span.finish()
        yield from self._wire(remote, size, trace=trace, stage="rdma.dma")

        if payload is not None:
            mr.write_bytes(remote_addr, payload)
        comp = Completion(wr_id, "write", "ok", size)
        self.send_cq.push(comp)
        self.device.sent.record(size)
        remote.device.received.record(size)
        return comp

    def rdma_read(
        self,
        remote_addr: int,
        rkey: int,
        nbytes: int,
        wr_id: int = 0,
        trace: Any = None,
    ) -> Generator[Event, None, Completion]:
        """One-sided READ from the peer's memory.  Zero remote CPU.

        The completion's ``payload`` carries the bytes for backed regions.
        """
        remote = self._require_remote()
        mr = self._validate(remote, remote_addr, nbytes, AccessFlags.REMOTE_READ, rkey)

        span = trace.child("rdma.post", node=self.device.node.name, nbytes=nbytes) if trace is not None else None
        yield self.device.node.cpu.execute(self.device.costs.tx_cpu_per_op)
        if span is not None:
            span.finish()
        # Request travels out (small), data travels back (nbytes).
        yield from self._wire(remote, 0, trace=trace, stage="rdma.dma")
        yield from remote.device.qp_wire(self.device, nbytes, rendezvous_exempt=True,
                                         trace=trace, stage="rdma.dma")

        data = mr.read_bytes(remote_addr, nbytes)
        comp = Completion(wr_id, "read", "ok", nbytes, data)
        self.send_cq.push(comp)
        remote.device.sent.record(nbytes)
        self.device.received.record(nbytes)
        return comp

    # -- internals ---------------------------------------------------------
    def _validate(
        self,
        remote: "QueuePair",
        addr: int,
        nbytes: int,
        needed: AccessFlags,
        rkey: int,
    ) -> MemoryRegion:
        """rkey / PD / bounds / flags / expiry enforcement at the target.

        This is the NIC-resident check the paper's security discussion
        (§2.3) centers on: possession of a *valid* rkey in the *target
        QP's PD* is necessary and sufficient — no CPU, no higher-level
        authentication.
        """
        if nbytes <= 0:
            raise ValueError(f"one-sided op size must be positive, got {nbytes}")
        mr = remote.pd.lookup(rkey)
        if mr is None:
            raise AccessViolation(
                f"rkey {rkey:#x} is not valid in the target QP's protection domain"
            )
        if mr.expired(self.env.now):
            raise AccessViolation(f"rkey {rkey:#x} has expired (scoped registration)")
        if not mr.contains(addr, nbytes):
            raise AccessViolation(
                f"access [{addr:#x}, +{nbytes}) outside MR [{mr.addr:#x}, +{mr.length})"
            )
        if not (mr.flags & needed):
            raise AccessViolation(f"MR lacks {needed.name} permission")
        return mr

    def _wire(
        self, remote: "QueuePair", size: int,
        trace: Any = None, stage: str = "net.wire",
    ) -> Generator[Event, None, None]:
        yield from self.device.qp_wire(remote.device, size, trace=trace, stage=stage)


class RdmaDevice:
    """The RDMA-capable NIC of one node."""

    def __init__(self, node: ComputeNode, costs: TransportCosts = RDMA_COSTS) -> None:
        self.node = node
        self.env: Environment = node.env
        self.costs = costs
        self.sent = RateMeter(self.env, f"{node.name}.rdma.tx")
        self.received = RateMeter(self.env, f"{node.name}.rdma.rx")

    def alloc_pd(self) -> ProtectionDomain:
        """Allocate a protection domain."""
        return ProtectionDomain(self)

    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
    ) -> QueuePair:
        """Create an RC queue pair in ``pd``."""
        return QueuePair(self, pd, send_cq, recv_cq)

    def qp_wire(
        self,
        dst_device: "RdmaDevice",
        size: int,
        rendezvous_exempt: bool = False,
        trace: Any = None,
        stage: str = "net.wire",
    ) -> Generator[Event, None, None]:
        """Move ``size`` payload bytes to ``dst_device`` over the switch.

        Applies goodput efficiency, fixed stack latency, and — for large
        two-sided messages — the rendezvous control round-trip.
        """
        costs = self.costs
        env = self.env
        src_name = self.node.name
        dst_name = dst_device.node.name
        pre = costs.rtt_overhead / 2.0
        if (
            not rendezvous_exempt
            and costs.rendezvous_threshold is not None
            and size > costs.rendezvous_threshold
        ):
            # RTS/CTS exchange: one extra round-trip of small control msgs.
            rtt = 2 * (self.node.switch.spec.propagation + costs.rtt_overhead / 2.0)
            if trace is not None:
                # Keep the two sleeps distinct so the rendezvous span
                # measures the control round-trip on traced runs.
                yield env.timeout(pre)
                span = trace.child("rdma.rendezvous", node=src_name)
                yield env.timeout(rtt)
                span.finish()
                pre = 0.0
            else:
                # Merge stack latency + RTS/CTS into one kernel event,
                # firing at the bit-identical chained-sleep instant.
                yield env.timeout_until((env.now + pre) + rtt)
                pre = 0.0
        span = trace.child(stage, nbytes=size) if trace is not None else None
        wire = int((size + HEADER_BYTES) / costs.goodput_efficiency)
        yield from self.node.switch.transmit(src_name, dst_name, wire, pre_delay=pre)
        if span is not None:
            span.finish()


def _payload_size(payload: Any) -> int:
    from repro.net.message import payload_nbytes

    return payload_nbytes(payload)
