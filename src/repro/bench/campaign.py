"""The campaign executor: declarative sweeps, worker pools, run caching.

The paper's evaluation is a *grid* — provider × block size × numjobs ×
client placement × rw — and re-simulating every cell serially on every
invocation wastes exactly the resource the ROADMAP says to spend well.
This module turns a sweep into a first-class artefact:

* A **campaign spec** (``repro-campaign-v1`` JSON) names the grid
  declaratively: per-cell ``defaults``, cartesian ``grid`` axes (an axis
  value may be a scalar or a dict of correlated knobs, e.g. ``{"bs":
  4096, "numjobs": 16}``), plus explicit ``cells``.  :func:`expand_spec`
  expands it into normalized cell configs — the same dicts the run
  ledger hashes, so a campaign cell and a hand-run ``doctor --ledger``
  cell share one identity.

* The **executor** (:func:`run_campaign`) runs cells on a
  ``multiprocessing`` worker pool (``jobs=1`` stays in-process) and
  merges results deterministically: outcomes are sorted by cell key
  before anything is written, every volatile stamp (``created``,
  ``git_sha``, ``code_fingerprint``) is computed once in the parent, and
  per-cell wall-clock lives only in the campaign document — so a
  ``--jobs 8`` campaign writes ledger records *byte-identical* to a
  serial one.  A worker whose simulation raises produces a per-cell
  error entry; sibling cells complete normally.

* The **cache**: a cell is skipped when a ledger record with the same
  ``config_hash`` *and* the same :func:`code_fingerprint` (hash of the
  ``src/repro`` tree + package version, stamped on every record) already
  exists.  Incremental invocations therefore only re-simulate cells
  whose config or code changed; ``cache=False`` / ``force=True``
  override.

Determinism contract (see DESIGN §12): cell outcomes may depend only on
the cell config — per-cell RNG is seeded from the spec (or derived from
the cell key with ``"seed": "auto"``), never from worker identity,
completion order, or wall time.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from math import fsum
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench import ledger as lg
from repro.hw.specs import MIB

__all__ = [
    "FORMAT",
    "code_fingerprint",
    "expand_spec",
    "normalize_cell",
    "cell_key",
    "cell_label",
    "load_spec",
    "execute_cell",
    "find_cached",
    "run_campaign",
    "check_campaign",
    "parse_cell_ref",
    "resolve_run_or_cell",
    "render_campaign",
]

FORMAT = "repro-campaign-v1"

_EXPERIMENTS = ("fig3", "fig4", "fig5", "chaos")


# ---------------------------------------------------------------------------
# Code fingerprint — the cache's second key
# ---------------------------------------------------------------------------

def code_fingerprint(root: Optional[str] = None) -> str:
    """Hash of the ``src/repro`` tree plus the package version.

    The content-addressed cache keys on ``(config_hash, code_fingerprint)``:
    a record produced by *different code* never satisfies a cache lookup,
    so touching any ``repro`` source file invalidates every cached cell.
    The fingerprint is stamped on records as a **volatile** field — it
    must not move run IDs, or every comment edit would orphan the stable
    ID prefixes CI pins.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    entries: List[Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            entries.append((os.path.relpath(path, root), digest))
    try:
        from importlib.metadata import version

        pkg_version = version("repro")
    except Exception:
        pkg_version = "0"
    blob = lg.canonical_json({"version": pkg_version, "files": entries})
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Spec expansion and cell normalization
# ---------------------------------------------------------------------------

def load_spec(path: str) -> dict:
    """Load and sanity-check a ``repro-campaign-v1`` spec file."""
    with open(path) as fh:
        spec = json.load(fh)
    if spec.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} spec "
                         f"(format={spec.get('format')!r})")
    return spec


def _parse_size(value) -> int:
    """Accept ``4096`` or ``"4k"``-style sizes in specs."""
    if isinstance(value, str):
        from repro.bench.cli import parse_size

        return parse_size(value)
    return int(value)


def expand_spec(spec: dict) -> List[dict]:
    """Expand a campaign spec into normalized cell configs.

    ``grid`` axes combine as a cartesian product in sorted-axis-name
    order; each axis value may be a scalar (assigned to the axis name)
    or a dict of correlated knobs merged wholesale.  Explicit ``cells``
    entries are appended after the grid.  Expansion order — and hence
    the campaign's cell list — depends only on the spec content, never
    on dict insertion order.
    """
    defaults = dict(spec.get("defaults", {}))
    raw_cells: List[dict] = []
    grid = spec.get("grid", {})
    if grid:
        axes = sorted(grid)
        for combo in itertools.product(*(grid[a] for a in axes)):
            cell = dict(defaults)
            for axis, value in zip(axes, combo):
                if isinstance(value, dict):
                    cell.update(value)
                else:
                    cell[axis] = value
            raw_cells.append(cell)
    for cell in spec.get("cells", []):
        merged = dict(defaults)
        merged.update(cell)
        raw_cells.append(merged)
    configs = [normalize_cell(c) for c in raw_cells]
    seen: Dict[str, dict] = {}
    for cfg in configs:
        key = cell_key(cfg)
        if key in seen and seen[key] != cfg:  # pragma: no cover - paranoia
            raise ValueError(f"cell key collision: {key}")
        if key in seen:
            raise ValueError(f"duplicate cell in campaign: {key}")
        seen[key] = cfg
    return configs


def normalize_cell(cell: dict) -> dict:
    """Fill experiment defaults; return the cell's ledger config identity.

    The fig5 shape reproduces exactly what ``doctor --ledger`` records,
    so a campaign cell and a hand-recorded run share one ``config_hash``
    (and therefore one cache slot).
    """
    experiment = cell.get("experiment", "fig5")
    if experiment == "fig5" and cell.get("faults") is not None:
        # A fig5 cell with a fault plan IS a chaos cell: distinct slug,
        # distinct executor branch, same testbed knobs.
        experiment = "chaos"
    if experiment not in _EXPERIMENTS:
        raise ValueError(f"unknown experiment {experiment!r}; "
                         f"expected one of {_EXPERIMENTS}")
    from repro.bench.runner import default_iodepth

    bs = _parse_size(cell.get("bs", MIB if experiment == "fig3" else 4096))
    config: dict
    if experiment in ("fig5", "chaos"):
        quick = bool(cell.get("quick", True))
        numjobs = cell.get("numjobs")
        if numjobs is None:
            numjobs = 8 if bs >= MIB else 16
        runtime = cell.get("runtime")
        if runtime is None:
            runtime = 0.02 if quick else (0.15 if bs >= MIB else 0.03)
        config = {
            "experiment": experiment,
            "transport": cell.get("transport", "tcp"),
            "client": cell.get("client", "dpu"),
            "rw": cell.get("rw", "randread"),
            "bs": bs,
            "numjobs": int(numjobs),
            "iodepth": int(cell.get("iodepth", default_iodepth(bs))),
            "runtime": float(runtime),
            "ssds": int(cell.get("ssds", 1)),
            "sample_every": int(cell.get("sample_every", 20)),
            "quick": quick,
        }
        if cell.get("targets") is not None:
            config["targets"] = int(cell["targets"])
        if experiment == "chaos":
            from repro.faults.plan import FaultPlan

            if cell.get("faults") is None:
                raise ValueError("chaos cells require a 'faults' key "
                                 "(a FaultPlan config)")
            # Round-trip through FaultPlan for validation + canonical
            # event order, so equivalent specs share one config hash.
            config["faults"] = FaultPlan.from_config(cell["faults"]).to_config()
            if cell.get("min_goodput") is not None:
                config["min_goodput"] = float(cell["min_goodput"])
            if cell.get("p999_max") is not None:
                config["p999_max"] = float(cell["p999_max"])
    elif experiment == "fig3":
        config = {
            "experiment": "fig3",
            "rw": cell.get("rw", "read"),
            "bs": bs,
            "numjobs": int(cell.get("numjobs", 1)),
            "iodepth": int(cell.get("iodepth", default_iodepth(bs))),
            "runtime": float(cell.get("runtime", 0.03)),
            "ssds": int(cell.get("ssds", 1)),
        }
    else:  # fig4
        config = {
            "experiment": "fig4",
            "provider": cell.get("provider", "ucx+rc"),
            "rw": cell.get("rw", "randread"),
            "bs": bs,
            "client_cores": int(cell.get("client_cores", 4)),
            "server_cores": int(cell.get("server_cores", 4)),
            "iodepth": int(cell.get("iodepth", 32)),
            "runtime": float(cell.get("runtime", 0.02)),
        }
    seed = cell.get("seed")
    if seed == "auto":
        from repro.sim.rng import seed_from_key

        base = {k: v for k, v in config.items() if k != "seed"}
        config["seed"] = seed_from_key(
            f"{lg.config_slug(base)}-{lg.config_hash(base)}")
    elif seed is not None:
        config["seed"] = int(seed)
    return config


def cell_key(config: dict) -> str:
    """The cell's stable identity: human slug + config hash.

    Depends only on the config content — two campaigns (or a campaign
    and a single ``doctor --ledger`` run) naming the same cell agree on
    the key regardless of spec layout or execution order.
    """
    return f"{lg.config_slug(config)}-{lg.config_hash(config)}"


def cell_label(config: dict) -> str:
    """The human label recorded on the cell's ledger record.

    Must match the label the equivalent CLI invocation writes — labels
    are content-hashed, so a mismatch would fork the run ID.
    """
    experiment = config["experiment"]
    if experiment == "fig5":
        return (f"doctor {config['transport']}/{config['client']} "
                f"{config['rw']} bs={config['bs']} jobs={config['numjobs']} "
                f"ssds={config['ssds']}")
    if experiment == "chaos":
        return (f"chaos {config['transport']}/{config['client']} "
                f"{config['rw']} bs={config['bs']} jobs={config['numjobs']} "
                f"ssds={config['ssds']}")
    if experiment == "fig3":
        return (f"fig3 {config['rw']} bs={config['bs']} "
                f"jobs={config['numjobs']} ssds={config['ssds']}")
    return (f"fig4 {config['provider']} {config['rw']} bs={config['bs']} "
            f"c={config['client_cores']} s={config['server_cores']}")


# ---------------------------------------------------------------------------
# Single-cell execution (runs in workers and in-process alike)
# ---------------------------------------------------------------------------

def execute_cell(config: dict) -> dict:
    """Simulate one cell and reduce it to an *unstamped* ledger record.

    Volatile fields (``created``/``git_sha``/``code_fingerprint``) are
    left for the parent to stamp once, so records cannot depend on which
    worker ran them or when they finished.
    """
    experiment = config["experiment"]
    if experiment == "chaos":
        from repro.bench.chaos import (
            DEFAULT_MIN_GOODPUT,
            DEFAULT_P999_MAX,
            chaos_sections,
        )
        from repro.bench.runner import run_fig5_chaos
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.from_config(config["faults"])
        chaos = run_fig5_chaos(
            config["transport"], config["client"], config["rw"],
            config["bs"], config["numjobs"], plan, n_ssds=config["ssds"],
            iodepth=config["iodepth"], runtime=config["runtime"],
            sample_every=config["sample_every"],
            seed=config.get("seed"), n_targets=config.get("targets"),
        )
        run = chaos.run
        sections = chaos_sections(
            run.result, chaos.stats, plan, tracer=run.tracer,
            min_goodput=config.get("min_goodput", DEFAULT_MIN_GOODPUT),
            p999_max=config.get("p999_max", DEFAULT_P999_MAX))
        return lg.make_run_record(
            run.result, run.collector, run.tracer, config=config,
            label=cell_label(config), kind="chaos",
            extra_sections={"chaos": sections})
    if experiment == "fig5":
        from repro.bench.runner import run_fig5_doctored

        run = run_fig5_doctored(
            config["transport"], config["client"], config["rw"],
            config["bs"], config["numjobs"], n_ssds=config["ssds"],
            iodepth=config["iodepth"], runtime=config["runtime"],
            sample_every=config["sample_every"],
            observe_sampler=not config["quick"],
            seed=config.get("seed"), n_targets=config.get("targets"),
        )
        return lg.make_run_record(
            run.result, run.collector, run.tracer, config=config,
            label=cell_label(config), kind="doctor")
    if experiment == "fig3":
        from repro.bench.runner import run_fig3_cell

        result = run_fig3_cell(
            config["rw"], config["bs"], config["numjobs"],
            n_ssds=config["ssds"], iodepth=config["iodepth"],
            runtime=config["runtime"], seed=config.get("seed"))
    else:
        from repro.bench.runner import run_fig4_cell

        result = run_fig4_cell(
            config["provider"], config["rw"], config["bs"],
            config["client_cores"], config["server_cores"],
            iodepth=config["iodepth"], runtime=config["runtime"],
            seed=config.get("seed"))
    return lg.make_cell_record(result, config=config,
                               label=cell_label(config), kind=experiment)


def _campaign_worker(item: Tuple[str, dict]) -> tuple:
    """Pool entry point: never raises — a crash becomes a per-cell error."""
    key, config = item
    t0 = time.perf_counter()
    try:
        record = execute_cell(config)
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        return (key, "error",
                {"error": f"{type(exc).__name__}: {exc}",
                 "traceback": traceback.format_exc()},
                time.perf_counter() - t0)
    return (key, "ok", record, time.perf_counter() - t0)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def find_cached(config: dict, fingerprint: str,
                ledger_dir: str = lg.DEFAULT_LEDGER_DIR) -> Optional[dict]:
    """A committed record that already answers this cell, or ``None``.

    Cache key: the record's full ``config`` equals the cell's *and* its
    stamped ``code_fingerprint`` equals the current tree's.  Records
    without a fingerprint (pre-campaign vintage) never hit.
    """
    want_hash = lg.config_hash(config)
    try:
        names = sorted(os.listdir(ledger_dir))
    except OSError:
        return None
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(ledger_dir, name)) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            continue
        if record.get("format") != lg.FORMAT:
            continue
        if record.get("config_hash") != want_hash:
            continue
        if record.get("config") != config:
            continue
        if record.get("code_fingerprint") != fingerprint:
            continue
        return record
    return None


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

@dataclass
class CellOutcome:
    """What happened to one cell of the campaign."""

    key: str
    config: dict
    status: str  # "cached" | "ran" | "error" | "would-run"
    run_id: Optional[str] = None
    path: Optional[str] = None
    wall_s: float = 0.0
    error: Optional[str] = None
    traceback: Optional[str] = None

    def to_dict(self) -> dict:
        out = {"key": self.key, "status": self.status,
               "config": self.config, "wall_s": self.wall_s}
        if self.run_id is not None:
            out["run_id"] = self.run_id
        if self.path is not None:
            out["path"] = self.path
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class CampaignResult:
    """The executor's report: one outcome per cell plus timing."""

    name: str
    jobs: int
    ledger_dir: str
    fingerprint: str
    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_s: float = 0.0
    dry_run: bool = False

    @property
    def errors(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "name": self.name,
            "jobs": self.jobs,
            "ledger_dir": self.ledger_dir,
            "code_fingerprint": self.fingerprint,
            "dry_run": self.dry_run,
            "n_cells": len(self.outcomes),
            "counts": self.counts(),
            "wall_s": self.wall_s,
            "cell_wall_s": fsum(o.wall_s for o in self.outcomes),
            "cells": [o.to_dict() for o in self.outcomes],
        }


def _pool_map(items: List[Tuple[str, dict]], jobs: int,
              on_result: Callable[[tuple], None]) -> None:
    """Run :func:`_campaign_worker` over ``items`` on ``jobs`` processes.

    Results are delivered through ``on_result`` as they complete
    (completion order — callers must not let it leak into outputs).  A
    broken pool (worker killed outright) surfaces as per-cell errors for
    every not-yet-finished cell rather than aborting the campaign.
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = mp.get_context()
    pending = {key for key, _ in items}
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            for result in pool.map(_campaign_worker, items):
                pending.discard(result[0])
                on_result(result)
    except BrokenProcessPool:
        for key in sorted(pending):
            on_result((key, "error",
                       {"error": "worker process died (BrokenProcessPool)",
                        "traceback": ""}, 0.0))


def run_campaign(
    spec: dict,
    jobs: int = 1,
    ledger_dir: str = lg.DEFAULT_LEDGER_DIR,
    cache: bool = True,
    force: bool = False,
    dry_run: bool = False,
    git_sha: Optional[str] = None,
    created: Optional[str] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    fingerprint: Optional[str] = None,
) -> CampaignResult:
    """Expand ``spec``, execute every non-cached cell, merge into the ledger.

    The merge is deterministic: outcomes sort by cell key, all volatile
    stamps come from the parent's arguments, and records are written in
    sorted order after the pool drains — a ``jobs=N`` campaign's ledger
    output is byte-identical to ``jobs=1`` given the same stamps.
    """
    t0 = time.perf_counter()
    configs = expand_spec(spec)
    if fingerprint is None:
        fingerprint = code_fingerprint()
    result = CampaignResult(name=str(spec.get("name", "campaign")),
                            jobs=jobs, ledger_dir=ledger_dir,
                            fingerprint=fingerprint, dry_run=dry_run)

    outcomes: Dict[str, CellOutcome] = {}
    to_run: List[Tuple[str, dict]] = []
    for config in configs:
        key = cell_key(config)
        cached = None
        if cache and not force:
            cached = find_cached(config, fingerprint, ledger_dir)
        if cached is not None:
            outcomes[key] = CellOutcome(
                key=key, config=config, status="cached",
                run_id=cached["run_id"],
                path=os.path.join(ledger_dir, f"{cached['run_id']}.json"))
            if progress is not None:
                progress(outcomes[key])
        elif dry_run:
            outcomes[key] = CellOutcome(key=key, config=config,
                                        status="would-run")
            if progress is not None:
                progress(outcomes[key])
        else:
            to_run.append((key, config))

    records: Dict[str, dict] = {}

    def on_result(res: tuple) -> None:
        key, status, payload, wall = res
        config = dict(next(c for k, c in to_run if k == key))
        if status == "ok":
            records[key] = payload
            outcomes[key] = CellOutcome(key=key, config=config, status="ran",
                                        run_id=payload["run_id"], wall_s=wall)
        else:
            outcomes[key] = CellOutcome(key=key, config=config,
                                        status="error", wall_s=wall,
                                        error=payload["error"],
                                        traceback=payload.get("traceback"))
        if progress is not None:
            progress(outcomes[key])

    if to_run:
        if jobs <= 1 or len(to_run) == 1:
            for item in to_run:
                on_result(_campaign_worker(item))
        else:
            _pool_map(to_run, jobs, on_result)

    # Deterministic merge: sorted by cell key, volatile stamps from the
    # parent, written only after every cell has reported.
    for key in sorted(records):
        record = records[key]
        record["created"] = created
        record["git_sha"] = git_sha
        record["code_fingerprint"] = fingerprint
        path = lg.save_run(record, ledger_dir)
        outcomes[key].path = path

    result.outcomes = [outcomes[k] for k in sorted(outcomes)]
    result.wall_s = time.perf_counter() - t0
    return result


# ---------------------------------------------------------------------------
# Verification against a committed ledger (the CI determinism gate)
# ---------------------------------------------------------------------------

def check_campaign(result: CampaignResult, against_dir: str) -> List[str]:
    """Compare the campaign's records against a committed ledger directory.

    Returns failure strings (empty = every cell reproduced).  Volatile
    fields are ignored — the comparison is on run IDs (content-derived)
    and the stripped record content, which is exactly the "parallel runs
    are byte-identical to the committed serial campaign" claim.
    """
    failures = []
    for outcome in result.outcomes:
        if outcome.status == "error":
            failures.append(f"{outcome.key}: cell errored: {outcome.error}")
            continue
        if outcome.run_id is None:  # pragma: no cover - dry runs
            failures.append(f"{outcome.key}: no record produced")
            continue
        committed_path = os.path.join(against_dir, f"{outcome.run_id}.json")
        if not os.path.isfile(committed_path):
            hint = ""
            want_hash = lg.config_hash(outcome.config)
            for record in lg.list_runs(against_dir):
                if record.get("config_hash") == want_hash:
                    hint = (f" (committed ledger has {record['run_id']} for "
                            f"this config — content differs)")
                    break
            failures.append(f"{outcome.key}: {outcome.run_id}.json not in "
                            f"{against_dir}{hint}")
            continue
        with open(committed_path) as fh:
            committed = json.load(fh)
        produced = lg.load_run(outcome.run_id, result.ledger_dir) \
            if outcome.path else None
        if produced is None:  # pragma: no cover
            failures.append(f"{outcome.key}: record file missing")
            continue
        if lg.strip_volatile(produced) != lg.strip_volatile(committed):
            failures.append(f"{outcome.key}: content differs from committed "
                            f"{outcome.run_id}.json despite equal run ID")
    return failures


# ---------------------------------------------------------------------------
# Cell references — "cell:k=v,..." resolved through the executor
# ---------------------------------------------------------------------------

def parse_cell_ref(ref: str) -> dict:
    """Parse ``cell:transport=rdma,bs=4k,numjobs=16`` into a cell dict.

    Values parse as int/float/bool where they look like one; ``bs``
    accepts size suffixes.  The result feeds :func:`normalize_cell`, so
    unspecified knobs take the standard defaults.
    """
    body = ref[len("cell:"):]
    cell: dict = {}
    for part in filter(None, body.split(",")):
        if "=" not in part:
            raise ValueError(f"bad cell ref component {part!r} "
                             "(expected key=value)")
        key, value = part.split("=", 1)
        key = key.strip()
        value = value.strip()
        if value.lower() in ("true", "false"):
            cell[key] = value.lower() == "true"
        else:
            try:
                cell[key] = int(value)
            except ValueError:
                try:
                    cell[key] = float(value)
                except ValueError:
                    cell[key] = value
    return cell


def resolve_run_or_cell(ref: str, ledger_dir: str = lg.DEFAULT_LEDGER_DIR,
                        git_sha: Optional[str] = None,
                        created: Optional[str] = None) -> dict:
    """Load a ledger run — or execute a ``cell:`` reference through the
    executor (cache-first) and return its record.

    This is how ``doctor --against`` and ``compare-runs`` accept cells
    that were never recorded: the executor runs the cell exactly as a
    campaign would (same config identity, same cache), records it into
    the ledger, and hands back the record.
    """
    if not ref.startswith("cell:"):
        return lg.load_run(ref, ledger_dir)
    config = normalize_cell(parse_cell_ref(ref))
    fingerprint = code_fingerprint()
    cached = find_cached(config, fingerprint, ledger_dir)
    if cached is not None:
        return cached
    spec = {"format": FORMAT, "name": "adhoc-cell", "cells": [config]}
    result = run_campaign(spec, jobs=1, ledger_dir=ledger_dir,
                          git_sha=git_sha, created=created,
                          fingerprint=fingerprint)
    if result.errors:
        err = result.errors[0]
        raise ValueError(f"cell {err.key} failed: {err.error}")
    return lg.load_run(result.outcomes[0].run_id, ledger_dir)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_campaign(result: CampaignResult) -> str:
    """One-screen human summary of a campaign run."""
    counts = result.counts()
    head = (f"campaign {result.name}: {len(result.outcomes)} cells, "
            f"jobs={result.jobs}"
            + (" (dry run)" if result.dry_run else ""))
    parts = [f"{counts.get(s, 0)} {s}" for s in
             ("ran", "cached", "would-run", "error") if counts.get(s)]
    lines = [head + " — " + ", ".join(parts) if parts else head]
    for o in result.outcomes:
        mark = {"ran": "+", "cached": "=", "would-run": "~",
                "error": "!"}.get(o.status, "?")
        tail = o.run_id or ""
        if o.status == "error":
            tail = o.error or "error"
        wall = f" [{o.wall_s * 1e3:7.1f} ms]" if o.wall_s else ""
        lines.append(f"  {mark} {o.key:48s} {o.status:9s}{wall} {tail}")
    lines.append(f"  wall {result.wall_s:.3f} s "
                 f"(cell time {fsum(o.wall_s for o in result.outcomes):.3f} s, "
                 f"fingerprint {result.fingerprint})")
    return "\n".join(lines)
