"""Bench baselines and the regression gate behind ``cli compare``.

The simulator is deterministic, so a committed baseline JSON pins every
metric of a bench cell exactly; any code change that moves a headline
number shows up as a diff, and CI fails the build when the move exceeds
the metric's threshold *in the bad direction*.

Format (``repro-baseline-v1``)::

    {
      "format": "repro-baseline-v1",
      "label": "fig5 tcp/dpu randread ...",
      "metrics": {
        "result.iops": {"value": 181000.0, "threshold": 0.1,
                        "direction": "higher_is_better"},
        ...
      }
    }

``direction`` decides what counts as a regression: throughput-style
metrics regress when they drop, latency-style metrics when they rise,
``informational`` metrics are reported but never gate.  Directions are
inferred from metric names at baseline-write time (see
:func:`classify_direction`) and stored explicitly, so a baseline is
self-describing.

Current results are any JSON document — the flattener walks nested
dicts/lists and compares every numeric leaf present in the baseline.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.report import Table

__all__ = [
    "FORMAT",
    "flatten_numeric",
    "classify_direction",
    "make_baseline",
    "load_json",
    "compare_to_baseline",
    "Delta",
    "render_deltas",
]

FORMAT = "repro-baseline-v1"

HIGHER = "higher_is_better"
LOWER = "lower_is_better"
INFO = "informational"

#: Name fragments that mark a metric's good direction.
_HIGHER_PAT = re.compile(
    r"(iops|bandwidth|throughput|ops_per_sec|bytes_per_sec|kiops|gib|"
    r"total_ios|coverage)", re.IGNORECASE)
_LOWER_PAT = re.compile(
    r"(latency|sojourn|rel_err|p50|p95|p99|p999|_mean|mean_|per_op|"
    r"staged_peak|backlog)", re.IGNORECASE)
#: Configuration fields: identity, never compared as performance.
_CONFIG_PAT = re.compile(
    r"(spec\.|sample_every|requests_seen|traces_started|interval|"
    r"ramp_time|runtime|\bnow\b|elapsed)", re.IGNORECASE)


def classify_direction(path: str) -> str:
    """Infer whether larger values of ``path`` are better, worse, or neither."""
    if _CONFIG_PAT.search(path):
        return INFO
    if _HIGHER_PAT.search(path):
        return HIGHER
    if _LOWER_PAT.search(path):
        return LOWER
    return INFO


def flatten_numeric(doc: object, prefix: str = "") -> Dict[str, float]:
    """All numeric leaves of a JSON-ish document as ``dotted.path -> value``."""
    out: Dict[str, float] = {}
    if isinstance(doc, bool):  # bool is an int subclass; skip
        return out
    if isinstance(doc, (int, float)):
        out[prefix or "value"] = float(doc)
        return out
    if isinstance(doc, dict):
        for k in sorted(doc):
            sub = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_numeric(doc[k], sub))
        return out
    if isinstance(doc, list):
        for i, item in enumerate(doc):
            sub = f"{prefix}[{i}]"
            out.update(flatten_numeric(item, sub))
        return out
    return out


def make_baseline(results_doc: dict, label: str = "",
                  default_threshold: float = 0.10,
                  thresholds: Optional[Dict[str, float]] = None) -> dict:
    """Snapshot a results document into a committed baseline.

    ``thresholds`` maps regex patterns (matched against the metric path)
    to per-metric relative thresholds; unmatched metrics get
    ``default_threshold``.
    """
    compiled = [(re.compile(pat), thr) for pat, thr in (thresholds or {}).items()]
    metrics = {}
    for path, value in flatten_numeric(results_doc).items():
        thr = default_threshold
        for pat, t in compiled:
            if pat.search(path):
                thr = t
                break
        metrics[path] = {
            "value": value,
            "threshold": thr,
            "direction": classify_direction(path),
        }
    return {"format": FORMAT, "label": label, "metrics": metrics}


def load_json(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


@dataclass
class Delta:
    """One metric's movement against the baseline."""

    path: str
    baseline: float
    current: float
    direction: str
    threshold: float
    status: str  # "ok" | "improved" | "REGRESSED" | "info" | "missing"

    @property
    def rel_change(self) -> float:
        """Signed relative change vs. the baseline (0 when baseline is 0)."""
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


def _status(direction: str, rel: float, threshold: float) -> str:
    if direction == INFO:
        return "info"
    bad = -rel if direction == HIGHER else rel
    if bad > threshold:
        return "REGRESSED"
    good = rel if direction == HIGHER else -rel
    if good > threshold:
        return "improved"
    return "ok"


def compare_to_baseline(current_doc: dict, baseline_doc: dict) -> List[Delta]:
    """Diff a current results document against a committed baseline.

    Every baseline metric is looked up in the flattened current document;
    metrics the current run no longer produces are reported as
    ``missing`` (and gate, like a regression — silently dropping a
    headline metric must not pass CI).
    """
    if baseline_doc.get("format") != FORMAT:
        raise ValueError(
            f"not a {FORMAT} document (format={baseline_doc.get('format')!r})")
    current = flatten_numeric(current_doc)
    deltas: List[Delta] = []
    for path in sorted(baseline_doc.get("metrics", {})):
        spec = baseline_doc["metrics"][path]
        base = float(spec["value"])
        direction = spec.get("direction", INFO)
        threshold = float(spec.get("threshold", 0.10))
        if path not in current:
            deltas.append(Delta(path, base, float("nan"), direction,
                                threshold, "missing"))
            continue
        cur = current[path]
        if base == 0.0:
            rel = 0.0 if cur == 0.0 else (1.0 if cur > 0 else -1.0)
        else:
            rel = (cur - base) / abs(base)
        deltas.append(Delta(path, base, cur, direction, threshold,
                            _status(direction, rel, threshold)))
    return deltas


def render_deltas(deltas: List[Delta], title: str = "Baseline comparison",
                  show_ok: bool = False) -> str:
    """A printable diff table (regressions and misses always shown)."""
    t = Table(title, ["baseline", "current", "change", "thr", "status"],
              row_header="metric")
    shown = 0
    for d in deltas:
        if not show_ok and d.status in ("ok", "info"):
            continue
        shown += 1
        change = ("-" if d.current != d.current
                  else f"{d.rel_change * 100:+.1f}%")
        t.add_row(d.path, [
            f"{d.baseline:.6g}",
            "-" if d.current != d.current else f"{d.current:.6g}",
            change,
            f"{d.threshold * 100:.0f}%",
            d.status,
        ])
    if shown == 0:
        gated = sum(1 for d in deltas if d.direction != INFO)
        return (f"{title}: {len(deltas)} metrics compared, "
                f"{gated} gated, all within thresholds")
    return t.render()


def regressions(deltas: List[Delta]) -> List[Delta]:
    """The deltas that must fail the gate (regressed or missing)."""
    return [d for d in deltas if d.status in ("REGRESSED", "missing")]
