"""Command-line runner for individual experiment cells.

Lets a user poke any point of the paper's configuration space without
writing code::

    python -m repro.bench.cli fig3 --rw read --bs 1m --jobs 4 --ssds 4
    python -m repro.bench.cli fig4 --provider ucx+rc --bs 4k --client-cores 4 --server-cores 4
    python -m repro.bench.cli fig5 --transport rdma --client dpu --rw randread --bs 4k --jobs 16
    python -m repro.bench.cli fig5 --transport tcp --client dpu --rw randread --bs 4k \
        --perfetto out.json --json-out results.json
    python -m repro.bench.cli trace --transport tcp --client dpu --rw randread --bs 4k
    python -m repro.bench.cli doctor --transport tcp --client dpu --rw randread --bs 4k \
        --slo 'p99<=2ms' --flame flame.txt --json-out doctor.json
    python -m repro.bench.cli compare results.json --baseline benchmarks/baselines/fig5_ci.json
    python -m repro.bench.cli doctor --quick --ledger            # record a run
    python -m repro.bench.cli runs                               # list the ledger
    python -m repro.bench.cli compare-runs fig5-tcp-dpu-randread-4096 \
        fig5-rdma-dpu-randread-4096 --diff-wait-flame diff.txt
    python -m repro.bench.cli doctor --quick --transport rdma \
        --against fig5-tcp-dpu-randread-4096 --diff-out diff.json
    python -m repro.bench.cli campaign benchmarks/campaigns/fig5_ci.json \
        --jobs 4 --progress                  # parallel sweep, cache-aware
    python -m repro.bench.cli campaign spec.json --dry-run    # what would run?
    python -m repro.bench.cli providers

``campaign`` expands a declarative sweep spec (``repro-campaign-v1``:
defaults + cartesian grid axes + explicit cells) and executes the cells
on a multiprocessing pool, recording each as a ledger record.  Cells are
**cached** content-addressed — a cell whose config hash and code
fingerprint (hash of the ``src/repro`` tree) already appear in the
ledger is skipped; ``--no-cache``/``--force`` override.  Output is
merged sorted by cell key, so ``--jobs N`` is byte-identical to serial;
``--check DIR`` turns that into a CI gate against a committed ledger.
``doctor --against`` and ``compare-runs`` additionally accept
``cell:k=v,...`` references resolved through the same executor.

Sizes accept ``4k``/``1m`` suffixes.  Output is one line per run in the
paper's units (GiB/s for >=64 KiB blocks, K IOPS otherwise).  ``trace``
additionally prints the per-stage latency breakdown and one request's
critical path; ``--telemetry`` (fig5/trace) appends the system utilization
snapshot, ``--json`` (trace) emits everything machine-readable instead.

``doctor`` runs a cell with wait-cause attribution attached, cross-checks
the utilization and Little's laws, ranks resources by their share of
sampled request time, and prints a one-line bottleneck verdict; ``--slo
'p99<=500us'`` gates exit status for CI, ``--flame``/``--wait-flame``
write collapsed-stack flamegraphs (speedscope / flamegraph.pl), and its
``--json-out`` emits the ``repro-doctor-v1`` document.

``--ledger`` (fig5/doctor/perf) appends the run to the **run ledger**
(``benchmarks/ledger/``, one ``repro-run-v1`` JSON per run, content-
derived stable IDs); ``runs`` lists/inspects it.  ``compare-runs`` and
``doctor --against`` invoke the **differential doctor**: the end-to-end
latency delta between two runs is decomposed into per-resource wait and
service contributions (``repro-diff-v1``), with red/blue differential
flamegraphs (``--diff-flame``/``--diff-wait-flame``) and a two-run
Perfetto counter overlay (``--overlay``).

``--perfetto PATH`` (fig5/trace) attaches the continuous telemetry
sampler and writes a Chrome trace-event file — sampled request spans as
duration events, every telemetry series as a counter track — loadable in
Perfetto / ``chrome://tracing``.  ``fig5 --json-out PATH`` writes a
compact metrics document; ``compare`` diffs such a document against a
committed baseline (see :mod:`repro.bench.baseline`) and exits non-zero
on regression, which is how CI gates headline numbers.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.bench.runner import (
    default_iodepth,
    run_fig3_cell,
    run_fig4_cell,
    run_fig5_cell,
    run_fig5_observed,
    run_fig5_traced,
)
from repro.net.fabric import list_providers
from repro.workload.fio import FioJobSpec, FioResult

__all__ = ["main", "parse_size"]


def parse_size(text: str) -> int:
    """Parse ``4096``, ``4k``, ``1m``, ``2g`` into bytes."""
    text = text.strip().lower()
    mult = 1
    if text.endswith(("k", "m", "g")):
        mult = {"k": 1024, "m": 1024**2, "g": 1024**3}[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * mult)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}") from None


def _report(result: FioResult) -> str:
    if result.spec.bs >= 64 * 1024:
        return f"{result.bandwidth_gib:.2f} GiB/s ({result.total_ios} IOs)"
    return f"{result.kiops:.1f} K IOPS ({result.total_ios} IOs)"


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    """Run-ledger options shared by fig5 / doctor / perf."""
    parser.add_argument("--ledger", action="store_true",
                        help="append this run as a repro-run-v1 record to "
                             "the run ledger")
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger directory (default benchmarks/ledger)")
    parser.add_argument("--git-sha", metavar="SHA", default=None,
                        help="git SHA to stamp on the ledger record "
                             "(default: $REPRO_GIT_SHA, then git rev-parse)")


def _git_sha(args) -> Optional[str]:
    """The SHA stamped on ledger records — passed in, never sim-computed."""
    import os

    sha = getattr(args, "git_sha", None) or os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha
    import subprocess

    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _now_iso() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _ledger_dir(args) -> str:
    from repro.bench import ledger as lg

    return getattr(args, "ledger_dir", None) or lg.DEFAULT_LEDGER_DIR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli",
        description="Run one cell of the paper's evaluation space.",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    p3 = sub.add_parser("fig3", help="local FIO / io_uring baseline")
    p3.add_argument("--rw", default="read",
                    choices=["read", "write", "randread", "randwrite"])
    p3.add_argument("--bs", type=parse_size, default=1024**2)
    p3.add_argument("--jobs", type=int, default=1)
    p3.add_argument("--ssds", type=int, default=1, choices=[1, 2, 3, 4])
    p3.add_argument("--runtime", type=float, default=0.03)

    p4 = sub.add_parser("fig4", help="remote SPDK NVMe-oF")
    p4.add_argument("--provider", default="ucx+rc", choices=list(list_providers()))
    p4.add_argument("--rw", default="randread",
                    choices=["read", "write", "randread", "randwrite"])
    p4.add_argument("--bs", type=parse_size, default=4096)
    p4.add_argument("--client-cores", type=int, default=4)
    p4.add_argument("--server-cores", type=int, default=4)
    p4.add_argument("--runtime", type=float, default=0.02)

    p5 = sub.add_parser("fig5", help="end-to-end DFS over ROS2")
    p5.add_argument("--transport", default="rdma")
    p5.add_argument("--client", default="host", choices=["host", "dpu"])
    p5.add_argument("--rw", default="read",
                    choices=["read", "write", "randread", "randwrite"])
    p5.add_argument("--bs", type=parse_size, default=1024**2)
    p5.add_argument("--jobs", type=int, default=8)
    p5.add_argument("--ssds", type=int, default=1, choices=[1, 2, 3, 4])
    p5.add_argument("--runtime", type=float, default=None)
    p5.add_argument("--telemetry", action="store_true",
                    help="print the system utilization snapshot after the run")
    p5.add_argument("--perfetto", metavar="PATH", default=None,
                    help="attach continuous telemetry + request tracing and "
                         "write a Chrome trace-event file (Perfetto)")
    p5.add_argument("--json-out", metavar="PATH", default=None,
                    help="write a compact metrics JSON for 'cli compare'")
    p5.add_argument("--sample", type=int, default=20,
                    help="trace 1 in N requests when instrumented (default 20)")
    _add_ledger_args(p5)

    pt = sub.add_parser(
        "trace",
        help="end-to-end DFS run with request tracing: per-stage breakdown",
    )
    pt.add_argument("--transport", default="tcp")
    pt.add_argument("--client", default="dpu", choices=["host", "dpu"])
    pt.add_argument("--rw", default="randread",
                    choices=["read", "write", "randread", "randwrite"])
    pt.add_argument("--bs", type=parse_size, default=4096)
    pt.add_argument("--jobs", type=int, default=None,
                    help="FIO numjobs (default: 8 for >=1 MiB blocks, 16 below)")
    pt.add_argument("--ssds", type=int, default=1, choices=[1, 2, 3, 4])
    pt.add_argument("--runtime", type=float, default=None)
    pt.add_argument("--sample", type=int, default=20,
                    help="trace 1 in N operations (default 20)")
    pt.add_argument("--telemetry", action="store_true",
                    help="print the system utilization snapshot too")
    pt.add_argument("--json", action="store_true",
                    help="emit the run, breakdown and telemetry as JSON")
    pt.add_argument("--perfetto", metavar="PATH", default=None,
                    help="also attach continuous telemetry and write a "
                         "Chrome trace-event file (Perfetto)")

    pd = sub.add_parser(
        "doctor",
        help="wait-cause diagnosis: blame ranking, law cross-checks, "
             "bottleneck verdict, SLO gates",
    )
    pd.add_argument("--transport", default="tcp")
    pd.add_argument("--client", default="dpu", choices=["host", "dpu"])
    pd.add_argument("--rw", default="randread",
                    choices=["read", "write", "randread", "randwrite"])
    pd.add_argument("--bs", type=parse_size, default=4096)
    pd.add_argument("--jobs", type=int, default=None,
                    help="FIO numjobs (default: 8 for >=1 MiB blocks, 16 below)")
    pd.add_argument("--ssds", type=int, default=1, choices=[1, 2, 3, 4])
    pd.add_argument("--runtime", type=float, default=None)
    pd.add_argument("--sample", type=int, default=20,
                    help="trace 1 in N operations (default 20)")
    pd.add_argument("--quick", action="store_true",
                    help="CI subset: short window, no continuous sampler "
                         "(skips the Little's-law check)")
    pd.add_argument("--slo", action="append", default=[], metavar="RULE",
                    help="SLO gate, e.g. 'p99<=500us' or 'iops>=100000'; "
                         "repeatable; any violation exits non-zero")
    pd.add_argument("--json-out", metavar="PATH", default=None,
                    help="write the repro-doctor-v1 JSON document")
    pd.add_argument("--flame", metavar="PATH", default=None,
                    help="write a sim-time collapsed-stack flamegraph "
                         "(speedscope / flamegraph.pl)")
    pd.add_argument("--wait-flame", metavar="PATH", default=None,
                    help="write a wait-time flamegraph: queueing time by "
                         "blamed resource under each span stack")
    pd.add_argument("--perfetto", metavar="PATH", default=None,
                    help="write a Chrome trace with per-resource cumulative "
                         "blamed-wait counter tracks")
    _add_ledger_args(pd)
    pd.add_argument("--against", metavar="RUN", default=None,
                    help="differential mode: compare this run against a "
                         "ledger run (run ID, unique ID prefix, file "
                         "path, or a 'cell:k=v,...' spec executed "
                         "through the campaign executor, cache-first) "
                         "and attribute the delta per resource")
    pd.add_argument("--diff-out", metavar="PATH", default=None,
                    help="write the repro-diff-v1 JSON verdict "
                         "(requires --against)")
    pd.add_argument("--diff-flame", metavar="PATH", default=None,
                    help="write the red/blue differential folded stacks of "
                         "span self time (requires --against)")
    pd.add_argument("--diff-wait-flame", metavar="PATH", default=None,
                    help="write the red/blue differential folded stacks of "
                         "wait blame (requires --against)")
    pd.add_argument("--overlay", metavar="PATH", default=None,
                    help="write a Chrome trace overlaying both runs' wait "
                         "counter tracks (requires --against)")

    pch = sub.add_parser(
        "chaos",
        help="fault-injected run: deterministic fault plan, retry/recovery "
             "telemetry, availability verdict (repro-chaos-v1)",
    )
    pch.add_argument("--transport", default="rdma")
    pch.add_argument("--client", default="dpu", choices=["host", "dpu"])
    pch.add_argument("--rw", default="randread",
                     choices=["read", "write", "randread", "randwrite"])
    pch.add_argument("--bs", type=parse_size, default=4096)
    pch.add_argument("--jobs", type=int, default=None,
                     help="FIO numjobs (default: 8 for >=1 MiB blocks, "
                          "16 below)")
    pch.add_argument("--ssds", type=int, default=1, choices=[1, 2, 3, 4])
    pch.add_argument("--runtime", type=float, default=None)
    pch.add_argument("--sample", type=int, default=20,
                     help="trace 1 in N operations (default 20)")
    pch.add_argument("--fault", action="append", default=[], metavar="SPEC",
                     help="fault event KIND:TARGET:AT[:DURATION[:FACTOR]] "
                          "(times relative to the measured window); "
                          "repeatable; default: a mid-run qp_break on the "
                          "client QP")
    pch.add_argument("--seed-key", default="chaos",
                     help="seed key for the plan's deterministic backoff "
                          "jitter (default 'chaos')")
    pch.add_argument("--min-goodput", type=float, default=None,
                     help="measured-window success-ratio floor "
                          "(default 0.95)")
    pch.add_argument("--p999-max", type=float, default=None,
                     help="p99.9 latency ceiling in seconds (default 0.05)")
    pch.add_argument("--json-out", metavar="PATH", default=None,
                     help="write the repro-chaos-v1 verdict document")
    pch.add_argument("--wait-flame", metavar="PATH", default=None,
                     help="write the wait-time flamegraph (fault: leaves "
                          "show recovery backoff blame)")
    _add_ledger_args(pch)

    pp = sub.add_parser(
        "perf",
        help="wall-clock perf harness: kernel events/s, pipe coalescing, "
             "fig5 cell timings (BENCH_perf.json)",
    )
    pp.add_argument("--quick", action="store_true",
                    help="CI smoke subset (~seconds)")
    pp.add_argument("--repeat", type=int, default=3,
                    help="timed repetitions per sample; min is reported")
    pp.add_argument("--warmup", type=int, default=1,
                    help="discarded warmup runs per sample")
    pp.add_argument("--out", metavar="PATH", default=None,
                    help="write the repro-perfbench-v1 JSON document")
    pp.add_argument("--check", metavar="BASELINE", default=None,
                    help="gate against a committed perfbench baseline; "
                         "exit non-zero on regression")
    pp.add_argument("--write-baseline", metavar="PATH", default=None,
                    help="snapshot this run as the perfbench baseline")
    pp.add_argument("--max-regression", type=float, default=0.30,
                    help="allowed relative drop on rate metrics when "
                         "gating (default 0.30)")
    _add_ledger_args(pp)

    pr = sub.add_parser(
        "runs",
        help="list or inspect ledger runs (benchmarks/ledger/)",
    )
    pr.add_argument("ref", nargs="?", default=None,
                    help="run ID, unique ID prefix, or file path to "
                         "inspect; omit to list all runs")
    pr.add_argument("--ledger-dir", metavar="DIR", default=None,
                    help="ledger directory (default benchmarks/ledger)")
    pr.add_argument("--format", choices=["table", "json"], default=None,
                    help="listing format (default table)")
    pr.add_argument("--json", action="store_true",
                    help="shorthand for --format json")

    pca = sub.add_parser(
        "campaign",
        help="expand a sweep spec into cells and run them on a worker "
             "pool with content-addressed run caching",
    )
    pca.add_argument("spec", help="repro-campaign-v1 JSON sweep spec")
    pca.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default 1 = in-process); "
                          "output is byte-identical for any N")
    pca.add_argument("--dry-run", action="store_true",
                     help="expand and report cached/missing cells "
                          "without simulating anything")
    pca.add_argument("--progress", action="store_true",
                     help="print each cell as it completes (completion "
                          "order; the merged output stays sorted)")
    pca.add_argument("--no-cache", action="store_true",
                     help="ignore cached records (still writes results)")
    pca.add_argument("--force", action="store_true",
                     help="re-simulate every cell even when cached")
    pca.add_argument("--json-out", metavar="PATH", default=None,
                     help="write the repro-campaign-v1 execution report "
                          "(per-cell status + wall-clock)")
    pca.add_argument("--check", metavar="DIR", default=None,
                     help="after running, fail unless every record "
                          "matches the committed ledger DIR (volatile "
                          "fields ignored) — the CI determinism gate")
    pca.add_argument("--ledger-dir", metavar="DIR", default=None,
                     help="ledger directory records are read from and "
                          "written to (default benchmarks/ledger)")
    pca.add_argument("--git-sha", metavar="SHA", default=None,
                     help="git SHA to stamp on new records "
                          "(default: $REPRO_GIT_SHA, then git rev-parse)")

    pcr = sub.add_parser(
        "compare-runs",
        help="differential doctor on two ledger runs: attribute the "
             "latency/IOPS delta per resource (no simulation)",
    )
    pcr.add_argument("base", help="baseline run: ID, unique prefix, path, "
                                  "or 'cell:k=v,...' (executed on demand)")
    pcr.add_argument("current", help="current run: ID, unique prefix, path, "
                                     "or 'cell:k=v,...' (executed on demand)")
    pcr.add_argument("--ledger-dir", metavar="DIR", default=None,
                    help="ledger directory (default benchmarks/ledger)")
    pcr.add_argument("--json-out", metavar="PATH", default=None,
                     help="write the repro-diff-v1 JSON verdict")
    pcr.add_argument("--diff-flame", metavar="PATH", default=None,
                     help="write the red/blue differential folded stacks "
                          "of span self time")
    pcr.add_argument("--diff-wait-flame", metavar="PATH", default=None,
                     help="write the red/blue differential folded stacks "
                          "of wait blame")
    pcr.add_argument("--overlay", metavar="PATH", default=None,
                     help="write a Chrome trace overlaying both runs' "
                          "wait counter tracks")

    pc = sub.add_parser(
        "compare",
        help="diff a results JSON against a committed baseline (CI gate)",
    )
    pc.add_argument("current", help="current results JSON (fig5 --json-out)")
    pc.add_argument("--baseline", required=True,
                    help="committed repro-baseline-v1 JSON")
    pc.add_argument("--write-baseline", action="store_true",
                    help="snapshot CURRENT into --baseline instead of comparing")
    pc.add_argument("--threshold", type=float, default=0.10,
                    help="default relative threshold when writing (default 0.10)")
    pc.add_argument("--show-ok", action="store_true",
                    help="show all compared metrics, not just the movers")

    pl = sub.add_parser(
        "lint",
        help="simlint: determinism lint (SIM001-SIM006) over a file set",
    )
    pl.add_argument("paths", nargs="*", default=["src/repro"],
                    help="files or directories to lint (default src/repro)")
    pl.add_argument("--baseline", default=None,
                    help="suppression baseline JSON (default "
                         "benchmarks/baselines/simlint.json when present)")
    pl.add_argument("--no-baseline", action="store_true",
                    help="ignore any suppression baseline")
    pl.add_argument("--write-baseline", action="store_true",
                    help="absorb current findings into --baseline "
                         "(justifications left as TODO for editing)")
    pl.add_argument("--json-out", default=None,
                    help="write the repro-lint-v1 document here")

    ps = sub.add_parser(
        "sanitize",
        help="virtual-time race sanitizer: tie-shuffle x PYTHONHASHSEED "
             "matrix over the quick Fig. 5 cells",
    )
    ps.add_argument("--transport", choices=["rdma", "tcp", "both"],
                    default="both", help="which quick cell(s) to run")
    ps.add_argument("--seeds", type=int, default=5,
                    help="number of tie-shuffle seeds (default 5)")
    ps.add_argument("--hash-seeds", default="0,12345",
                    help="comma-separated PYTHONHASHSEED values "
                         "(default 0,12345)")
    ps.add_argument("--runtime", type=float, default=0.02,
                    help="simulated seconds per run (default 0.02)")
    ps.add_argument("--json-out", default=None,
                    help="write the repro-sanitize-v1 document here")

    sub.add_parser("providers", help="list fabric providers")
    return parser


def _cmd_lint(args) -> int:
    import json as _json

    from repro.analysis import Baseline, lint_paths
    from repro.analysis.baseline import DEFAULT_BASELINE_PATH
    from repro.analysis.lint import render_report

    baseline_path = args.baseline or DEFAULT_BASELINE_PATH
    baseline = None
    if not args.no_baseline and not args.write_baseline \
            and os.path.isfile(baseline_path):
        baseline = Baseline.load(baseline_path)
    report = lint_paths(args.paths, baseline=baseline)
    if args.write_baseline:
        Baseline.write(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} entries to {baseline_path} — "
              "edit the justifications before committing")
        return 0
    doc = report.to_doc(list(args.paths))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(render_report(report))
    if baseline is not None:
        stale = baseline.stale_entries()
        for ent in stale:
            print(f"stale baseline entry (matched nothing): "
                  f"{ent['rule']} {ent['path']}: {ent['line_text']!r}")
    return 0 if report.ok else 1


def _cmd_sanitize(args) -> int:
    import json as _json

    from repro.analysis import render_sanitize, run_sanitizer

    transports = (("rdma", "tcp") if args.transport == "both"
                  else (args.transport,))
    seeds = tuple(range(1, args.seeds + 1))
    hash_seeds = tuple(int(h) for h in args.hash_seeds.split(","))
    doc = run_sanitizer(transports=transports, runtime=args.runtime,
                        seeds=seeds, hash_seeds=hash_seeds)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(render_sanitize(doc))
    return 0 if doc["ok"] else 1


def _write_perfetto(path: str, collector, sampler, label: str) -> None:
    """Write the Chrome trace-event file and report what it contains."""
    from repro.sim.chrometrace import write_chrome_trace

    spans = collector.spans if collector is not None else ()
    doc = write_chrome_trace(path, spans=spans, sampler=sampler, label=label)
    other = doc.get("otherData", {})
    print(f"wrote Perfetto trace {path}: {other.get('n_spans', 0)} spans, "
          f"{other.get('n_counter_tracks', 0)} counter tracks "
          f"({len(doc['traceEvents'])} events)")


def _fig5_metrics_doc(run, label: str) -> dict:
    """The compact metrics document ``compare`` gates on.

    Headline FIO numbers plus the self-check and attribution summaries —
    deliberately *not* the raw series (thousands of points would make
    baselines unreviewable diffs).
    """
    return {
        "format": "repro-fig5-v1",
        "label": label,
        "spec": {"rw": run.spec.rw, "bs": run.spec.bs,
                 "numjobs": run.spec.numjobs, "iodepth": run.spec.iodepth,
                 "runtime": run.spec.runtime},
        "result": run.result.to_dict(),
        "busiest_by_phase": run.timeline.busiest_by_phase(),
        "littles_law": run.timeline.littles_law(),
    }


def _run_compare(args) -> int:
    import json

    from repro.bench import baseline as bl

    current = bl.load_json(args.current)
    if args.write_baseline:
        doc = bl.make_baseline(current, label=str(current.get("label", "")),
                               default_threshold=args.threshold)
        with open(args.baseline, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {args.baseline} "
              f"({len(doc['metrics'])} metrics, "
              f"default threshold {args.threshold * 100:.0f}%)")
        return 0
    base = bl.load_json(args.baseline)
    deltas = bl.compare_to_baseline(current, base)
    title = f"Baseline comparison — {base.get('label') or args.baseline}"
    print(bl.render_deltas(deltas, title=title, show_ok=args.show_ok))
    bad = bl.regressions(deltas)
    if bad:
        print(f"\nFAIL: {len(bad)} metric(s) regressed or missing",
              file=sys.stderr)
        return 1
    return 0


def _run_perf(args) -> int:
    from repro.bench import perfbench as pb

    doc = pb.run_perfbench(quick=args.quick, repeat=args.repeat,
                           warmup=args.warmup)
    print(pb.render_summary(doc))
    if args.ledger:
        from repro.bench import ledger as lg

        from repro.bench.campaign import code_fingerprint

        record = lg.make_perf_record(doc, git_sha=_git_sha(args),
                                     created=_now_iso(),
                                     code_fingerprint=code_fingerprint())
        path = lg.save_run(record, _ledger_dir(args))
        print(f"ledger: recorded {record['run_id']} -> {path}")
    if args.out:
        pb.save_doc(doc, args.out)
        print(f"wrote {args.out}")
    if args.write_baseline:
        pb.save_doc(doc, args.write_baseline)
        print(f"wrote perfbench baseline {args.write_baseline}")
    if args.check:
        import json as _json

        with open(args.check) as fh:
            baseline = _json.load(fh)
        failures = pb.check_against_baseline(
            doc, baseline, max_regression=args.max_regression)
        if failures:
            print(f"\nFAIL: {len(failures)} perf metric(s) regressed "
                  f"vs {args.check}", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"\nperf gate OK vs {args.check} "
              f"(max rate regression {args.max_regression * 100:.0f}%)")
    return 0


def _run_trace(args) -> int:
    from repro.sim.spans import LatencyBreakdown, critical_path

    numjobs = args.jobs
    if numjobs is None:
        numjobs = 8 if args.bs >= 1024**2 else 16
    label = (f"trace {args.transport}/{args.client} {args.rw} bs={args.bs} "
             f"jobs={numjobs} ssds={args.ssds}")
    if args.perfetto:
        run = run_fig5_observed(
            args.transport, args.client, args.rw, args.bs, numjobs,
            n_ssds=args.ssds, runtime=args.runtime, sample_every=args.sample,
        )
        result, collector, system = run.result, run.collector, run.system
        _write_perfetto(args.perfetto, collector, run.sampler, label)
    else:
        result, collector, system = run_fig5_traced(
            args.transport, args.client, args.rw, args.bs, numjobs,
            n_ssds=args.ssds, runtime=args.runtime, sample_every=args.sample,
        )
    breakdown = LatencyBreakdown(collector.spans)

    if args.json:
        import json

        from repro.core.telemetry import snapshot

        doc = {
            "format": "repro-trace-v1",
            "label": label,
            "result": result.to_dict(),
            "breakdown": breakdown.to_dict(),
            "traces_sampled": collector.traces_started,
            "requests_seen": collector.requests_seen,
        }
        if args.telemetry:
            doc["telemetry"] = snapshot(system).to_dict()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    print(f"{label}: {_report(result)}")
    print(f"sampled {collector.traces_started} of {collector.requests_seen} "
          f"requests (1 in {args.sample})\n")
    print(breakdown.table(f"Latency breakdown — {args.transport}/{args.client} "
                          f"{args.rw} bs={args.bs}"))
    by_trace = collector.by_trace()
    if by_trace:
        # Show the critical path of the slowest sampled request.
        def root_dur(spans):
            roots = [s for s in spans if s.parent_id is None]
            return roots[0].duration if roots else 0.0
        tid = max(by_trace, key=lambda t: root_dur(by_trace[t]))
        print(f"\nCritical path (slowest sampled request, trace {tid}):")
        for s in critical_path(by_trace[tid]):
            print(f"  {s.stage:32s} {s.duration * 1e6:10.3f} us")
    if args.telemetry:
        from repro.core.telemetry import snapshot

        print("\n" + snapshot(system).render())
    return 0


def _fig5_run_config(transport: str, client: str, spec, n_ssds: int,
                     sample_every: int, quick: bool = False) -> dict:
    """The identity a fig5-shaped ledger record is slugged and hashed on."""
    return {
        "experiment": "fig5",
        "transport": transport,
        "client": client,
        "rw": spec.rw,
        "bs": spec.bs,
        "numjobs": spec.numjobs,
        "iodepth": spec.iodepth,
        "runtime": spec.runtime,
        "ssds": n_ssds,
        "sample_every": sample_every,
        "quick": quick,
    }


def _write_diff_outputs(base: dict, current: dict, dd, json_out=None,
                        diff_flame=None, diff_wait_flame=None,
                        overlay=None) -> None:
    """The differential artefacts shared by doctor --against / compare-runs."""
    if json_out:
        import json

        with open(json_out, "w") as fh:
            json.dump(dd.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote diff verdict {json_out}")
    if diff_flame or diff_wait_flame:
        from repro.sim.diffdoctor import diff_flames
        from repro.sim.flame import write_diff_collapsed

        flames = diff_flames(base, current)
        if diff_flame:
            write_diff_collapsed(diff_flame, flames["spans"])
            print(f"wrote differential flamegraph {diff_flame} "
                  f"({len(flames['spans'])} changed stacks)")
        if diff_wait_flame:
            write_diff_collapsed(diff_wait_flame, flames["waits"])
            print(f"wrote differential wait flamegraph {diff_wait_flame} "
                  f"({len(flames['waits'])} changed stacks)")
    if overlay:
        from repro.sim.diffdoctor import write_overlay_trace

        doc = write_overlay_trace(overlay, base, current, label=dd.label)
        other = doc.get("otherData", {})
        print(f"wrote overlay trace {overlay}: "
              f"{other.get('n_counter_tracks', 0)} counter tracks")


def _run_doctor(args) -> int:
    from repro.bench.runner import run_fig5_doctored
    from repro.sim.doctor import diagnose, parse_slo

    # Validate SLO strings *before* burning a simulation run on them.
    try:
        for slo in args.slo:
            parse_slo(slo)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Same fail-fast rule for the differential baseline: resolve the
    # ledger reference (and catch dangling diff flags) up front.  A
    # ``cell:`` reference goes through the campaign executor —
    # cache-first, simulated and recorded only when missing.
    base_record = None
    if args.against:
        from repro.bench.campaign import resolve_run_or_cell

        try:
            base_record = resolve_run_or_cell(
                args.against, _ledger_dir(args),
                git_sha=_git_sha(args), created=_now_iso())
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        for opt in ("diff_out", "diff_flame", "diff_wait_flame", "overlay"):
            if getattr(args, opt):
                flag = "--" + opt.replace("_", "-")
                print(f"error: {flag} requires --against",
                      file=sys.stderr)
                return 2

    numjobs = args.jobs
    if numjobs is None:
        numjobs = 8 if args.bs >= 1024**2 else 16
    runtime = args.runtime
    if runtime is None and args.quick:
        runtime = 0.02
    label = (f"doctor {args.transport}/{args.client} {args.rw} bs={args.bs} "
             f"jobs={numjobs} ssds={args.ssds}")
    run = run_fig5_doctored(
        args.transport, args.client, args.rw, args.bs, numjobs,
        n_ssds=args.ssds, runtime=runtime, sample_every=args.sample,
        observe_sampler=not args.quick,
    )
    littles = run.sampler.littles_law() if run.sampler is not None else None
    diag = diagnose(run.result, run.collector, run.tracer,
                    stations=run.stations, littles_rows=littles,
                    slos=args.slo, label=label)

    if args.flame or args.wait_flame:
        from repro.sim.flame import fold_spans, fold_waits, write_collapsed

        if args.flame:
            folded = fold_spans(run.collector.spans)
            write_collapsed(args.flame, folded)
            print(f"wrote flamegraph {args.flame} ({len(folded)} stacks)")
        if args.wait_flame:
            folded = fold_waits(run.collector.spans, run.tracer.records)
            write_collapsed(args.wait_flame, folded)
            print(f"wrote wait flamegraph {args.wait_flame} "
                  f"({len(folded)} stacks)")
    if args.perfetto:
        from repro.sim.chrometrace import write_chrome_trace

        doc = write_chrome_trace(
            args.perfetto, spans=run.collector.spans, sampler=run.sampler,
            label=label, extra_series=run.tracer.wait_series())
        other = doc.get("otherData", {})
        print(f"wrote Perfetto trace {args.perfetto}: "
              f"{other.get('n_spans', 0)} spans, "
              f"{other.get('n_counter_tracks', 0)} counter tracks")
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(diag.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote doctor verdict {args.json_out}")

    print(f"{label}: {_report(run.result)}")
    print(diag.render())

    from repro.sim.spans import LatencyBreakdown

    breakdown = LatencyBreakdown(run.collector.spans,
                                 stage_waits=run.tracer.stage_waits())
    print()
    print(breakdown.table("Latency breakdown (sampled requests)"))

    if args.ledger or base_record is not None:
        from repro.bench import ledger as lg
        from repro.bench.campaign import code_fingerprint

        config = _fig5_run_config(args.transport, args.client, run.spec,
                                  args.ssds, args.sample, quick=args.quick)
        record = lg.make_run_record(
            run.result, run.collector, run.tracer, config=config,
            label=label, kind="doctor", git_sha=_git_sha(args),
            created=_now_iso(), code_fingerprint=code_fingerprint())
        if args.ledger:
            path = lg.save_run(record, _ledger_dir(args))
            print(f"ledger: recorded {record['run_id']} -> {path}")
        if base_record is not None:
            from repro.sim.diffdoctor import diff_runs

            dd = diff_runs(base_record, record,
                           label=f"{label} vs {base_record['run_id']}")
            print()
            print(dd.render())
            _write_diff_outputs(base_record, record, dd,
                                json_out=args.diff_out,
                                diff_flame=args.diff_flame,
                                diff_wait_flame=args.diff_wait_flame,
                                overlay=args.overlay)
            return max(diag.exit_code, dd.exit_code)
    return diag.exit_code


def _run_chaos(args) -> int:
    from repro.bench import chaos as ch
    from repro.bench.runner import run_fig5_chaos
    from repro.faults.plan import FaultPlan, parse_fault_spec
    from repro.faults.retry import RetryPolicy

    numjobs = args.jobs
    if numjobs is None:
        numjobs = 8 if args.bs >= 1024**2 else 16
    runtime = args.runtime
    if runtime is None:
        runtime = 0.15 if args.bs >= 1024**2 else 0.03
    if args.fault:
        try:
            events = tuple(parse_fault_spec(s) for s in args.fault)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        plan = FaultPlan(events=events, policy=RetryPolicy(),
                         seed_key=args.seed_key)
    else:
        plan = ch.default_qp_break_plan(args.client, runtime)
    label = (f"chaos {args.transport}/{args.client} {args.rw} bs={args.bs} "
             f"jobs={numjobs} ssds={args.ssds}")

    run = run_fig5_chaos(
        args.transport, args.client, args.rw, args.bs, numjobs, plan,
        n_ssds=args.ssds, runtime=runtime, sample_every=args.sample,
    )
    config = _fig5_run_config(args.transport, args.client, run.run.spec,
                              args.ssds, args.sample)
    config["experiment"] = "chaos"
    config["faults"] = plan.to_config()
    doc = ch.make_chaos_report(
        run, config, label=label,
        min_goodput=(args.min_goodput if args.min_goodput is not None
                     else ch.DEFAULT_MIN_GOODPUT),
        p999_max=(args.p999_max if args.p999_max is not None
                  else ch.DEFAULT_P999_MAX))

    print(f"{label}: {_report(run.run.result)}")
    print(ch.render_chaos(doc))
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote chaos verdict {args.json_out}")
    if args.wait_flame:
        from repro.sim.flame import fold_waits, write_collapsed

        folded = fold_waits(run.run.collector.spans, run.run.tracer.records)
        write_collapsed(args.wait_flame, folded)
        print(f"wrote wait flamegraph {args.wait_flame} "
              f"({len(folded)} stacks)")
    if args.ledger:
        from repro.bench import ledger as lg
        from repro.bench.campaign import code_fingerprint

        sections = {k: doc[k] for k in
                    ("faults", "recovery", "conservation", "availability",
                     "checks", "ok", "fault_blame") if k in doc}
        record = lg.make_run_record(
            run.run.result, run.run.collector, run.run.tracer,
            config=config, label=label, kind="chaos",
            git_sha=_git_sha(args), created=_now_iso(),
            code_fingerprint=code_fingerprint(),
            extra_sections={"chaos": sections})
        path = lg.save_run(record, _ledger_dir(args))
        print(f"ledger: recorded {record['run_id']} -> {path}")
    return 0 if doc["ok"] else 1


def _run_campaign(args) -> int:
    import json

    from repro.bench import campaign as cp

    try:
        spec = cp.load_spec(args.spec)
        cells = cp.expand_spec(spec)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    progress = None
    if args.progress:
        done = [0]

        def progress(outcome, total=len(cells)):
            done[0] += 1
            tail = outcome.run_id or outcome.error or ""
            print(f"[{done[0]}/{total}] {outcome.status:9s} "
                  f"{outcome.key}  {tail}", flush=True)

    result = cp.run_campaign(
        spec, jobs=args.jobs, ledger_dir=_ledger_dir(args),
        cache=not args.no_cache, force=args.force, dry_run=args.dry_run,
        git_sha=_git_sha(args), created=_now_iso(), progress=progress)
    print(cp.render_campaign(result))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote campaign report {args.json_out}")
    rc = result.exit_code
    for err in result.errors:
        print(f"\ncell {err.key} failed: {err.error}", file=sys.stderr)
        if err.traceback:
            print(err.traceback, file=sys.stderr)
    if args.check and not args.dry_run:
        failures = cp.check_campaign(result, args.check)
        if failures:
            print(f"\nFAIL: {len(failures)} cell(s) differ from the "
                  f"committed campaign in {args.check}", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            rc = max(rc, 1)
        else:
            print(f"determinism gate OK: all {len(result.outcomes)} "
                  f"record(s) match {args.check}")
    return rc


def _run_runs(args) -> int:
    import json

    from repro.bench import ledger as lg
    from repro.bench.report import Table

    ldir = _ledger_dir(args)
    as_json = args.json or args.format == "json"
    if args.ref:
        try:
            record = lg.load_run(args.ref, ldir)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if as_json:
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        print(f"run {record['run_id']} ({record.get('kind', '?')})")
        print(f"label:   {record.get('label', '')}")
        print(f"created: {record.get('created')}  "
              f"git: {record.get('git_sha')}")
        print(f"config:  {json.dumps(record.get('config', {}), sort_keys=True)}")
        summary = lg.run_summary(record)
        if summary.get("iops") is not None:
            print(f"iops:    {summary['iops']:,.0f}")
        if summary.get("p99") is not None:
            print(f"p99:     {summary['p99'] * 1e6:.1f} us")
        blame = record.get("blame", {})
        if blame:
            traces = max(1, record.get("traces", {}).get("count", 1))
            rows = sorted(blame.items(),
                          key=lambda kv: (-kv[1]["total"], kv[0]))
            t = Table("Blame (per sampled request)", ["us/req"],
                      row_header="resource")
            for name, comp in rows[:8]:
                t.add_row(name, [f"{comp['total'] / traces * 1e6:10.3f}"])
            print(t.render())
        return 0
    # list_runs sorts by run ID (name asc), so the listing is stable
    # regardless of directory iteration order.
    records = lg.list_runs(ldir)
    if as_json:
        print(json.dumps([lg.run_summary(r) for r in records],
                         indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"no runs in {ldir}")
        return 0
    t = Table(f"Run ledger — {ldir}", ["kind", "iops", "p99 us", "created"],
              row_header="run_id")
    for r in records:
        s = lg.run_summary(r)
        t.add_row(s["run_id"], [
            s["kind"],
            "-" if s["iops"] is None else f"{s['iops']:,.0f}",
            "-" if s["p99"] is None else f"{s['p99'] * 1e6:.1f}",
            s["created"] or "-",
        ])
    print(t.render())
    return 0


def _run_compare_runs(args) -> int:
    from repro.bench.campaign import resolve_run_or_cell
    from repro.sim.diffdoctor import diff_runs

    ldir = _ledger_dir(args)
    try:
        base = resolve_run_or_cell(args.base, ldir,
                                   git_sha=_git_sha(args),
                                   created=_now_iso())
        current = resolve_run_or_cell(args.current, ldir,
                                      git_sha=_git_sha(args),
                                      created=_now_iso())
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dd = diff_runs(base, current)
    print(dd.render())
    _write_diff_outputs(base, current, dd, json_out=args.json_out,
                        diff_flame=args.diff_flame,
                        diff_wait_flame=args.diff_wait_flame,
                        overlay=args.overlay)
    return dd.exit_code


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "providers":
        for name in list_providers():
            print(name)
        return 0

    if args.experiment == "lint":
        return _cmd_lint(args)

    if args.experiment == "sanitize":
        return _cmd_sanitize(args)

    if args.experiment == "compare":
        return _run_compare(args)

    if args.experiment == "campaign":
        return _run_campaign(args)

    if args.experiment == "runs":
        return _run_runs(args)

    if args.experiment == "compare-runs":
        return _run_compare_runs(args)

    if args.experiment == "perf":
        return _run_perf(args)

    if args.experiment == "trace":
        return _run_trace(args)

    if args.experiment == "doctor":
        return _run_doctor(args)

    if args.experiment == "chaos":
        return _run_chaos(args)

    if args.experiment == "fig3":
        result = run_fig3_cell(args.rw, args.bs, args.jobs, n_ssds=args.ssds,
                               runtime=args.runtime)
        label = f"fig3 {args.rw} bs={args.bs} jobs={args.jobs} ssds={args.ssds}"
    elif args.experiment == "fig4":
        result = run_fig4_cell(args.provider, args.rw, args.bs,
                               args.client_cores, args.server_cores,
                               runtime=args.runtime)
        label = (f"fig4 {args.provider} {args.rw} bs={args.bs} "
                 f"c={args.client_cores} s={args.server_cores}")
    else:
        label = (f"fig5 {args.transport}/{args.client} {args.rw} bs={args.bs} "
                 f"jobs={args.jobs} ssds={args.ssds}")
        if args.ledger:
            # Ledger records need wait blame + flame stacks, so this path
            # runs the doctored pipeline (tracer installed from t = 0).
            if args.perfetto or args.json_out or args.telemetry:
                print("error: fig5 --ledger runs the doctored pipeline; "
                      "combine ledger recording with --perfetto via "
                      "'doctor --ledger' instead", file=sys.stderr)
                return 2
            from repro.bench import ledger as lg
            from repro.bench.campaign import code_fingerprint, find_cached
            from repro.bench.runner import run_fig5_doctored

            fingerprint = code_fingerprint()
            probe_spec = FioJobSpec(
                rw=args.rw, bs=args.bs, numjobs=args.jobs,
                iodepth=default_iodepth(args.bs),
                runtime=args.runtime if args.runtime is not None
                else (0.15 if args.bs >= 1024**2 else 0.03))
            config = _fig5_run_config(args.transport, args.client,
                                      probe_spec, args.ssds, args.sample)
            cached = find_cached(config, fingerprint, _ledger_dir(args))
            if cached is not None:
                # Content-addressed hit: same config, same code — the
                # committed record already IS this run's outcome.
                print(f"{label}: cached (run {cached['run_id']}, "
                      f"fingerprint {fingerprint})")
                return 0
            run = run_fig5_doctored(args.transport, args.client, args.rw,
                                    args.bs, args.jobs, n_ssds=args.ssds,
                                    runtime=args.runtime,
                                    sample_every=args.sample,
                                    observe_sampler=False)
            print(f"{label}: {_report(run.result)}")
            config = _fig5_run_config(args.transport, args.client, run.spec,
                                      args.ssds, args.sample)
            record = lg.make_run_record(run.result, run.collector,
                                        run.tracer, config=config,
                                        label=label, kind="fig5",
                                        git_sha=_git_sha(args),
                                        created=_now_iso(),
                                        code_fingerprint=fingerprint)
            path = lg.save_run(record, _ledger_dir(args))
            print(f"ledger: recorded {record['run_id']} -> {path}")
            return 0
        if args.perfetto or args.json_out:
            # Full observability stack: continuous telemetry + tracing.
            run = run_fig5_observed(args.transport, args.client, args.rw,
                                    args.bs, args.jobs, n_ssds=args.ssds,
                                    runtime=args.runtime,
                                    sample_every=args.sample)
            print(f"{label}: {_report(run.result)}")
            if args.perfetto:
                _write_perfetto(args.perfetto, run.collector, run.sampler,
                                label)
            if args.json_out:
                import json

                with open(args.json_out, "w") as fh:
                    json.dump(_fig5_metrics_doc(run, label), fh,
                              indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote metrics {args.json_out}")
            if args.telemetry:
                print("\n" + run.timeline.report.render())
                print("\n" + run.timeline.render())
            return 0
        if args.telemetry:
            # Keep the system around so we can snapshot its utilization.
            from repro.bench.runner import _build_fig5, run_ros2_fio
            from repro.core.telemetry import snapshot

            system, spec = _build_fig5(args.transport, args.client, args.rw,
                                       args.bs, args.jobs, n_ssds=args.ssds,
                                       runtime=args.runtime)
            result = run_ros2_fio(system, spec)
        else:
            system = None
            result = run_fig5_cell(args.transport, args.client, args.rw,
                                   args.bs, args.jobs, n_ssds=args.ssds,
                                   runtime=args.runtime)

    print(f"{label}: {_report(result)}")
    if args.experiment == "fig5" and args.telemetry and system is not None:
        print("\n" + snapshot(system).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
