"""The run ledger: a durable, diffable history of benchmark runs.

Every headline claim in the paper is a *comparison* — DPU vs host, RDMA
vs TCP — so a single run's verdict is only half the story.  The ledger
makes runs first-class artefacts: each ``fig5``/``doctor``/``perf``
invocation can append one ``repro-run-v1`` JSON record to a ledger
directory (``benchmarks/ledger/`` for the committed campaign), and the
differential doctor (:mod:`repro.sim.diffdoctor`) consumes any two
records to explain *why* B beats A.

A record carries everything delta attribution needs, already reduced:

* the run ``config`` (experiment knobs) and its hash;
* the full numeric ``metrics`` flatten (same flattener as the baseline
  gate, so ledger records and baselines speak one metric namespace);
* per-resource ``wait_aggregates`` (every operation since tracer
  install) and sampled-span ``blame`` split into wait/service/latency;
* collapsed flame stacks for both span self-time and wait blame
  (integer nanoseconds — byte-stable);
* optionally the per-resource cumulative-wait series points, so two
  runs' counter tracks can be overlaid in one Perfetto trace.

Run IDs are **content-derived**: a human slug from the config plus the
first hex digits of the record's canonical-JSON hash (volatile fields —
timestamps, git SHA — excluded).  The simulator is deterministic, so
re-recording an unchanged cell reproduces the identical ID and file,
and any code change that moves an outcome shows up as a new ID.  The
git SHA is *passed in* by the caller (the CLI reads it from the
environment or ``git rev-parse``); nothing in here shells out.
"""

from __future__ import annotations

import hashlib
import json
from math import fsum
import os
from typing import Dict, List, Optional

from repro.bench.baseline import flatten_numeric

__all__ = [
    "FORMAT",
    "DEFAULT_LEDGER_DIR",
    "canonical_json",
    "config_hash",
    "config_slug",
    "strip_volatile",
    "make_run_record",
    "make_perf_record",
    "make_cell_record",
    "save_run",
    "load_run",
    "resolve_ref",
    "list_runs",
    "run_summary",
    "flatten_run",
    "series_from_record",
]

FORMAT = "repro-run-v1"

#: Where the committed campaign lives, relative to the repo root.
DEFAULT_LEDGER_DIR = "benchmarks/ledger"

#: Fields excluded from the content hash: they vary between recordings
#: of the *same* outcome (wall time, checkout, source-tree fingerprint)
#: and must not move the ID.  ``code_fingerprint`` is volatile by
#: design — it keys the campaign executor's cache, and including it in
#: the ID would orphan every stable run-ID prefix on each comment edit.
_VOLATILE_FIELDS = ("run_id", "created", "git_sha", "code_fingerprint")


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_hash(config: dict) -> str:
    """Short hex hash identifying a run *configuration* (not its outcome)."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()[:10]


def content_hash(record: dict) -> str:
    """Hash of the record's non-volatile content (defines the run ID)."""
    return hashlib.sha256(
        canonical_json(strip_volatile(record)).encode()).hexdigest()[:10]


def strip_volatile(record: dict) -> dict:
    """The record's identity-bearing content (what the run ID hashes).

    The campaign determinism gate compares records through this view, so
    re-recordings that differ only in wall time / checkout / source
    fingerprint count as identical.
    """
    return {k: v for k, v in record.items() if k not in _VOLATILE_FIELDS}


def config_slug(config: dict) -> str:
    """Human-readable ID prefix from the config's identity fields."""
    parts = [str(config.get(k)) for k in
             ("experiment", "transport", "client", "rw", "bs")
             if config.get(k) is not None]
    if config.get("numjobs") is not None:
        parts.append(f"j{config['numjobs']}")
    if not parts:
        parts = [str(config.get("kind", "run"))]
    return "-".join(p.replace("/", "_").replace(" ", "_") for p in parts)


def _finish_record(record: dict) -> dict:
    record["run_id"] = f"{config_slug(record['config'])}-{content_hash(record)}"
    return record


def _pack_points(ts, cap: int) -> List[list]:
    """Bound and round a cumulative-wait series for storage.

    Pairwise-merges adjacent windows (keeping the later cumulative value,
    which is exact for monotone counters) until at most ``cap`` points
    remain, then rounds to picosecond-ish precision so the JSON stays
    compact.  Deterministic, so records remain byte-stable.
    """
    pts = list(ts.points())
    while len(pts) > cap:
        merged = []
        for i in range(0, len(pts) - 1, 2):
            _, dt1, _ = pts[i]
            t2, dt2, v2 = pts[i + 1]
            merged.append((t2, dt1 + dt2, v2))
        if len(pts) % 2:
            merged.append(pts[-1])
        pts = merged
    return [[round(t, 12), round(dt, 12), round(v, 12)] for t, dt, v in pts]


def make_run_record(
    result,
    collector,
    tracer,
    config: dict,
    label: str = "",
    kind: str = "doctor",
    git_sha: Optional[str] = None,
    created: Optional[str] = None,
    code_fingerprint: Optional[str] = None,
    include_series: bool = True,
    series_points_cap: int = 96,
    extra_sections: Optional[dict] = None,
) -> dict:
    """Reduce an instrumented run into one ``repro-run-v1`` record.

    ``result`` is the :class:`~repro.workload.fio.FioResult`;
    ``collector``/``tracer`` are the span collector and wait tracer that
    observed the run (both required — the ledger exists to feed delta
    attribution, which needs blame and flame data).

    ``extra_sections`` merges additional top-level sections into the
    record (e.g. the chaos harness's recovery/availability verdicts);
    they are content-hashed like everything else, so the determinism
    gate covers them byte-for-byte.
    """
    from repro.sim.flame import fold_spans, fold_waits

    roots = collector.roots()
    total_root = fsum(s.duration for s in roots)
    record = {
        "format": FORMAT,
        "kind": kind,
        "label": label,
        "created": created,
        "git_sha": git_sha,
        "code_fingerprint": code_fingerprint,
        "config": dict(config),
        "config_hash": config_hash(config),
        "metrics": flatten_numeric({"result": result.to_dict()}),
        "traces": {
            "count": len(roots),
            "total_root_time": total_root,
            "mean_latency": (total_root / len(roots)) if roots else 0.0,
            "requests_seen": collector.requests_seen,
            "sample_every": collector.sample_every,
        },
        "wait_aggregates": {name: agg.to_dict()
                            for name, agg in sorted(tracer.aggregates.items())},
        "blame": dict(sorted(tracer.blame_components().items())),
        "flame": {
            "spans": dict(sorted(fold_spans(collector.spans).items())),
            "waits": dict(sorted(
                fold_waits(collector.spans, tracer.records).items())),
        },
    }
    if include_series:
        record["wait_series"] = {
            ts.name: {"unit": ts.unit, "kind": ts.kind,
                      "points": _pack_points(ts, series_points_cap)}
            for ts in tracer.wait_series()
        }
    if extra_sections:
        for key, value in extra_sections.items():
            if key in record:
                raise ValueError(f"extra section {key!r} collides with a "
                                 f"standard record field")
            record[key] = value
    return _finish_record(record)


def make_perf_record(
    doc: dict,
    label: str = "",
    git_sha: Optional[str] = None,
    created: Optional[str] = None,
    code_fingerprint: Optional[str] = None,
) -> dict:
    """A ledger record for a wall-clock perfbench document.

    Perf records carry no spans or blame — they extend the same run
    history with the machine-speed trajectory (``BENCH_perf.json``).
    """
    config = {"kind": "perfbench", "quick": bool(doc.get("quick", False))}
    record = {
        "format": FORMAT,
        "kind": "perf",
        "label": label or doc.get("label", "perfbench"),
        "created": created,
        "git_sha": git_sha,
        "code_fingerprint": code_fingerprint,
        "config": config,
        "config_hash": config_hash(config),
        "metrics": flatten_numeric(
            {k: v for k, v in doc.items() if k not in ("format", "label")}),
    }
    return _finish_record(record)


def make_cell_record(
    result,
    config: dict,
    label: str = "",
    kind: str = "fig3",
    git_sha: Optional[str] = None,
    created: Optional[str] = None,
    code_fingerprint: Optional[str] = None,
) -> dict:
    """A metrics-only record for cells run without the doctor pipeline.

    Fig. 3 / Fig. 4 campaign cells have no ROS2 wait tracer attached, so
    their records carry the config identity and the full metric flatten
    but no blame/flame sections — enough for sweep results, caching, and
    ``runs``, though not for the differential doctor.
    """
    record = {
        "format": FORMAT,
        "kind": kind,
        "label": label,
        "created": created,
        "git_sha": git_sha,
        "code_fingerprint": code_fingerprint,
        "config": dict(config),
        "config_hash": config_hash(config),
        "metrics": flatten_numeric({"result": result.to_dict()}),
    }
    return _finish_record(record)


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

def save_run(record: dict, ledger_dir: str = DEFAULT_LEDGER_DIR) -> str:
    """Append the record to the ledger (one file per run ID)."""
    if record.get("format") != FORMAT:
        raise ValueError(f"not a {FORMAT} record")
    os.makedirs(ledger_dir, exist_ok=True)
    path = os.path.join(ledger_dir, f"{record['run_id']}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _ledger_ids(ledger_dir: str) -> List[str]:
    try:
        names = os.listdir(ledger_dir)
    except OSError:
        return []
    return sorted(n[:-5] for n in names if n.endswith(".json"))


def resolve_ref(ref: str, ledger_dir: str = DEFAULT_LEDGER_DIR) -> str:
    """Resolve a run reference to a file path.

    ``ref`` may be a path to a record file, an exact run ID in
    ``ledger_dir``, or a unique run-ID prefix (so CI can pin the stable
    config slug while the content hash moves with the code).
    """
    if os.path.isfile(ref):
        return ref
    ids = _ledger_ids(ledger_dir)
    if ref in ids:
        return os.path.join(ledger_dir, f"{ref}.json")
    matches = [i for i in ids if i.startswith(ref)]
    if len(matches) == 1:
        return os.path.join(ledger_dir, f"{matches[0]}.json")
    if len(matches) > 1:
        lines = [f"run ref {ref!r} is ambiguous in {ledger_dir} "
                 f"({len(matches)} matches):"]
        for rid in matches:  # ids are sorted, so candidates are too
            try:
                with open(os.path.join(ledger_dir, f"{rid}.json")) as fh:
                    record = json.load(fh)
                detail = f"  {rid}  [{record.get('kind', '?')}]"
            except (OSError, ValueError):
                detail = f"  {rid}"
            lines.append(detail)
        lines.append("give more characters of the ID to disambiguate")
        raise ValueError("\n".join(lines))
    known = ", ".join(ids) if ids else "(ledger empty)"
    raise ValueError(f"no run matching {ref!r} in {ledger_dir}; known: {known}")


def load_run(ref: str, ledger_dir: str = DEFAULT_LEDGER_DIR) -> dict:
    """Load a record by path, run ID, or unique ID prefix."""
    path = resolve_ref(ref, ledger_dir)
    with open(path) as fh:
        record = json.load(fh)
    if record.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} record "
                         f"(format={record.get('format')!r})")
    return record


def list_runs(ledger_dir: str = DEFAULT_LEDGER_DIR) -> List[dict]:
    """All ledger records, sorted by run ID (stable listing order)."""
    return [load_run(i, ledger_dir) for i in _ledger_ids(ledger_dir)]


def run_summary(record: dict) -> dict:
    """The one-line listing view of a record."""
    metrics = record.get("metrics", {})
    return {
        "run_id": record["run_id"],
        "kind": record.get("kind", "?"),
        "label": record.get("label", ""),
        "created": record.get("created"),
        "git_sha": record.get("git_sha"),
        "iops": metrics.get("result.iops"),
        "p99": metrics.get("result.latency.p99"),
    }


def flatten_run(record: dict) -> Dict[str, float]:
    """The record's numeric metric namespace (already flat on disk)."""
    return {k: float(v) for k, v in record.get("metrics", {}).items()}


def series_from_record(record: dict, node: Optional[str] = None) -> list:
    """Reconstruct the stored wait series as live ``TimeSeries`` objects.

    ``node`` overrides the owning node of every series — overlay callers
    pass e.g. ``"A:tcp"`` so each run gets its own Perfetto process
    track and the two runs' counters line up side by side.
    """
    from repro.sim.timeseries import GAUGE, TimeSeries

    out = []
    for name in sorted(record.get("wait_series", {})):
        spec = record["wait_series"][name]
        points = spec.get("points", [])
        # Even capacity strictly above the point count, so appending the
        # stored points never triggers a merge-down (lossless rebuild).
        capacity = max(4, len(points) + 2 + (len(points) % 2))
        ts = TimeSeries(name, capacity=capacity,
                        unit=spec.get("unit", ""),
                        kind=spec.get("kind", GAUGE), node=node)
        for t, dt, v in points:
            ts.append(t, dt, v)
        out.append(ts)
    return out
