"""The paper's reported numbers and shape checks.

Every quantitative claim the evaluation section makes is recorded here as
a band or ratio.  Benches print paper-vs-measured from these; the
integration tests assert them, so calibration drift fails CI rather than
silently producing a different paper.

Units: bytes/second for bandwidth bands, operations/second for IOPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

GIB = 2**30

__all__ = ["ShapeCheck", "PAPER_BANDS", "check_band", "describe_band"]


@dataclass(frozen=True)
class ShapeCheck:
    """One claim from the paper: a value band or a ratio bound."""

    name: str
    lo: float
    hi: float
    source: str  # where in the paper the claim lives
    unit: str = ""

    def holds(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def check_band(bands: Dict[str, ShapeCheck], key: str, value: float) -> bool:
    """Whether ``value`` falls in the named paper band."""
    return bands[key].holds(value)


def describe_band(check: ShapeCheck, value: float) -> str:
    """A paper-vs-measured line for the reports."""
    status = "OK " if check.holds(value) else "OUT"
    return (
        f"[{status}] {check.name}: measured {value:.3g} "
        f"(paper band {check.lo:.3g}..{check.hi:.3g} {check.unit}; {check.source})"
    )


#: Every quantitative band the evaluation text states.  Margins widen the
#: paper's point values by the usual run-to-run spread of FIO numbers.
PAPER_BANDS: Dict[str, ShapeCheck] = {
    # ---- Fig. 3: local io_uring --------------------------------------------
    "fig3.1ssd.read.1mib": ShapeCheck(
        "1 SSD sequential/random read plateau", 5.0 * GIB, 5.8 * GIB,
        "Fig. 3a: reads plateau around ~5-5.6 GiB/s", "B/s"),
    "fig3.1ssd.write.1mib": ShapeCheck(
        "1 SSD write plateau", 2.5 * GIB, 2.9 * GIB,
        "Fig. 3a: writes plateau around ~2.7 GiB/s", "B/s"),
    "fig3.4ssd.read.1mib": ShapeCheck(
        "4 SSD read bandwidth", 19.0 * GIB, 23.0 * GIB,
        "Fig. 3c: reads reach ~20-22 GiB/s", "B/s"),
    "fig3.4ssd.write.1mib": ShapeCheck(
        "4 SSD write bandwidth", 9.8 * GIB, 11.5 * GIB,
        "Fig. 3c: writes ~10.6-10.7 GiB/s", "B/s"),
    "fig3.4k.1job": ShapeCheck(
        "4 KiB IOPS at 1 job", 60e3, 110e3,
        "Fig. 3b/d: ~80 K IOPS at 1 job", "IOPS"),
    "fig3.4k.16job": ShapeCheck(
        "4 KiB IOPS at 16 jobs", 480e3, 720e3,
        "Fig. 3b/d: ~600 K IOPS at 16 jobs", "IOPS"),

    # ---- Fig. 4: remote SPDK -----------------------------------------------
    "fig4.1mib.tcp_vs_rdma_ratio": ShapeCheck(
        "1 MiB TCP/RDMA similarity at >=4 cores", 0.75, 1.1,
        "Fig. 4a/b: similarity indicates a media ceiling", "ratio"),
    "fig4.4k.rdma_vs_tcp_ratio": ShapeCheck(
        "4 KiB RDMA/TCP IOPS advantage at 4 cores", 1.3, 6.0,
        "Fig. 4c/d: RDMA substantially higher IOPS", "ratio"),
    "fig4.4k.rdma_core_scaling": ShapeCheck(
        "RDMA IOPS scaling 1 -> 8 cores", 2.0, 10.0,
        "Fig. 4d: RDMA continues to gain with cores", "ratio"),

    # ---- Fig. 5: end-to-end DFS --------------------------------------------
    "fig5.host.tcp.read.1mib.1ssd": ShapeCheck(
        "host TCP 1 MiB reads, 1 SSD", 4.8 * GIB, 6.2 * GIB,
        "Fig. 5a top: TCP reaches ~5-6 GiB/s with one SSD", "B/s"),
    "fig5.host.tcp.read.1mib.4ssd": ShapeCheck(
        "host TCP 1 MiB reads, 4 SSDs", 9.0 * GIB, 11.0 * GIB,
        "Fig. 5a top: ~10 GiB/s with four SSDs", "B/s"),
    "fig5.host.tcp.4k": ShapeCheck(
        "host TCP 4 KiB IOPS", 0.4e6, 0.65e6,
        "Fig. 5c top: scales to ~0.4-0.6 M IOPS", "IOPS"),
    "fig5.dpu.tcp.read.1mib.1ssd": ShapeCheck(
        "DPU TCP 1 MiB reads cap (RX bottleneck)", 1.6 * GIB, 3.1 * GIB,
        "Fig. 5a bottom: reads cap at ~1.6-3.1 GiB/s", "B/s"),
    "fig5.dpu.tcp.write.1mib.4ssd": ShapeCheck(
        "DPU TCP 1 MiB writes, 4 SSDs (TX fine)", 8.5 * GIB, 11.0 * GIB,
        "Fig. 5a bottom: writes can still approach ~10 GiB/s", "B/s"),
    "fig5.dpu.tcp.4k": ShapeCheck(
        "DPU TCP 4 KiB IOPS cap", 0.15e6, 0.26e6,
        "Fig. 5c bottom: tops out near ~0.18-0.23 M IOPS", "IOPS"),
    "fig5.rdma.read.1mib.1ssd": ShapeCheck(
        "RDMA 1 MiB reads, 1 SSD (host == DPU)", 6.0 * GIB, 6.8 * GIB,
        "Fig. 5b: ~6.4 GiB/s for both host and DPU", "B/s"),
    "fig5.rdma.1mib.4ssd": ShapeCheck(
        "RDMA 1 MiB, 4 SSDs (link-limited)", 9.8 * GIB, 11.2 * GIB,
        "Fig. 5b: ~10-11 GiB/s", "B/s"),
    "fig5.dpu_rdma_vs_host_ratio.4k": ShapeCheck(
        "DPU/host RDMA 4 KiB IOPS ratio", 0.55, 0.85,
        "Fig. 5d: DPU trails the host by roughly 20-40%", "ratio"),
    "fig5.dpu_rdma_vs_dpu_tcp.4k": ShapeCheck(
        "DPU RDMA / DPU TCP 4 KiB IOPS ratio", 1.7, 4.0,
        "Fig. 5d: often 2x or more over DPU TCP", "ratio"),
    "fig5.dpu_rdma_vs_host_ratio.1mib": ShapeCheck(
        "DPU/host RDMA 1 MiB bandwidth ratio", 0.9, 1.1,
        "Takeaway (i): offload is performance-equivalent at large blocks",
        "ratio"),
}
