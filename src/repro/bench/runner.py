"""Experiment builders: one function per paper-figure cell.

Each call constructs a *fresh* simulated testbed, runs the FIO spec, and
returns the measured :class:`~repro.workload.fio.FioResult` — cells of a
sweep are completely independent, like separate runs on the physical
testbed.

* :func:`run_fig3_cell` — local FIO / io_uring device baselines (Fig. 3).
* :func:`run_fig4_cell` — remote SPDK NVMe-oF, TCP vs RDMA, pinned core
  counts on both ends (Fig. 4).
* :func:`run_fig5_cell` — end-to-end ROS2/DFS, host vs DPU client (Fig. 5).
* :func:`run_ros2_fio` — the generic ROS2 runner the Fig. 5 cells and the
  ablation benches share (system bootstrap, file creation, pre-fill for
  reads, FIO drive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core import Ros2Config, Ros2System
from repro.hw.platform import make_paper_testbed
from repro.hw.specs import MIB
from repro.net import Fabric
from repro.sim import Environment, Sampler, SpanCollector
from repro.storage import BlockDevice, IoUringEngine, NvmfInitiator, NvmfTarget
from repro.workload.fio import FioJobSpec, FioResult, run_fio

__all__ = [
    "run_fig3_cell",
    "run_fig4_cell",
    "run_fig5_cell",
    "run_fig5_traced",
    "run_fig5_observed",
    "run_fig5_doctored",
    "run_fig5_chaos",
    "doctor_stations",
    "ObservedRun",
    "DoctoredRun",
    "ChaosRun",
    "run_ros2_fio",
    "default_iodepth",
]


def default_iodepth(bs: int) -> int:
    """The queue depths the paper's FIO configurations imply: deep queues
    for small blocks (IOPS tests), shallow for streaming."""
    return 16 if bs < 64 * 1024 else 8


def _seed_kwargs(seed: Optional[int]) -> dict:
    """Per-cell RNG override, leaving the FioJobSpec default in one place.

    The campaign executor derives a seed from the cell key (``"seed":
    "auto"``), so a cell's offset streams depend only on its config —
    never on which worker ran it or in what order.
    """
    return {} if seed is None else {"seed": int(seed)}


# ---------------------------------------------------------------------------
# Fig. 3 — local io_uring
# ---------------------------------------------------------------------------

def run_fig3_cell(
    rw: str,
    bs: int,
    numjobs: int,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: float = 0.03,
    collector: Optional[SpanCollector] = None,
    seed: Optional[int] = None,
) -> FioResult:
    """One point of Fig. 3: local FIO with the IO_URING engine."""
    env = Environment()
    top = make_paper_testbed(env, client="host", n_ssds=n_ssds)
    engine = IoUringEngine(top.server, BlockDevice(top.server.nvme))
    spec = FioJobSpec(
        rw=rw, bs=bs, numjobs=numjobs,
        iodepth=iodepth or default_iodepth(bs),
        runtime=runtime, ramp_time=runtime / 4,
        size=512 * MIB,
        **_seed_kwargs(seed),
    )
    return run_fio(env, engine, spec, collector=collector)


# ---------------------------------------------------------------------------
# Fig. 4 — remote SPDK NVMe-oF
# ---------------------------------------------------------------------------

class _MultiQpAdapter:
    """SPDK-style one-qpair-per-core: contexts round-robin over initiators."""

    def __init__(self, initiators) -> None:
        self.initiators = list(initiators)
        self._next = 0
        self._owner = {}

    def new_context(self, name=None):
        init = self.initiators[self._next % len(self.initiators)]
        self._next += 1
        ctx = init.new_context(name)
        self._owner[id(ctx)] = init
        return ctx

    def submit(self, ctx, offset, nbytes, is_write, trace=None):
        return self._owner[id(ctx)].submit(ctx, offset, nbytes, is_write,
                                           trace=trace)


def run_fig4_cell(
    provider: str,
    rw: str,
    bs: int,
    client_cores: int,
    server_cores: int,
    n_ssds: int = 1,
    iodepth: int = 32,
    runtime: float = 0.03,
    collector: Optional[SpanCollector] = None,
    seed: Optional[int] = None,
) -> FioResult:
    """One heatmap cell of Fig. 4: remote SPDK, pinned core counts.

    One NVMe-oF qpair (channel + initiator) per client core, one FIO job
    per core, ``iodepth`` commands in flight per qpair — the standard
    ``spdk_nvme_perf`` shape.
    """
    env = Environment()
    top = make_paper_testbed(
        env, client="host", n_ssds=n_ssds,
        client_cores=client_cores, server_cores=server_cores,
    )
    fabric = Fabric(env)
    device = BlockDevice(top.server.nvme)
    target = NvmfTarget(top.server, device)
    initiators = []
    for _ in range(client_cores):
        ch = fabric.connect(top.client, top.server, provider)
        target.serve(ch)
        initiators.append(NvmfInitiator(top.client, ch).start())
    adapter = _MultiQpAdapter(initiators)
    spec = FioJobSpec(
        rw=rw, bs=bs, numjobs=client_cores, iodepth=iodepth,
        runtime=runtime, ramp_time=runtime / 4, size=512 * MIB,
        **_seed_kwargs(seed),
    )
    return run_fio(env, adapter, spec, collector=collector)


# ---------------------------------------------------------------------------
# Fig. 5 — end-to-end ROS2 / DFS
# ---------------------------------------------------------------------------

class _MultiSessionAdapter:
    """One ROS2 session (own channel/PD/QP/TCP connection) per FIO job.

    FIO's DFS engine forks one process per job, each with its own DAOS
    client context and hence its own fabric connection — which is what
    lets host TCP aggregate past the single-stream ceiling on 4 SSDs.
    """

    def __init__(self, ports_and_fhs) -> None:
        self._ports = list(ports_and_fhs)  # [(port, fh), ...]
        self._next = 0
        self._owner = {}

    def new_context(self, name=None):
        port, fh = self._ports[self._next % len(self._ports)]
        self._next += 1
        ctx = port.new_context(name)
        self._owner[id(ctx)] = (port, fh)
        return ctx

    def submit(self, ctx, offset, nbytes, is_write, trace=None):
        port, fh = self._owner[id(ctx)]
        if is_write:
            return port.write(ctx, fh, offset, nbytes=nbytes, trace=trace)
        return port.read(ctx, fh, offset, nbytes, trace=trace)


def run_ros2_fio(
    system: Ros2System,
    spec: FioJobSpec,
    path: str = "/bench/fio.dat",
    prefill: Optional[bool] = None,
    tenant_policy: Optional[dict] = None,
    sessions_per_job: bool = True,
    collector: Optional[SpanCollector] = None,
) -> FioResult:
    """Bootstrap ``system``, create the test file, pre-fill it for read
    workloads, and drive ``spec`` through ROS2 data ports.

    ``sessions_per_job=True`` mirrors FIO's one-process-per-job DFS
    engine: every job gets its own session (channel, PD/QP or TCP
    connection); with False all jobs share one session."""
    env = system.env
    token = system.register_tenant("fio", **(tenant_policy or {}))
    if prefill is None:
        prefill = not spec.is_write
    span = spec.numjobs * spec.size
    n_sessions = spec.numjobs if sessions_per_job else 1

    def setup(env):
        yield from system.start()
        first = yield from system.open_session(token)
        parent = path.rsplit("/", 1)[0]
        if parent:
            yield from first.mkdir(parent)
        fh0 = yield from first.create(path)
        ports = [(first.data_port(), fh0)]
        for _ in range(n_sessions - 1):
            s = yield from system.open_session(token)
            fh = yield from s.open(path)
            ports.append((s.data_port(), fh))
        if prefill:
            # Lay the file out in whole chunks so reads hit real extents,
            # 32 writers wide (setup time, excluded from measurement).
            port0 = ports[0][0]
            ctx_pool = [port0.new_context(f"prefill{i}") for i in range(32)]
            chunk = MIB
            offsets = list(range(0, span, chunk))

            def writer(env, ctx, start_idx):
                for i in range(start_idx, len(offsets), len(ctx_pool)):
                    yield from port0.write(ctx, fh0, offsets[i], nbytes=chunk)

            writers = [
                env.process(writer(env, ctx, i)) for i, ctx in enumerate(ctx_pool)
            ]
            yield env.all_of(writers)
        return ports

    p = env.process(setup(env))
    env.run(until=p)
    ports = p.value
    adapter = _MultiSessionAdapter(ports)
    return run_fio(env, adapter, spec, collector=collector)


def _build_fig5(
    provider: str,
    client: str,
    rw: str,
    bs: int,
    numjobs: int,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: Optional[float] = None,
    seed: Optional[int] = None,
    n_targets: Optional[int] = None,
    tie_seed: Optional[int] = None,
    fault_plan=None,
) -> Tuple[Ros2System, FioJobSpec]:
    """Assemble the Fig. 5 testbed (fresh environment) and its FIO spec.

    ``tie_seed`` puts the kernel in race-sanitizer mode: same-time,
    same-priority events pop in a seeded pseudo-random permutation
    instead of FIFO (see :func:`repro.sim.core.tie_scramble`).

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) is installed
    *before* the system is built so every channel, engine and node
    self-registers with the injector; :func:`~repro.workload.fio.run_fio`
    arms it when the measured window opens.
    """
    env = Environment(tie_seed=tie_seed)
    if fault_plan is not None:
        fault_plan.install(env)
    system = Ros2System(env, Ros2Config(
        transport=provider, client=client, n_ssds=n_ssds,
        n_targets=n_targets, data_mode=False,
    ))
    if runtime is None:
        runtime = 0.15 if bs >= MIB else 0.03
    size = 64 * MIB if bs >= MIB else 48 * MIB
    spec = FioJobSpec(
        rw=rw, bs=bs, numjobs=numjobs,
        iodepth=iodepth or default_iodepth(bs),
        runtime=runtime, ramp_time=runtime / 3, size=size,
        **_seed_kwargs(seed),
    )
    return system, spec


def run_fig5_cell(
    provider: str,
    client: str,
    rw: str,
    bs: int,
    numjobs: int,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: Optional[float] = None,
    collector: Optional[SpanCollector] = None,
    seed: Optional[int] = None,
    n_targets: Optional[int] = None,
) -> FioResult:
    """One point of Fig. 5: FIO/DFS end-to-end on the assembled ROS2 stack.

    Large-block runs need a longer measured window: under the DPU's deep
    RX queues, per-I/O latency reaches milliseconds and a too-short window
    under-reports steady-state throughput.
    """
    system, spec = _build_fig5(provider, client, rw, bs, numjobs,
                               n_ssds=n_ssds, iodepth=iodepth, runtime=runtime,
                               seed=seed, n_targets=n_targets)
    return run_ros2_fio(system, spec, collector=collector)


def run_fig5_traced(
    provider: str,
    client: str,
    rw: str,
    bs: int,
    numjobs: int,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: Optional[float] = None,
    sample_every: int = 1,
    seed: Optional[int] = None,
) -> Tuple[FioResult, SpanCollector, Ros2System]:
    """A Fig. 5 cell with request tracing attached.

    Returns ``(result, collector, system)`` so the caller can render the
    per-stage latency breakdown, extract critical paths, and snapshot the
    system telemetry of the very run that produced the numbers.
    """
    system, spec = _build_fig5(provider, client, rw, bs, numjobs,
                               n_ssds=n_ssds, iodepth=iodepth, runtime=runtime,
                               seed=seed)
    collector = SpanCollector(system.env, sample_every=sample_every)
    result = run_ros2_fio(system, spec, collector=collector)
    return result, collector, system


@dataclass
class ObservedRun:
    """Everything a fully-instrumented Fig. 5 cell produces.

    ``timeline`` is the :class:`~repro.core.telemetry.SystemTimeline`
    (snapshot + sampled series + phase attribution); ``collector`` holds
    the sampled request spans; both feed the Perfetto exporter.
    """

    result: FioResult
    collector: Optional[SpanCollector]
    sampler: Sampler
    timeline: "object"  # SystemTimeline (avoid a bench->core type cycle here)
    system: Ros2System
    spec: FioJobSpec


def run_fig5_observed(
    provider: str,
    client: str,
    rw: str,
    bs: int,
    numjobs: int,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: Optional[float] = None,
    sample_every: Optional[int] = 20,
    sample_interval: Optional[float] = None,
    drain: Optional[float] = None,
    seed: Optional[int] = None,
) -> ObservedRun:
    """A Fig. 5 cell with the full observability stack attached.

    Continuous telemetry (the standard probe set) samples from *t = 0*,
    so the timeline covers setup/prefill (warmup), the measured window
    (steady state), and — after the FIO stop flag — a ``drain`` window in
    which in-flight operations complete and queues empty.  Request spans
    are sampled 1-in-``sample_every`` (``None`` disables tracing).

    ``sample_interval`` defaults to 1/400 of the measured FIO window, a
    resolution at which the Little's-law self-check holds within a few
    percent while the bounded series still cover multi-second runs.
    """
    from repro.core.telemetry import SystemTimeline, observe, snapshot

    system, spec = _build_fig5(provider, client, rw, bs, numjobs,
                               n_ssds=n_ssds, iodepth=iodepth, runtime=runtime,
                               seed=seed)
    if sample_interval is None:
        sample_interval = (spec.ramp_time + spec.runtime) / 400.0
    sampler = observe(system, interval=sample_interval)
    collector = (SpanCollector(system.env, sample_every=sample_every)
                 if sample_every else None)
    result = run_ros2_fio(system, spec, collector=collector)
    t_end = system.env.now
    if drain is None:
        drain = spec.runtime * 0.25
    if drain > 0:
        system.env.run(until=t_end + drain)
    sampler.stop()
    timeline = SystemTimeline(snapshot(system), sampler)
    timeline.set_phases(warmup_end=t_end - spec.runtime, steady_end=t_end)
    return ObservedRun(result=result, collector=collector, sampler=sampler,
                       timeline=timeline, system=system, spec=spec)


def doctor_stations(system: Ros2System) -> list:
    """Independently-counted station occupancies for the utilization law.

    Walks the same servers :func:`repro.core.telemetry.install_probes`
    probes and reads each one's own ``busy_time`` counter.  Stations that
    share a blame name (the BF3 Arm RX core pool and the ``tcp_stack``
    serialized section both report as ``dpu.arm_rx``) are summed into one
    record — matching how the wait tracer aggregates them — so the
    cross-check compares like with like.
    """
    from repro.sim.doctor import Station

    acc: dict = {}

    def add(name, busy, capacity=1):
        if name is None:
            return
        rec = acc.get(name)
        if rec is None:
            acc[name] = [float(busy), int(capacity)]
        else:
            rec[0] += float(busy)
            rec[1] += int(capacity)

    seen = set()
    for node in [system.client_node, system.server_node, system.launcher_node]:
        if node.name in seen:
            continue
        seen.add(node.name)
        add(node.cpu.name, node.cpu.busy_time, node.cpu.n_cores)
        rx = node.tcp_rx_cpu
        add(rx.name, rx.busy_time, rx.n_cores)
        node.lock("tcp_stack")
        for sec in node._locks.values():
            add(sec._server.name, sec.busy_time, 1)
        port = getattr(node, "port", None)
        if port is not None:
            add(port.tx.name, port.tx.busy_time, 1)
            add(port.rx.name, port.rx.busy_time, 1)
    for dev in system.server_node.nvme.devices:
        add(f"nvme.ssd{dev.index}", dev.busy_time, 1)
    for target in system.engine.targets:
        xs = target.xstream
        add(xs.name, xs.busy_time, 1)
    return [Station(name=n, busy_time=b, capacity=c)
            for n, (b, c) in sorted(acc.items())]


@dataclass
class DoctoredRun:
    """A fully-diagnosed Fig. 5 cell: measurements plus the doctor's inputs.

    ``tracer`` holds the wait-cause records (installed at *t = 0*, before
    prefill, so its per-resource service aggregates cover the exact same
    window as each station's ``busy_time`` counter); ``stations`` is the
    :func:`doctor_stations` walk taken after the run.
    """

    result: FioResult
    collector: SpanCollector
    tracer: "object"  # WaitTracer (avoid a bench->sim.waits type cycle here)
    sampler: Optional[Sampler]
    stations: list
    system: Ros2System
    spec: FioJobSpec


def run_fig5_doctored(
    provider: str,
    client: str,
    rw: str,
    bs: int,
    numjobs: int,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: Optional[float] = None,
    sample_every: int = 20,
    observe_sampler: bool = True,
    seed: Optional[int] = None,
    n_targets: Optional[int] = None,
    tie_seed: Optional[int] = None,
    fault_plan=None,
) -> DoctoredRun:
    """A Fig. 5 cell instrumented for the bottleneck doctor.

    Installs a :class:`~repro.sim.waits.WaitTracer` before anything runs
    (so tracer aggregates and station busy counters see identical
    windows), records per-operation latency for the SLO gates, and
    optionally attaches the standard sampler so Little's law can be
    checked too (``observe_sampler=False`` skips it for quick CI runs).
    """
    import dataclasses

    from repro.sim.waits import WaitTracer

    system, spec = _build_fig5(provider, client, rw, bs, numjobs,
                               n_ssds=n_ssds, iodepth=iodepth, runtime=runtime,
                               seed=seed, n_targets=n_targets,
                               tie_seed=tie_seed, fault_plan=fault_plan)
    spec = dataclasses.replace(spec, record_latency=True)
    tracer = WaitTracer(system.env)
    tracer.install()
    sampler = None
    if observe_sampler:
        from repro.core.telemetry import observe

        sampler = observe(system,
                          interval=(spec.ramp_time + spec.runtime) / 400.0)
    collector = SpanCollector(system.env, sample_every=sample_every)
    result = run_ros2_fio(system, spec, collector=collector)
    if sampler is not None:
        sampler.stop()
    stations = doctor_stations(system)
    return DoctoredRun(result=result, collector=collector, tracer=tracer,
                       sampler=sampler, stations=stations, system=system,
                       spec=spec)


# ---------------------------------------------------------------------------
# Chaos — Fig. 5 cells under a fault plan
# ---------------------------------------------------------------------------

@dataclass
class ChaosRun:
    """A doctored Fig. 5 cell run under fault injection, fully drained.

    ``stats`` is the injector's :class:`~repro.faults.plan.FaultStats`
    after every lane exited, so conservation (``submitted == completed +
    failed``) holds by construction if no operation was lost.
    """

    run: DoctoredRun
    plan: "object"   # FaultPlan (avoid a bench->faults type cycle here)
    stats: "object"  # FaultStats


def run_fig5_chaos(
    provider: str,
    client: str,
    rw: str,
    bs: int,
    numjobs: int,
    fault_plan,
    n_ssds: int = 1,
    iodepth: Optional[int] = None,
    runtime: Optional[float] = None,
    sample_every: int = 20,
    seed: Optional[int] = None,
    n_targets: Optional[int] = None,
    tie_seed: Optional[int] = None,
) -> ChaosRun:
    """A Fig. 5 cell with a :class:`~repro.faults.plan.FaultPlan` active.

    Exactly :func:`run_fig5_doctored` plus: the plan is installed before
    the system is built, and after FIO raises its stop flag the event
    heap is drained *to empty* so every in-flight operation — including
    ones mid-retry-backoff — either completes or fails.  That makes the
    conservation check exact rather than a race against a drain window.
    """
    run = run_fig5_doctored(
        provider, client, rw, bs, numjobs,
        n_ssds=n_ssds, iodepth=iodepth, runtime=runtime,
        sample_every=sample_every, observe_sampler=False,
        seed=seed, n_targets=n_targets, tie_seed=tie_seed,
        fault_plan=fault_plan,
    )
    env = run.system.env
    # Drain: lanes saw the stop flag but may be parked in backoff sleeps
    # or deadline waits; servers park on empty stores (no heap entries),
    # so running the heap dry terminates and settles every lane.
    env.run()
    fx = env._faults
    fx.stats.degraded_reads = run.system.engine.degraded_reads
    return ChaosRun(run=run, plan=fault_plan, stats=fx.stats)
