"""Wall-clock performance harness for the simulation kernel (BENCH seed).

The simulator's *outcomes* are pinned bit-exactly by the fig. 5 CI
baseline; this module pins how *fast* those outcomes are produced.  It
measures three layers:

* **Kernel** — raw event dispatch rate of the heap/generator core
  (events per wall-second on a timeout ping-pong with no model code).
* **Pipe** — simulated MiB moved per wall-second through a
  :class:`~repro.sim.queues.BandwidthPipe`, coalesced vs. the classic
  chunk-per-event reference, plus kernel events per 1 MiB transfer —
  the direct measurement behind the "≥4× fewer events per uncontended
  1 MiB IO" claim (observed: chunked ≈ tens of events, coalesced ≈ a
  handful, independent of payload size).
* **Fig. 5 cells** — end-to-end wall-clock of small fig. 5 CI cells
  (warmup + repeated runs, min taken), with
  :attr:`~repro.sim.core.Environment.events_processed` and events/IO
  recorded for each.
* **Campaign** — the parallel campaign executor
  (:mod:`repro.bench.campaign`) on a small fig. 5 grid: serial vs
  ``--jobs N`` wall-clock, the fully-cached re-run, and a byte-identity
  census of the serial and parallel ledgers.  Parallel speedup is
  hardware-dependent (a 1-core container shows ~1x); the cached re-run
  and the mismatch count are the machine-independent signals.

Methodology: every sample is min-of-``repeat`` with ``warmup`` discarded
runs and a ``gc.collect()`` before each timed run.  Min (not mean) is
the standard wall-clock estimator for a deterministic workload — all
variance is machine noise, so the minimum is the least-noisy sample.
Cross-machine numbers are *not* comparable; regression gating
(:func:`check_against_baseline`) therefore uses a generous relative
threshold (default 30%) on rate metrics and treats the deterministic
event counts as the precise signal.

Output is a ``repro-perfbench-v1`` JSON document (``BENCH_perf.json`` at
the repo root records one full run together with the pre-optimisation
reference numbers).  CLI::

    python -m repro.bench.cli perf --quick          # CI smoke (~seconds)
    python -m repro.bench.cli perf --out BENCH_perf.json
    python -m repro.bench.cli perf --quick --check benchmarks/baselines/perf_smoke.json
"""

from __future__ import annotations

import gc
import json
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.hw.specs import MIB
from repro.sim.core import Environment
from repro.sim.queues import BandwidthPipe

__all__ = [
    "bench_kernel",
    "bench_pipe",
    "bench_fig5_cells",
    "bench_campaign",
    "run_perfbench",
    "check_against_baseline",
    "FIG5_CELLS",
    "QUICK_FIG5_CELLS",
    "SEED_REFERENCE",
]

FORMAT = "repro-perfbench-v1"

#: The fig. 5 CI cells the harness times: tag -> (provider, client, rw,
#: bs, numjobs, runtime).  Small enough to repeat, big enough that the
#: kernel (not interpreter startup) dominates.
FIG5_CELLS: Dict[str, Tuple[str, str, str, int, int, float]] = {
    "tcp_j4_r15": ("tcp", "dpu", "read", MIB, 4, 0.15),
    "tcp_j1_r15": ("tcp", "dpu", "read", MIB, 1, 0.15),
    "tcp_j1_r05": ("tcp", "dpu", "read", MIB, 1, 0.05),
    "tcp_w_j4_r15": ("tcp", "dpu", "write", MIB, 4, 0.15),
}

#: The subset CI runs (fast, single-job).
QUICK_FIG5_CELLS = ("tcp_j1_r05",)

#: Pre-optimisation wall-clock of the same cells on the machine that
#: recorded BENCH_perf.json (min of repeated paired A/B runs against the
#: seed tree).  Embedded so the document carries its own before/after
#: story; *not* used for gating (wall-clock is machine-specific).
SEED_REFERENCE = {
    "methodology": (
        "paired A/B against the seed tree on one machine; per cell: "
        "2 warmup runs, then min over >=5 timed runs per round, min "
        "across rounds; gc.collect() before each timed run"
    ),
    "fig5_wall_s": {
        "tcp_j4_r15": 0.1914,
        "tcp_j1_r15": 0.1230,
        "tcp_j1_r05": 0.0555,
        "tcp_w_j4_r15": 0.1563,
    },
    "events_per_uncontended_1mib_transfer": 17.0,  # 16 chunk serves + tail
}

#: Pointer into the run ledger: where the durable run history lives and
#: which committed reference campaign ``compare-runs`` diffs against.
#: Carried in every perfbench document so ``BENCH_perf.json`` records
#: the trajectory even after regeneration.
TRAJECTORY = {
    "ledger_dir": "benchmarks/ledger",
    "reference_campaign": "fig5-2026-08 (tcp/rdma x 4KiB/1MiB, dpu client)",
    "compare": "python -m repro.bench.cli compare-runs "
               "fig5-tcp-dpu-randread-4096 fig5-rdma-dpu-randread-4096",
}


def _min_wall(fn: Callable[[], object], repeat: int, warmup: int
              ) -> Tuple[float, object]:
    """Min wall-clock over ``repeat`` timed runs after ``warmup`` runs."""
    result = None
    for _ in range(max(0, warmup)):
        result = fn()
    best = float("inf")
    for _ in range(max(1, repeat)):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


# ---------------------------------------------------------------------------
# Layer 1 — kernel event dispatch
# ---------------------------------------------------------------------------

def bench_kernel(n_events: int = 200_000, repeat: int = 3, warmup: int = 1
                 ) -> dict:
    """Raw dispatch rate: ``n_events`` zero-work timeouts through the heap.

    Two interleaved processes yield timeouts so both the recycled-
    :class:`~repro.sim.core.Timeout` fast path and process resumption are
    on the measured path — the same shape as model code hot loops.
    """
    counters = {}

    def once():
        env = Environment()

        def ticker(env, period):
            while True:
                yield env.timeout(period)

        env.process(ticker(env, 1.0))
        env.process(ticker(env, 1.5))
        # Each ticker contributes ~until/period events; pick `until` so the
        # total is ~n_events.
        until = n_events / (1 / 1.0 + 1 / 1.5)
        env.run(until=until)
        counters["events"] = env.events_processed
        counters["recycled"] = env.timeouts_recycled
        return env

    wall, _ = _min_wall(once, repeat, warmup)
    events = counters["events"]
    return {
        "n_events": events,
        "timeouts_recycled": counters["recycled"],
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# Layer 2 — bandwidth pipe, coalesced vs chunked reference
# ---------------------------------------------------------------------------

def bench_pipe(total_bytes: int = 512 * MIB, transfer_bytes: int = MIB,
               repeat: int = 3, warmup: int = 1) -> dict:
    """Uncontended sequential transfers through one pipe, both modes.

    Returns per-mode wall time, simulated MiB per wall-second, and kernel
    events per transfer — the coalescing win in its purest form.
    """
    n_transfers = max(1, total_bytes // transfer_bytes)

    def run_mode(coalesce: bool):
        counters = {}

        def once():
            env = Environment()
            pipe = BandwidthPipe(env, bandwidth=10e9, latency=1e-6,
                                 coalesce=coalesce)

            def mover(env):
                for _ in range(n_transfers):
                    yield from pipe.transfer(transfer_bytes)

            p = env.process(mover(env))
            env.run(until=p)
            counters["events"] = env.events_processed
            counters["coalesced_ops"] = pipe.coalesced_ops
            counters["bytes_moved"] = pipe.bytes_moved
            return env

        wall, _ = _min_wall(once, repeat, warmup)
        sim_mib = n_transfers * transfer_bytes / MIB
        return {
            "wall_s": wall,
            "sim_mib": sim_mib,
            "sim_mib_per_wall_sec": sim_mib / wall if wall > 0 else 0.0,
            "events": counters["events"],
            "events_per_transfer": counters["events"] / n_transfers,
            "coalesced_ops": counters["coalesced_ops"],
            "bytes_moved": counters["bytes_moved"],
        }

    coalesced = run_mode(True)
    chunked = run_mode(False)
    ratio = (chunked["events_per_transfer"] / coalesced["events_per_transfer"]
             if coalesced["events_per_transfer"] else 0.0)
    return {
        "transfer_bytes": transfer_bytes,
        "n_transfers": n_transfers,
        "coalesced": coalesced,
        "chunked": chunked,
        "event_reduction_x": ratio,
    }


# ---------------------------------------------------------------------------
# Layer 3 — fig. 5 CI cells, end to end
# ---------------------------------------------------------------------------

def bench_fig5_cells(cells: Optional[Dict[str, tuple]] = None,
                     repeat: int = 3, warmup: int = 1) -> dict:
    """Wall-clock + event census of small fig. 5 cells.

    Uses the same builders as ``cli fig5`` (fresh environment per run) so
    the number is exactly "how long one CI cell takes".  Events/IO uses
    the *total* dispatched events over total completed IOs — it includes
    setup and prefill, so it is an upper bound on the steady-state cost.
    """
    from repro.bench.runner import _build_fig5, run_ros2_fio

    cells = FIG5_CELLS if cells is None else cells
    out = {}
    for tag, (prov, client, rw, bs, jobs, runtime) in cells.items():
        stats: Dict[str, float] = {}

        def once(prov=prov, client=client, rw=rw, bs=bs, jobs=jobs,
                 runtime=runtime, stats=stats):
            system, spec = _build_fig5(prov, client, rw, bs, jobs,
                                       n_ssds=1, runtime=runtime)
            result = run_ros2_fio(system, spec)
            stats["events"] = system.env.events_processed
            stats["recycled"] = system.env.timeouts_recycled
            stats["total_ios"] = result.total_ios
            return result

        wall, _ = _min_wall(once, repeat, warmup)
        ios = stats["total_ios"]
        out[tag] = {
            "spec": {"provider": prov, "client": client, "rw": rw,
                     "bs": bs, "numjobs": jobs, "runtime": runtime},
            "wall_s": wall,
            "total_ios": ios,
            "events_processed": stats["events"],
            "timeouts_recycled": stats["recycled"],
            "events_per_io": stats["events"] / ios if ios else 0.0,
            "ios_per_wall_sec": ios / wall if wall > 0 else 0.0,
        }
    return out


# ---------------------------------------------------------------------------
# Layer 4 — campaign executor (parallel + cache)
# ---------------------------------------------------------------------------

def bench_campaign(jobs: int = 4, quick: bool = False, repeat: int = 3,
                   warmup: int = 0) -> dict:
    """Campaign executor: serial vs parallel vs fully-cached wall-clock.

    Runs one small fig. 5 grid three ways into throwaway ledgers:

    1. serial (``jobs=1``, cache bypassed),
    2. parallel (``jobs=jobs``, cache bypassed),
    3. cached (re-run over the serial ledger — every cell should hit).

    Both volatile stamps are pinned so the serial and parallel ledgers
    must be **byte-identical**; ``records_mismatched`` counts files that
    differ or exist on only one side (0 is the only acceptable value —
    it is the determinism contract of :func:`repro.bench.campaign.run_campaign`).
    ``parallel_speedup_x`` is reported but *not* gated: it only exceeds
    1x when real cores are available (``cpu_count`` is recorded next to
    it so readers can judge).  The cached re-run is pure ledger-scan
    overhead, so ``cached_cells_per_sec`` is a stable, gateable rate.
    """
    import os
    import tempfile

    from repro.bench import campaign as cp

    grid: Dict[str, list] = {"transport": ["tcp", "rdma"], "numjobs": [1, 2]}
    if not quick:
        grid["rw"] = ["randread", "randwrite"]
    spec = {
        "format": cp.FORMAT,
        "name": "perfbench",
        "experiment": "fig5",
        "defaults": {"bs": "4k", "runtime": 0.02, "quick": True},
        "grid": grid,
    }
    n_cells = len(cp.expand_spec(spec))
    # Pinned volatile stamps: byte-identity between the serial and the
    # parallel ledger is then exact file equality, no stripping needed.
    stamp = {"git_sha": "perfbench", "created": "1970-01-01T00:00:00Z"}

    with tempfile.TemporaryDirectory(prefix="perfbench-campaign-") as tmp:
        serial_dir = os.path.join(tmp, "serial")
        parallel_dir = os.path.join(tmp, "parallel")

        gc.collect()
        t0 = time.perf_counter()
        serial = cp.run_campaign(spec, jobs=1, ledger_dir=serial_dir,
                                 force=True, **stamp)
        serial_wall = time.perf_counter() - t0

        gc.collect()
        t0 = time.perf_counter()
        parallel = cp.run_campaign(spec, jobs=jobs, ledger_dir=parallel_dir,
                                   force=True, **stamp)
        parallel_wall = time.perf_counter() - t0

        names = sorted(set(os.listdir(serial_dir)) | set(os.listdir(parallel_dir)))
        mismatched = 0
        for name in names:
            a, b = os.path.join(serial_dir, name), os.path.join(parallel_dir, name)
            if not (os.path.exists(a) and os.path.exists(b)):
                mismatched += 1
                continue
            with open(a, "rb") as fa, open(b, "rb") as fb:
                if fa.read() != fb.read():
                    mismatched += 1

        cache_hits = {}

        def cached_once():
            result = cp.run_campaign(spec, jobs=1, ledger_dir=serial_dir,
                                     **stamp)
            cache_hits["n"] = result.counts().get("cached", 0)
            return result

        cached_wall, _ = _min_wall(cached_once, repeat, warmup)

    return {
        "jobs": jobs,
        "n_cells": n_cells,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "parallel_speedup_x":
            serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "cached_wall_s": cached_wall,
        "cached_speedup_x":
            serial_wall / cached_wall if cached_wall > 0 else 0.0,
        "serial_cells_per_sec": n_cells / serial_wall if serial_wall > 0 else 0.0,
        "cached_cells_per_sec": n_cells / cached_wall if cached_wall > 0 else 0.0,
        "cache_hits": cache_hits.get("n", 0),
        "cache_misses": n_cells - cache_hits.get("n", 0),
        "records_mismatched": mismatched,
        "errors": len(serial.errors) + len(parallel.errors),
    }


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

def bench_simlint(repeat: int = 3, warmup: int = 1) -> dict:
    """Layer 5 — the determinism linter itself.

    Times a full ``simlint`` pass (AST parse + all six SIM rules) over
    the installed ``repro`` package, so a rule that quietly goes
    quadratic shows up in BENCH_perf.json before it shows up as a slow
    CI ``lint-gate``.  ``files_per_sec`` is the gated rate;
    ``parse_errors`` is a deterministic count gated at zero.
    ``findings_raw`` (pre-baseline findings) is reported ungated — it
    legitimately moves as the tree and its suppression baseline evolve.
    """
    import os as _os

    import repro
    from repro.analysis import lint_paths

    pkg_dir = _os.path.dirname(repro.__file__)
    wall, report = _min_wall(lambda: lint_paths([pkg_dir]), repeat, warmup)
    assert report is not None
    return {
        "files": report.files_checked,
        "rules": 6,
        "findings_raw": len(report.findings),
        "parse_errors": len(report.parse_errors),
        "wall_s": wall,
        "files_per_sec": report.files_checked / wall if wall > 0 else 0.0,
    }


def run_perfbench(quick: bool = False, repeat: int = 3, warmup: int = 1
                  ) -> dict:
    """Run all three layers; returns the ``repro-perfbench-v1`` document."""
    if quick:
        kernel = bench_kernel(n_events=50_000, repeat=repeat, warmup=warmup)
        pipe = bench_pipe(total_bytes=128 * MIB, repeat=repeat, warmup=warmup)
        cells = {t: FIG5_CELLS[t] for t in QUICK_FIG5_CELLS}
        campaign = bench_campaign(jobs=2, quick=True, repeat=repeat)
    else:
        kernel = bench_kernel(repeat=repeat, warmup=warmup)
        pipe = bench_pipe(repeat=repeat, warmup=warmup)
        cells = FIG5_CELLS
        campaign = bench_campaign(jobs=4, quick=False, repeat=repeat)
    fig5 = bench_fig5_cells(cells, repeat=repeat, warmup=warmup)
    simlint = bench_simlint(repeat=repeat, warmup=warmup)
    doc = {
        "format": FORMAT,
        "quick": bool(quick),
        "repeat": repeat,
        "warmup": warmup,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "kernel": kernel,
        "pipe": pipe,
        "fig5": fig5,
        "campaign": campaign,
        "simlint": simlint,
        "seed_reference": SEED_REFERENCE,
        "trajectory": TRAJECTORY,
    }
    doc["summary"] = _summarize(doc)
    return doc


def _summarize(doc: dict) -> dict:
    """Headline numbers, including the honest before/after story."""
    ref = doc["seed_reference"]["fig5_wall_s"]
    speedups = {}
    for tag, cell in doc["fig5"].items():
        before = ref.get(tag)
        if before and cell["wall_s"] > 0:
            speedups[tag] = before / cell["wall_s"]
    camp = doc.get("campaign", {})
    return {
        "kernel_events_per_sec": doc["kernel"]["events_per_sec"],
        "pipe_event_reduction_x": doc["pipe"]["event_reduction_x"],
        "pipe_coalesced_sim_mib_per_wall_sec":
            doc["pipe"]["coalesced"]["sim_mib_per_wall_sec"],
        "fig5_speedup_vs_seed": speedups,
        "campaign_parallel_speedup_x": camp.get("parallel_speedup_x"),
        "campaign_cached_speedup_x": camp.get("cached_speedup_x"),
        "campaign_records_mismatched": camp.get("records_mismatched"),
        "simlint_files_per_sec": doc.get("simlint", {}).get("files_per_sec"),
        "note": (
            "fig5_speedup_vs_seed divides the committed seed-reference "
            "wall-clock (recorded on the reference machine) by this "
            "run's wall-clock; only meaningful on comparable hardware"
        ),
    }


# ---------------------------------------------------------------------------
# Regression gate (CI)
# ---------------------------------------------------------------------------

#: (path, kind) gated metrics.  "rate" = higher is better, gated at
#: ``max_regression`` (wall-clock noise tolerance); "count" = lower is
#: better and deterministic, gated tightly (events creeping back in is
#: exactly the regression this harness exists to catch).
_GATED = [
    (("kernel", "events_per_sec"), "rate"),
    (("pipe", "coalesced", "sim_mib_per_wall_sec"), "rate"),
    (("pipe", "coalesced", "events_per_transfer"), "count"),
    (("pipe", "event_reduction_x"), "ratio"),
    # Campaign executor: throughput rates absorb machine noise (30%
    # derate); the mismatch and error counts are deterministic and
    # gated at a hard 0 (baseline 0, so any growth fails).  The
    # parallel speedup is deliberately NOT gated — it depends on core
    # count, which CI runners do not guarantee.
    (("campaign", "serial_cells_per_sec"), "rate"),
    (("campaign", "cached_cells_per_sec"), "rate"),
    (("campaign", "records_mismatched"), "count"),
    (("campaign", "errors"), "count"),
    # simlint: throughput absorbs machine noise; a parse error in the
    # package tree is deterministic breakage, gated at a hard 0.
    (("simlint", "files_per_sec"), "rate"),
    (("simlint", "parse_errors"), "count"),
]


def _dig(doc: dict, path: tuple) -> Optional[float]:
    cur = doc
    for key in path:
        if not isinstance(cur, dict) or key not in cur:
            return None
        cur = cur[key]
    return float(cur) if isinstance(cur, (int, float)) else None


def check_against_baseline(current: dict, baseline: dict,
                           max_regression: float = 0.30) -> List[str]:
    """Return a list of failure strings (empty = pass).

    Rate metrics may drop by at most ``max_regression`` relative to the
    baseline (absorbs machine noise); deterministic event counts may not
    grow by more than 5%, and the event-reduction ratio may not fall
    below 4x (the acceptance floor) nor by more than 5% vs baseline.
    """
    failures = []
    gated = list(_GATED)
    for tag in baseline.get("fig5", {}):
        gated.append((("fig5", tag, "events_per_io"), "count"))
    for path, kind in gated:
        base = _dig(baseline, path)
        cur = _dig(current, path)
        name = ".".join(str(p) for p in path)
        if base is None:
            continue  # metric absent from baseline: nothing to gate
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        if kind == "rate":
            floor = base * (1.0 - max_regression)
            if cur < floor:
                failures.append(
                    f"{name}: {cur:.4g} < {floor:.4g} "
                    f"(baseline {base:.4g}, max regression "
                    f"{max_regression * 100:.0f}%)")
        elif kind == "count":
            ceil = base * 1.05
            if cur > ceil:
                failures.append(
                    f"{name}: {cur:.4g} > {ceil:.4g} "
                    f"(baseline {base:.4g}, +5% tolerance)")
        elif kind == "ratio":
            if cur < 4.0:
                failures.append(f"{name}: {cur:.4g} < 4.0 (acceptance floor)")
            elif cur < base * 0.95:
                failures.append(
                    f"{name}: {cur:.4g} < {base * 0.95:.4g} "
                    f"(baseline {base:.4g}, -5% tolerance)")
    return failures


def render_summary(doc: dict) -> str:
    """Human-readable one-screen report."""
    k = doc["kernel"]
    p = doc["pipe"]
    lines = [
        "perfbench — simulation kernel wall-clock",
        f"  kernel : {k['events_per_sec'] / 1e6:.2f} M events/s "
        f"({k['n_events']} events, {k['timeouts_recycled']} recycled timeouts)",
        f"  pipe   : coalesced {p['coalesced']['sim_mib_per_wall_sec']:.0f} "
        f"sim-MiB/s @ {p['coalesced']['events_per_transfer']:.1f} ev/xfer; "
        f"chunked {p['chunked']['sim_mib_per_wall_sec']:.0f} sim-MiB/s @ "
        f"{p['chunked']['events_per_transfer']:.1f} ev/xfer "
        f"({p['event_reduction_x']:.1f}x fewer events)",
    ]
    ref = doc["seed_reference"]["fig5_wall_s"]
    for tag, cell in doc["fig5"].items():
        extra = ""
        before = ref.get(tag)
        if before:
            extra = (f"  [seed ref {before * 1e3:.1f} ms -> "
                     f"{before / cell['wall_s']:.2f}x]")
        lines.append(
            f"  fig5   : {tag:14s} {cell['wall_s'] * 1e3:7.1f} ms, "
            f"{cell['events_processed']} events / {cell['total_ios']} IOs "
            f"= {cell['events_per_io']:.0f} ev/IO{extra}")
    c = doc.get("campaign")
    if c:
        lines.append(
            f"  campaign: {c['n_cells']} cells — serial "
            f"{c['serial_wall_s'] * 1e3:.0f} ms, jobs={c['jobs']} "
            f"{c['parallel_wall_s'] * 1e3:.0f} ms "
            f"({c['parallel_speedup_x']:.2f}x on {c['cpu_count']} cpu), "
            f"cached {c['cached_wall_s'] * 1e3:.1f} ms "
            f"({c['cached_speedup_x']:.0f}x), "
            f"{c['records_mismatched']} mismatched records")
    s = doc.get("simlint")
    if s:
        lines.append(
            f"  simlint : {s['files']} files in {s['wall_s'] * 1e3:.0f} ms "
            f"({s['files_per_sec']:.0f} files/s, "
            f"{s['findings_raw']} raw findings, "
            f"{s['parse_errors']} parse errors)")
    return "\n".join(lines)


def save_doc(doc: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
