"""Benchmark harness: experiment builders, sweeps, and report rendering.

* :mod:`repro.bench.runner` — one builder per paper experiment (local FIO,
  remote SPDK, end-to-end DFS/ROS2) plus sweep drivers.  Every cell of
  every figure builds a fresh simulated testbed, so cells are independent
  and reproducible.
* :mod:`repro.bench.report` — ASCII tables, heatmaps and CSV output that
  mirror how the paper presents each figure.
* :mod:`repro.bench.calibration` — the paper's reported numbers/bands and
  shape checks (who wins, by what factor, where crossovers sit), used by
  the benches to print paper-vs-measured and by the test suite to guard
  against calibration drift.
"""

from repro.bench.calibration import PAPER_BANDS, ShapeCheck, check_band
from repro.bench.report import Table, format_heatmap, format_rate, write_csv
from repro.bench.runner import (
    run_fig3_cell,
    run_fig4_cell,
    run_fig5_cell,
    run_ros2_fio,
)

__all__ = [
    "PAPER_BANDS",
    "ShapeCheck",
    "Table",
    "check_band",
    "format_heatmap",
    "format_rate",
    "run_fig3_cell",
    "run_fig4_cell",
    "run_fig5_cell",
    "run_ros2_fio",
    "write_csv",
]
