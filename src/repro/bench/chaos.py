"""The chaos harness: availability verdicts for runs under fault plans.

A chaos run is a doctored Fig. 5 cell with a
:class:`~repro.faults.plan.FaultPlan` installed and the event heap
drained to empty afterwards (see
:func:`~repro.bench.runner.run_fig5_chaos`).  This module reduces one
such run into a ``repro-chaos-v1`` verdict document asserting the
properties the paper's availability story rests on:

* **conservation** — every submitted operation either completed or
  failed with an error; nothing was lost in a retry loop or a flushed
  queue (``submitted == completed + failed`` after drain);
* **availability** — goodput (the fraction of measured-window
  operations that succeeded) stays above a threshold despite the
  injected faults;
* **bounded tail** — p99.9 latency stays under a bound, i.e. recovery
  is capped backoff + reconnect, not an unbounded stall.

The same sections are attached to chaos ledger records (``kind:
"chaos"``) via ``make_run_record(extra_sections=...)``, so the campaign
determinism gate covers recovery behaviour byte-for-byte.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "FORMAT",
    "DEFAULT_MIN_GOODPUT",
    "DEFAULT_P999_MAX",
    "chaos_sections",
    "make_chaos_report",
    "render_chaos",
    "default_qp_break_plan",
]

FORMAT = "repro-chaos-v1"

#: Measured-window success-ratio floor (goodput >= this passes).
DEFAULT_MIN_GOODPUT = 0.95

#: p99.9 latency ceiling in seconds — generous against the paper's
#: millisecond-scale tails, tight against an unbounded recovery stall.
DEFAULT_P999_MAX = 0.05


def default_qp_break_plan(client: str, runtime: float):
    """The committed default scenario: a mid-run QP break on the client.

    The break opens halfway through the measured window and refuses
    reconnection for a tenth of it, so the retry loop must ride out the
    window with capped backoff before the fresh QPs come up.
    """
    from repro.faults.plan import FaultEvent, FaultPlan

    return FaultPlan(events=(
        FaultEvent(kind="qp_break", target=f"{client}.qp",
                   at=runtime * 0.5, duration=runtime * 0.1),
    ))


def chaos_sections(
    result,
    stats,
    plan,
    tracer=None,
    min_goodput: float = DEFAULT_MIN_GOODPUT,
    p999_max: Optional[float] = DEFAULT_P999_MAX,
) -> dict:
    """The verdict sections shared by the report and the ledger record.

    ``result`` is the :class:`~repro.workload.fio.FioResult`, ``stats``
    the injector's :class:`~repro.faults.plan.FaultStats` *after* the
    drain, ``plan`` the :class:`~repro.faults.plan.FaultPlan` that ran.
    """
    lost = stats.submitted - stats.completed - stats.failed
    window_ops = result.total_ios + result.errors
    goodput = result.total_ios / window_ops if window_ops else 0.0
    p999 = result.latency.get("p999")

    checks: List[dict] = [
        {
            "name": "conservation",
            "ok": lost == 0,
            "detail": (f"submitted={stats.submitted} "
                       f"completed={stats.completed} failed={stats.failed} "
                       f"lost={lost}"),
        },
        {
            "name": "goodput",
            "ok": goodput >= min_goodput,
            "detail": (f"{goodput:.4f} of {window_ops} measured-window ops "
                       f"succeeded (floor {min_goodput:.4f})"),
        },
    ]
    if p999_max is not None and p999 is not None:
        checks.append({
            "name": "p999",
            "ok": p999 <= p999_max,
            "detail": (f"p99.9 {p999 * 1e3:.3f} ms "
                       f"(bound {p999_max * 1e3:.3f} ms)"),
        })

    sections = {
        "faults": plan.to_config(),
        "recovery": stats.to_dict(),
        "conservation": {
            "submitted": stats.submitted,
            "completed": stats.completed,
            "failed": stats.failed,
            "lost": lost,
        },
        "availability": {
            "goodput": goodput,
            "min_goodput": min_goodput,
            "window_ops": window_ops,
            "window_errors": result.errors,
            **({"p999": p999} if p999 is not None else {}),
            **({"p999_max": p999_max} if p999_max is not None else {}),
        },
        "checks": checks,
        "ok": all(c["ok"] for c in checks),
    }
    if tracer is not None:
        # Which fault resource the recovery waits were blamed on — the
        # doctor's ``fault:{resource}`` leaves, pinned for the goldens.
        fault_blame = {
            name: agg.to_dict()
            for name, agg in sorted(tracer.aggregates.items())
            if name.startswith("fault:")
        }
        sections["fault_blame"] = fault_blame
    return sections


def make_chaos_report(chaos_run, config: dict, label: str = "",
                      min_goodput: float = DEFAULT_MIN_GOODPUT,
                      p999_max: Optional[float] = DEFAULT_P999_MAX) -> dict:
    """Reduce a :class:`~repro.bench.runner.ChaosRun` into the verdict doc."""
    run = chaos_run.run
    doc = {
        "format": FORMAT,
        "label": label,
        "config": dict(config),
        "result": run.result.to_dict(),
        **chaos_sections(run.result, chaos_run.stats, chaos_run.plan,
                         tracer=run.tracer, min_goodput=min_goodput,
                         p999_max=p999_max),
    }
    return doc


def render_chaos(doc: dict) -> str:
    """One-screen human verdict."""
    lines = [f"chaos verdict — {doc.get('label') or 'run'}: "
             + ("OK" if doc["ok"] else "FAIL")]
    events = doc.get("faults", {}).get("events", [])
    for ev in events:
        lines.append(f"  fault  {ev['kind']:18s} {ev['target']:24s} "
                     f"at +{ev['at'] * 1e3:.2f} ms "
                     f"for {ev['duration'] * 1e3:.2f} ms")
    rec = doc.get("recovery", {})
    lines.append(f"  recovery: {rec.get('retries', 0)} retries, "
                 f"{rec.get('reconnects', 0)} reconnects, "
                 f"{rec.get('timeouts', 0)} timeouts, "
                 f"{rec.get('replies_dropped', 0)} replies dropped, "
                 f"{rec.get('fault_downtime', 0.0) * 1e3:.2f} ms downtime")
    for check in doc.get("checks", []):
        mark = "ok  " if check["ok"] else "FAIL"
        lines.append(f"  {mark} {check['name']:14s} {check['detail']}")
    return "\n".join(lines)
