"""ASCII tables, heatmaps, and CSV output for the benches.

The paper shows line charts (Fig. 3, Fig. 5) and heatmaps (Fig. 4); the
benches print the same data as text: one table per sub-figure with the
sweep variable down the rows and the workloads across the columns, and
core x core heatmap grids for Fig. 4.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence

__all__ = ["Table", "format_heatmap", "format_rate", "write_csv"]


def format_rate(value: float, unit: str) -> str:
    """Render one measurement in the paper's units."""
    if unit == "GiB/s":
        return f"{value / 2**30:7.2f}"
    if unit == "KIOPS":
        return f"{value / 1e3:7.1f}"
    if unit == "MIOPS":
        return f"{value / 1e6:7.3f}"
    return f"{value:9.3g}"


class Table:
    """A titled ASCII table with left header column."""

    def __init__(self, title: str, columns: Sequence[str], row_header: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.row_header = row_header
        self.rows: List[List[str]] = []

    def add_row(self, header: str, values: Sequence[str]) -> None:
        """Append one row (values must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([header, *values])

    def render(self) -> str:
        """The full table as a string."""
        headers = [self.row_header, *self.columns]
        widths = [
            max(len(str(headers[i])), *(len(r[i]) for r in self.rows), 6)
            if self.rows else max(len(str(headers[i])), 6)
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_heatmap(
    title: str,
    row_label: str,
    col_label: str,
    rows: Sequence[int],
    cols: Sequence[int],
    values: Dict[tuple, float],
    unit: str,
) -> str:
    """Render a Fig.-4-style heatmap grid (rows x cols of one metric)."""
    table = Table(f"{title}  [{unit}]  (rows: {row_label}, cols: {col_label})",
                  [str(c) for c in cols], row_header=f"{row_label}\\{col_label}")
    for r in rows:
        table.add_row(str(r), [format_rate(values[(r, c)], unit).strip() for c in cols])
    return table.render()


def write_csv(path: str, fieldnames: Sequence[str], rows: List[dict]) -> None:
    """Dump sweep results as CSV for external plotting."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def render_series(
    title: str,
    x_name: str,
    xs: Sequence,
    series: Dict[str, List[float]],
    unit: str,
) -> str:
    """Render a Fig.-3/5-style line chart as a table: x down, series across."""
    table = Table(f"{title}  [{unit}]", list(series.keys()), row_header=x_name)
    for i, x in enumerate(xs):
        table.add_row(str(x), [format_rate(series[s][i], unit).strip() for s in series])
    return table.render()
