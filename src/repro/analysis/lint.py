"""The ``simlint`` engine: walk files, run rules, apply suppressions.

Two suppression mechanisms, in precedence order:

1. **Inline comments** — ``# simlint: disable=SIM001`` (or a
   comma-separated list) on the offending line silences those rules for
   that line only.  Use for one-off intentional exceptions where the
   justification reads naturally in the surrounding code.
2. **The committed baseline** — a JSON file of (rule, path, line text)
   entries, each with a mandatory justification string, for findings
   that are intentional but whose source lines shouldn't grow lint
   chatter (see :mod:`repro.analysis.baseline`).

Anything not absorbed by either is an *unsuppressed finding* and fails
the CI ``lint-gate``.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.model import Finding, LintReport, RULES

__all__ = [
    "iter_python_files",
    "lint_source",
    "lint_paths",
    "render_report",
]

_DISABLE_RE = re.compile(r"#\s*simlint:\s*disable=([A-Z0-9, ]+)")


def _inline_disables(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> rule IDs disabled on that line."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _DISABLE_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out[i] = {r for r in rules if r in RULES}
    return out


def lint_source(
    relpath: str,
    source: str,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file's text: (active findings, inline-suppressed)."""
    from repro.analysis.rules import check_source

    findings = check_source(relpath, source)
    disables = _inline_disables(source.splitlines())
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        if f.rule in disables.get(f.line, ()):
            suppressed.append(f)
        else:
            active.append(f)
    return active, suppressed


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d != "__pycache__"
                                 and not d.startswith("."))
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return sorted(set(out))


def _normpath(path: str) -> str:
    return os.path.normpath(path).replace("\\", "/")


def lint_paths(
    paths: Iterable[str],
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and apply suppressions."""
    report = LintReport()
    for path in iter_python_files(paths):
        relpath = _normpath(path)
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.parse_errors.append(f"{relpath}: {exc}")
            continue
        try:
            active, inline = lint_source(relpath, source)
        except SyntaxError as exc:
            report.parse_errors.append(
                f"{relpath}: syntax error at line {exc.lineno}")
            continue
        report.files_checked += 1
        report.suppressed_inline.extend(inline)
        for f in active:
            if baseline is not None and baseline.matches(f):
                report.suppressed_baseline.append(f)
            else:
                report.findings.append(f)
    return report


def render_report(report: LintReport) -> str:
    """Human-readable lint output (one line per finding + summary)."""
    lines: List[str] = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}")
        lines.append(f"    hint: {f.hint}")
    for err in report.parse_errors:
        lines.append(f"PARSE ERROR: {err}")
    lines.append(
        f"simlint: {report.files_checked} files, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed_inline)} inline-suppressed, "
        f"{len(report.suppressed_baseline)} baseline-suppressed")
    return "\n".join(lines)
