"""The ``simlint`` rule set: determinism invariants as AST checks.

Each rule encodes one way this codebase has learned determinism can rot
(see DESIGN §13 for the before/after catalogue):

* ``SIM001`` — wall-clock/entropy (``time.time``, ``random.*``,
  ``uuid``, ``os.urandom``, ``secrets``, ``datetime.now``) anywhere
  except the seeded-stream home ``sim/rng.py``.  Simulated time comes
  from ``env.now``; randomness from ``RngStreams``.
* ``SIM002`` — iterating a ``set``/``frozenset`` (always), or
  ``dict.keys/values/items`` whose loop body feeds an event-scheduling
  or serialization sink, without a ``sorted()`` wrapper.
* ``SIM003`` — calling a tracer/telemetry hook attribute without the
  zero-cost ``is not None`` guard the kernel's hot paths rely on.
* ``SIM004`` — ``@dataclass`` without ``slots=True`` in a hot-path
  package (``sim/ net/ daos/ hw/ storage/ core/``).
* ``SIM005`` — accumulating float durations with builtin ``sum()``;
  ``math.fsum`` is exactly rounded and therefore order-independent
  over a multiset, which the race sanitizer depends on.
* ``SIM006`` — reading a volatile record field (``created``,
  ``git_sha``, ``code_fingerprint``, ``run_id``) inside content-hash /
  run-ID derivation code.

The visitors are heuristic by design: precise enough that the clean
tree carries only justified baseline entries, simple enough to audit.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import Finding

__all__ = ["check_source", "HOT_PATH_DIRS", "HOOK_ATTRS"]

#: Packages whose object churn / per-event costs dominate runtime; a
#: dataclass here without ``slots=True`` pays dict-per-instance.
HOT_PATH_DIRS = ("sim", "net", "daos", "hw", "storage", "core")

#: Attribute names the codebase uses for optional observer hooks; the
#: idiom is ``hook = self._x`` / ``if hook is not None: hook.f(...)``.
HOOK_ATTRS = frozenset({"_trace_hook", "_wait_tracer", "_tracer", "_stats"})

#: ``module.attr`` call targets that read the host clock or entropy.
_SIM001_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "os.urandom",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Modules where *any* call is a SIM001 hit (every public entry point
#: is an entropy source or derived from one).
_SIM001_MODULES = frozenset({"random", "uuid", "secrets"})

#: Call/attribute names that make a loop an event-scheduling or
#: serialization sink for SIM002.
_SIM002_SINKS = frozenset({
    "schedule", "process", "timeout", "timeout_until", "succeed",
    "heappush", "put", "write", "dump", "dumps", "print",
})

#: Identifier fragments that mark a summed expression as a float
#: duration/latency accumulation (SIM005).
_SIM005_FLOATISH = re.compile(
    r"(dur|time|wait|service|latency|busy|delay|wall|elapsed|delta)",
    re.IGNORECASE)

#: Record fields excluded from content hashes; reading them inside
#: hash/ID derivation makes IDs non-reproducible (SIM006).
_SIM006_VOLATILE = frozenset({
    "created", "git_sha", "code_fingerprint", "run_id"})

#: Function names that constitute a hash/ID-derivation context.
_SIM006_CONTEXT = re.compile(
    r"(hash|fingerprint|run_id|slug|cache_key|content)", re.IGNORECASE)

#: Hashing calls whose arguments are a SIM006 context regardless of the
#: enclosing function's name.
_SIM006_CALLS = frozenset({
    "config_hash", "content_hash", "sha256", "sha1", "md5", "blake2b"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_hot_path(relpath: str) -> bool:
    """Whether SIM004 applies to this file.

    Paths under ``src/repro/<pkg>/`` are hot iff ``<pkg>`` is in
    :data:`HOT_PATH_DIRS`; paths *outside* the package tree (fixture
    snippets, scratch files) are treated as hot so the rule is
    exercised by the test fixtures.
    """
    norm = relpath.replace("\\", "/")
    marker = "src/repro/"
    idx = norm.find(marker)
    if idx < 0:
        return True
    rest = norm[idx + len(marker):]
    top = rest.split("/", 1)[0]
    return top in HOT_PATH_DIRS


def _is_rng_module(relpath: str) -> bool:
    return relpath.replace("\\", "/").endswith("sim/rng.py")


class _Imports:
    """Resolved import table: local name -> canonical dotted target."""

    def __init__(self) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}

    def scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Canonical dotted path of a call target, if resolvable."""
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            full = self.modules[head] + (("." + rest) if rest else "")
            return full
        if head in self.names:
            return self.names[head] + (("." + rest) if rest else "")
        return dotted


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath: str, source_lines: List[str]) -> None:
        self.relpath = relpath
        self.lines = source_lines
        self.findings: List[Finding] = []
        self.imports = _Imports()
        self.parents: Dict[int, ast.AST] = {}
        self._func_stack: List[ast.AST] = []

    # -- plumbing ----------------------------------------------------

    def run(self, tree: ast.AST) -> List[Finding]:
        self.imports.scan(tree)
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
        self.visit(tree)
        return self.findings

    def _emit(self, node: ast.AST, rule: str, message: str,
              hint: str) -> None:
        line = getattr(node, "lineno", 1)
        text = self.lines[line - 1].strip() if line <= len(self.lines) else ""
        self.findings.append(Finding(
            rule=rule, path=self.relpath, line=line,
            col=getattr(node, "col_offset", 0),
            message=message, hint=hint, line_text=text))

    def _ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(id(node))
        while cur is not None:
            yield cur
            cur = self.parents.get(id(cur))

    # -- traversal ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        self._sim001(node)
        self._sim003(node)
        self._sim005(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._sim002(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._sim002(node.iter, None)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._sim004(node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._sim006_access(node, node.slice)
        self.generic_visit(node)

    # -- SIM001 ------------------------------------------------------

    def _sim001(self, node: ast.Call) -> None:
        if _is_rng_module(self.relpath):
            return
        target = self.imports.resolve_call(node.func)
        if target is None:
            return
        head = target.split(".", 1)[0]
        if target in _SIM001_CALLS or head in _SIM001_MODULES:
            self._emit(
                node, "SIM001",
                f"call to {target}() reads the host clock or entropy "
                "inside simulation code",
                "derive time from env.now and randomness from seeded "
                "streams (repro.sim.rng.RngStreams); wall-clock "
                "measurement code belongs in the perf harness with a "
                "baseline justification")

    # -- SIM002 ------------------------------------------------------

    def _sim002(self, iter_node: ast.expr, loop: Optional[ast.For]) -> None:
        unordered, what = self._unordered_iterable(iter_node)
        if not unordered:
            return
        if what == "dict-view":
            # dict views are insertion-ordered; only flag when the loop
            # body feeds a scheduling/serialization sink, where
            # insertion-order coupling has bitten before.
            if loop is None or not self._has_sink(loop):
                return
        self._emit(
            iter_node, "SIM002",
            f"iteration over an unordered {what} feeds event scheduling "
            "or output serialization",
            "wrap the iterable in sorted(...) with an explicit key so "
            "the visit order is part of the program, not the hash seed")

    def _unordered_iterable(
            self, node: ast.expr) -> Tuple[bool, str]:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True, "set"
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in ("set", "frozenset"):
                return True, name or "set"
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("keys", "values", "items") \
                    and not node.args:
                return True, "dict-view"
        return False, ""

    def _has_sink(self, loop: ast.For) -> bool:
        for stmt in loop.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    name = _dotted(sub.func) or ""
                    leaf = name.rsplit(".", 1)[-1]
                    if leaf in _SIM002_SINKS:
                        return True
        return False

    # -- SIM003 ------------------------------------------------------

    def _hook_expr(self, node: ast.Call) -> Optional[str]:
        """Dotted path of the optional hook a call dereferences."""
        func = node.func
        # self._hook(...)  — calling the hook itself
        if isinstance(func, ast.Attribute) and func.attr in HOOK_ATTRS:
            return _dotted(func)
        # self._hook.method(...) — calling through the hook
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Attribute) \
                and func.value.attr in HOOK_ATTRS:
            return _dotted(func.value)
        # alias.method(...) / alias(...) where ``alias = self._hook``
        aliases = self._local_hook_aliases()
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in aliases:
            return func.value.id
        if isinstance(func, ast.Name) and func.id in aliases:
            return func.id
        return None

    def _local_hook_aliases(self) -> Set[str]:
        if not self._func_stack:
            return set()
        aliases: Set[str] = set()
        for stmt in ast.walk(self._func_stack[-1]):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Attribute) \
                    and stmt.value.attr in HOOK_ATTRS:
                aliases.add(stmt.targets[0].id)
        return aliases

    def _sim003(self, node: ast.Call) -> None:
        hook = self._hook_expr(node)
        if hook is None:
            return
        if self._is_guarded(node, hook):
            return
        self._emit(
            node, "SIM003",
            f"hook {hook} invoked without an 'is not None' guard",
            "load the hook once and guard it — "
            "`h = self._hook` / `if h is not None: h.f(...)` — so the "
            "disabled case costs one attribute load and no call")

    def _guard_matches(self, test: ast.expr, hook: str) -> Optional[bool]:
        """True if ``test`` guards ``hook`` non-None in the *body*,
        False if in the *orelse*, None if unrelated."""
        # `x is not None` / `x is None`
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None \
                and _dotted(test.left) == hook:
            if isinstance(test.ops[0], ast.IsNot):
                return True
            if isinstance(test.ops[0], ast.Is):
                return False
        # truthiness: `if x:` / `if not x:`
        if _dotted(test) == hook:
            return True
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
                and _dotted(test.operand) == hook:
            return False
        # `x is not None and ...` — first clause guards the rest
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for clause in test.values:
                verdict = self._guard_matches(clause, hook)
                if verdict is not None:
                    return verdict
        return None

    def _is_guarded(self, node: ast.Call, hook: str) -> bool:
        # Lexical guard: an ancestor If/IfExp whose test covers us.
        child: ast.AST = node
        for anc in self._ancestors(node):
            if isinstance(anc, (ast.If, ast.IfExp)):
                verdict = self._guard_matches(anc.test, hook)
                if verdict is not None:
                    in_body = any(child is n or child in ast.walk(n)
                                  for n in (anc.body if isinstance(
                                      anc.body, list) else [anc.body]))
                    if verdict == in_body:
                        return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Early-exit guard: `if hook is None: return` or an
                # `assert hook is not None` earlier in the function.
                if self._early_guard(anc, hook, node):
                    return True
                break
            child = anc
        return False

    def _early_guard(self, func: ast.AST, hook: str,
                     node: ast.Call) -> bool:
        lineno = getattr(node, "lineno", 0)
        body = getattr(func, "body", [])
        for stmt in body:
            if getattr(stmt, "lineno", 10**9) >= lineno:
                break
            if isinstance(stmt, ast.If) \
                    and self._guard_matches(stmt.test, hook) is False \
                    and stmt.body \
                    and isinstance(stmt.body[-1],
                                   (ast.Return, ast.Raise, ast.Continue)):
                return True
            if isinstance(stmt, ast.Assert) \
                    and self._guard_matches(stmt.test, hook) is True:
                return True
        return False

    # -- SIM004 ------------------------------------------------------

    def _sim004(self, node: ast.ClassDef) -> None:
        if not _is_hot_path(self.relpath):
            return
        deco = self._dataclass_decorator(node)
        if deco is None:
            return
        if node.bases:
            return  # slots + dataclass inheritance is its own audit
        if any(isinstance(s, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in s.targets) for s in node.body):
            return
        if isinstance(deco, ast.Call) and any(
                kw.arg == "slots" for kw in deco.keywords):
            return
        self._emit(
            node, "SIM004",
            f"dataclass {node.name} on a hot path has no slots=True",
            "add @dataclass(slots=True): per-instance __dict__ costs "
            "memory and attribute-lookup time on event-rate paths")

    def _dataclass_decorator(
            self, node: ast.ClassDef) -> Optional[ast.expr]:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target) or ""
            if name in ("dataclass", "dataclasses.dataclass"):
                return deco
        return None

    # -- SIM005 ------------------------------------------------------

    def _sim005(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "sum" and node.args):
            return
        arg = node.args[0]
        # Counting idiom `sum(1 for ...)` is exact — ignore it.
        if isinstance(arg, ast.GeneratorExp) \
                and isinstance(arg.elt, ast.Constant) \
                and isinstance(arg.elt.value, int):
            return
        if not self._mentions_floatish(arg):
            return
        self._emit(
            node, "SIM005",
            "builtin sum() accumulates float durations in iteration "
            "order; the result depends on the schedule",
            "use math.fsum(...): exactly rounded, therefore "
            "order-independent over the same multiset of values")

    def _mentions_floatish(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            ident: Optional[str] = None
            if isinstance(sub, ast.Name):
                ident = sub.id
            elif isinstance(sub, ast.Attribute):
                ident = sub.attr
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                ident = sub.value
            if ident is not None and _SIM005_FLOATISH.search(ident):
                return True
        return False

    # -- SIM006 ------------------------------------------------------

    def _in_hash_context(self, node: ast.AST) -> bool:
        for anc in self._ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and _SIM006_CONTEXT.search(anc.name):
                return True
            if isinstance(anc, ast.Call):
                name = _dotted(anc.func) or ""
                if name.rsplit(".", 1)[-1] in _SIM006_CALLS:
                    return True
        return False

    def _sim006_access(self, node: ast.AST, key: ast.expr) -> None:
        if not (isinstance(key, ast.Constant)
                and key.value in _SIM006_VOLATILE):
            return
        if not self._in_hash_context(node):
            return
        self._emit(
            node, "SIM006",
            f"volatile field {key.value!r} read inside hash/run-ID "
            "derivation",
            "volatile stamps (created, git_sha, code_fingerprint, "
            "run_id) must not feed content hashes — go through "
            "strip_volatile() or drop the field")

def _sim006_get_calls(checker: _Checker, tree: ast.AST) -> None:
    """Second pass: ``record.get("created")`` inside hash contexts."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" and node.args:
            checker._sim006_access(node, node.args[0])


def check_source(relpath: str, source: str) -> List[Finding]:
    """Run every rule over one file's source; raises SyntaxError."""
    tree = ast.parse(source, filename=relpath)
    checker = _Checker(relpath, source.splitlines())
    findings = checker.run(tree)
    _sim006_get_calls(checker, tree)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
