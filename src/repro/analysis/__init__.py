"""Static analysis for determinism: ``simlint`` + the race sanitizer.

This package machine-checks the invariants the rest of the repo only
promises: no wall-clock or entropy leaks into simulated time, no
hash-order dependence, no unguarded observer hooks, and headline
metrics that are invariant under equal-time event reordering.

* :mod:`repro.analysis.rules` — the SIM001–SIM006 AST rules;
* :mod:`repro.analysis.lint` — the engine (file walking, inline
  ``# simlint: disable=...`` comments);
* :mod:`repro.analysis.baseline` — the committed suppression baseline;
* :mod:`repro.analysis.sanitizer` — the virtual-time race sanitizer
  (tie-scramble × ``PYTHONHASHSEED`` matrix over a quick Fig. 5 cell).

CLI entry points: ``python -m repro.bench.cli lint`` and ``... sanitize``.
"""

from repro.analysis.baseline import (
    BASELINE_FORMAT,
    DEFAULT_BASELINE_PATH,
    Baseline,
)
from repro.analysis.lint import (
    iter_python_files,
    lint_paths,
    lint_source,
    render_report,
)
from repro.analysis.model import LINT_FORMAT, RULES, Finding, LintReport
from repro.analysis.rules import check_source
from repro.analysis.sanitizer import (
    SANITIZE_FORMAT,
    build_record,
    compare_metrics,
    render_sanitize,
    run_sanitizer,
    sanitize_cell,
)

__all__ = [
    "LINT_FORMAT",
    "SANITIZE_FORMAT",
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_PATH",
    "RULES",
    "Finding",
    "LintReport",
    "Baseline",
    "check_source",
    "iter_python_files",
    "lint_source",
    "lint_paths",
    "render_report",
    "build_record",
    "compare_metrics",
    "sanitize_cell",
    "run_sanitizer",
    "render_sanitize",
]
