"""Shared types for the static-analysis subsystem.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is the outcome of a lint pass over a file set after
inline suppressions and the committed baseline have been applied.  Both
are plain data — the engine (:mod:`repro.analysis.lint`) produces them,
the CLI serializes them as ``repro-lint-v1`` JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "LINT_FORMAT",
    "RULES",
    "Finding",
    "LintReport",
]

#: Format tag for the JSON lint document emitted by ``repro.bench.cli lint``.
LINT_FORMAT = "repro-lint-v1"

#: Every rule the linter knows, with its one-line charter.  The IDs are
#: stable: suppression comments and baseline entries refer to them.
RULES: Dict[str, str] = {
    "SIM001": "wall-clock or entropy source in simulation code",
    "SIM002": "iteration over an unordered collection feeding "
              "scheduling or serialization",
    "SIM003": "tracer/telemetry hook invoked without the zero-cost "
              "'is not None' guard",
    "SIM004": "dataclass on a hot path missing slots=True",
    "SIM005": "order-sensitive float accumulation via sum() where "
              "math.fsum is exact",
    "SIM006": "volatile field read inside content-hash or run-ID "
              "derivation",
}


@dataclass(slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    line_text: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "line_text": self.line_text,
        }


@dataclass(slots=True)
class LintReport:
    """Outcome of a lint pass after suppressions are applied.

    ``findings`` are the *unsuppressed* violations (what fails the
    gate); the suppressed ones are retained for the JSON document so a
    reviewer can audit what the baseline is absorbing.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed_inline: List[Finding] = field(default_factory=list)
    suppressed_baseline: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_doc(self, paths: List[str]) -> Dict[str, object]:
        """The ``repro-lint-v1`` JSON document."""
        return {
            "format": LINT_FORMAT,
            "paths": list(paths),
            "rules": dict(RULES),
            "counts": {
                "files": self.files_checked,
                "findings": len(self.findings),
                "suppressed_inline": len(self.suppressed_inline),
                "suppressed_baseline": len(self.suppressed_baseline),
                "parse_errors": len(self.parse_errors),
            },
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": {
                "inline": [f.to_dict() for f in self.suppressed_inline],
                "baseline": [f.to_dict() for f in self.suppressed_baseline],
            },
            "parse_errors": list(self.parse_errors),
            "ok": self.ok,
        }
