"""The virtual-time race sanitizer.

A deterministic discrete-event simulation makes two promises that
nothing in the type system enforces:

1. **Hash-seed independence** — no outcome may depend on Python's
   per-process string-hash randomization (``set`` iteration order,
   pre-3.7 ``dict`` assumptions, ``id()``-keyed containers).
2. **Tie independence of the headline metrics** — when two events carry
   the *same* virtual timestamp and priority, the kernel breaks the tie
   FIFO by event ID.  That order is an implementation detail: any code
   whose *headline metrics* change materially when equal-time pop order
   is permuted has a hidden happens-before assumption — a virtual-time
   race.

The sanitizer attacks both axes on a quick Fig. 5 cell:

* it re-runs the cell with the kernel's seeded **tie scramble**
  (:func:`repro.sim.core.tie_scramble`) permuting equal-``(time,
  priority)`` pop order, for several shuffle seeds;
* it re-runs each shuffled cell under two different ``PYTHONHASHSEED``
  values (which requires a subprocess — the hash seed is fixed at
  interpreter start);

then diffs the stripped ledger records.  The gates are deliberately of
different strength:

* **hash axis: byte identity.**  Changing ``PYTHONHASHSEED`` does not
  change the schedule, so the full stripped record — attribution
  sections included — must be byte-identical.  Any diff is a real
  hash-order dependence.
* **tie axis: metric envelope.**  A tie permutation produces a
  *different but equally valid* execution: requests swap queue slots,
  so per-request attribution (flame stacks, sampled spans) legitimately
  tracks the realized schedule, and windowed counters can shift by one
  IO at the measurement boundary (observed ≤ 2.5e-4 relative on the
  quick cells).  The gate therefore compares the ``metrics`` section
  under a tight quantization envelope — default 2e-3 relative, 1e-2
  for extreme-value tail statistics (``.max``/``.p99``/``.p999``).
  Real races (unseeded RNG, hash-order grant loops) move metrics by
  percent-level amounts and blow through it.

On drift, the differential doctor (:func:`repro.sim.diffdoctor.
diff_runs`) is run between the reference and the drifting record to
blame the resource whose grant order diverged.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SANITIZE_FORMAT",
    "DEFAULT_TOLERANCE",
    "TAIL_TOLERANCE",
    "DEFAULT_SEEDS",
    "DEFAULT_HASH_SEEDS",
    "build_record",
    "compare_metrics",
    "sanitize_cell",
    "run_sanitizer",
    "render_sanitize",
]

SANITIZE_FORMAT = "repro-sanitize-v1"

#: Relative tolerance for ordinary metrics (rates, counts, means).
#: The observed tie-permutation envelope on the quick cells is ≤2.5e-4
#: (one IO crossing the measurement-window boundary); real races move
#: metrics by percent-level amounts.
DEFAULT_TOLERANCE = 2e-3

#: Relative tolerance for extreme-value tail statistics, which track a
#: single sample and are therefore the most schedule-sensitive.
TAIL_TOLERANCE = 1e-2

_TAIL_SUFFIXES = (".max", ".p99", ".p999")

DEFAULT_SEEDS: Tuple[int, ...] = (1, 2, 3, 4, 5)
DEFAULT_HASH_SEEDS: Tuple[int, ...] = (0, 12345)


def build_record(
    transport: str,
    client: str = "dpu",
    rw: str = "randread",
    bs: int = 4096,
    numjobs: int = 16,
    runtime: float = 0.02,
    tie_seed: Optional[int] = None,
) -> dict:
    """Run one doctored Fig. 5 cell and reduce it to a stripped record.

    The config deliberately excludes ``tie_seed``: the permuted run
    claims to be *the same experiment*, and the sanitizer's whole
    question is whether the record agrees.
    """
    from repro.bench import ledger
    from repro.bench.runner import run_fig5_doctored

    run = run_fig5_doctored(
        transport, client, rw, bs, numjobs,
        runtime=runtime, sample_every=20, observe_sampler=False,
        tie_seed=tie_seed)
    config = {
        "experiment": "fig5", "transport": transport, "client": client,
        "rw": rw, "bs": bs, "numjobs": numjobs, "runtime": runtime,
    }
    record = ledger.make_run_record(
        run.result, run.collector, run.tracer, config=config,
        label=f"sanitize-{transport}", kind="sanitize")
    return ledger.strip_volatile(record)


def _tolerance_for(key: str) -> float:
    if key.endswith(_TAIL_SUFFIXES):
        return TAIL_TOLERANCE
    return DEFAULT_TOLERANCE


def compare_metrics(ref: dict, var: dict) -> List[dict]:
    """Drifted entries of the two records' ``metrics`` sections.

    Returns one row per metric whose relative delta exceeds its
    tolerance, plus rows for keys present on only one side (always
    drift: the metric namespace itself must be schedule-independent).
    """
    a = {k: float(v) for k, v in ref.get("metrics", {}).items()}
    b = {k: float(v) for k, v in var.get("metrics", {}).items()}
    drifted: List[dict] = []
    for key in sorted(a.keys() | b.keys()):
        if key not in a or key not in b:
            drifted.append({"metric": key,
                            "ref": a.get(key), "var": b.get(key),
                            "rel": None, "tolerance": 0.0,
                            "why": "metric present on only one side"})
            continue
        denom = max(abs(a[key]), abs(b[key]), 1e-30)
        rel = abs(a[key] - b[key]) / denom
        tol = _tolerance_for(key)
        if rel > tol:
            drifted.append({"metric": key, "ref": a[key], "var": b[key],
                            "rel": rel, "tolerance": tol,
                            "why": "exceeds envelope"})
    return drifted


def _envelope_use(ref: dict, var: dict) -> Tuple[float, str]:
    """Worst rel-delta/tolerance ratio and the metric that sets it."""
    a = {k: float(v) for k, v in ref.get("metrics", {}).items()}
    b = {k: float(v) for k, v in var.get("metrics", {}).items()}
    worst, worst_key = 0.0, ""
    for key in a.keys() & b.keys():
        denom = max(abs(a[key]), abs(b[key]), 1e-30)
        use = (abs(a[key] - b[key]) / denom) / _tolerance_for(key)
        if use > worst:
            worst, worst_key = use, key
    return worst, worst_key


def _blame_drift(ref: dict, var: dict, label: str) -> List[dict]:
    """Rank resources by wait/service delta between the two records."""
    from repro.sim.diffdoctor import diff_runs

    diag = diff_runs(ref, var, label=label)
    return [
        {"resource": c["resource"], "delta": c["delta"],
         "delta_wait": c["delta_wait"], "delta_service": c["delta_service"]}
        for c in diag.contributors[:5]
    ]


# ---------------------------------------------------------------------------
# Subprocess orchestration
# ---------------------------------------------------------------------------

def _worker_argv(transport: str, client: str, rw: str, bs: int,
                 numjobs: int, runtime: float,
                 tie_seed: Optional[int]) -> List[str]:
    argv = [sys.executable, "-m", "repro.analysis.sanitizer", "--worker",
            "--transport", transport, "--client", client, "--rw", rw,
            "--bs", str(bs), "--numjobs", str(numjobs),
            "--runtime", repr(runtime)]
    if tie_seed is not None:
        argv += ["--tie-seed", str(tie_seed)]
    return argv


def _spawn(argv: List[str], hash_seed: int) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    # Ensure the worker resolves the same package tree as the parent.
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return subprocess.Popen(argv, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True, env=env)


def _collect(proc: "subprocess.Popen[str]", what: str) -> str:
    out, err = proc.communicate()
    if proc.returncode != 0:
        raise RuntimeError(
            f"sanitizer worker failed ({what}, rc={proc.returncode}):\n"
            f"{err.strip()[-2000:]}")
    return out.strip()


def sanitize_cell(
    transport: str,
    client: str = "dpu",
    rw: str = "randread",
    bs: int = 4096,
    numjobs: int = 16,
    runtime: float = 0.02,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
) -> dict:
    """Sanitize one cell: 1 reference + len(seeds)*len(hash_seeds) runs.

    All workers are spawned concurrently (each is an independent
    single-threaded simulation); the OS schedules them.
    """
    def argv(tie_seed: Optional[int]) -> List[str]:
        return _worker_argv(transport, client, rw, bs, numjobs,
                            runtime, tie_seed)

    procs: Dict[Tuple[Optional[int], int], "subprocess.Popen[str]"] = {}
    procs[(None, hash_seeds[0])] = _spawn(argv(None), hash_seeds[0])
    for s in seeds:
        for h in hash_seeds:
            procs[(s, h)] = _spawn(argv(s), h)

    texts = {key: _collect(proc, f"tie_seed={key[0]} hash_seed={key[1]}")
             for key, proc in procs.items()}

    ref = json.loads(texts[(None, hash_seeds[0])])
    hash_mismatches: List[dict] = []
    drifts: List[dict] = []
    blame: List[dict] = []
    envelope_use, envelope_metric = 0.0, ""
    for s in seeds:
        # Hash axis: full stripped record must be byte-identical.
        base_text = texts[(s, hash_seeds[0])]
        for h in hash_seeds[1:]:
            if texts[(s, h)] != base_text:
                hash_mismatches.append({
                    "tie_seed": s, "hash_seeds": [hash_seeds[0], h],
                    "why": "stripped record differs across "
                           "PYTHONHASHSEED — hash-order dependence"})
        # Tie axis: metrics section within the quantization envelope.
        for h in hash_seeds:
            var = json.loads(texts[(s, h)])
            use, use_key = _envelope_use(ref, var)
            if use > envelope_use:
                envelope_use, envelope_metric = use, use_key
            rows = compare_metrics(ref, var)
            if rows:
                for row in rows:
                    drifts.append({"tie_seed": s, "hash_seed": h, **row})
                blame = _blame_drift(
                    ref, var, f"{transport} tie_seed={s}")

    ok = not hash_mismatches and not drifts
    return {
        "transport": transport, "client": client, "rw": rw, "bs": bs,
        "numjobs": numjobs, "runtime": runtime,
        "seeds": list(seeds), "hash_seeds": list(hash_seeds),
        "n_runs": 1 + len(seeds) * len(hash_seeds),
        "reference_iops": float(
            ref.get("metrics", {}).get("result.iops", 0.0)),
        "envelope_use": envelope_use,
        "envelope_metric": envelope_metric,
        "hash_mismatches": hash_mismatches,
        "drifted_metrics": drifts,
        "blame": blame,
        "ok": ok,
    }


def run_sanitizer(
    transports: Sequence[str] = ("rdma", "tcp"),
    runtime: float = 0.02,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
) -> dict:
    """Sanitize the quick Fig. 5 cells; the ``repro-sanitize-v1`` doc."""
    cells = [sanitize_cell(t, runtime=runtime, seeds=seeds,
                           hash_seeds=hash_seeds)
             for t in transports]
    return {
        "format": SANITIZE_FORMAT,
        "tolerance": DEFAULT_TOLERANCE,
        "tail_tolerance": TAIL_TOLERANCE,
        "cells": cells,
        "ok": all(c["ok"] for c in cells),
    }


def render_sanitize(doc: dict) -> str:
    """Human-readable sanitizer report."""
    lines: List[str] = []
    for cell in doc.get("cells", []):
        status = "clean" if cell["ok"] else "RACE"
        lines.append(
            f"{cell['transport']}/{cell['client']} {cell['rw']} "
            f"bs={cell['bs']}: {status} — {cell['n_runs']} runs, "
            f"worst envelope use {cell['envelope_use'] * 100:.0f}% "
            f"({cell['envelope_metric'] or 'n/a'})")
        for m in cell["hash_mismatches"]:
            lines.append(f"  HASH RACE: tie_seed={m['tie_seed']} "
                         f"hash_seeds={m['hash_seeds']}: {m['why']}")
        for d in cell["drifted_metrics"][:10]:
            lines.append(
                f"  DRIFT: {d['metric']} {d['ref']} -> {d['var']} "
                f"(rel {d['rel']:.2e} > tol {d['tolerance']:.0e}) "
                f"[tie_seed={d['tie_seed']}]")
        for b in cell["blame"]:
            lines.append(
                f"  blame: {b['resource']} delta {b['delta']:+.3e} s "
                f"(wait {b['delta_wait']:+.3e}, "
                f"service {b['delta_service']:+.3e})")
    verdict = "ok" if doc.get("ok") else "VIRTUAL-TIME RACE DETECTED"
    lines.append(f"sanitize: {verdict}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker entry point (subprocess side)
# ---------------------------------------------------------------------------

def _worker_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.sanitizer",
        description="Worker mode: run one cell, print its stripped "
                    "canonical record on stdout.")
    parser.add_argument("--worker", action="store_true", required=True)
    parser.add_argument("--transport", required=True)
    parser.add_argument("--client", default="dpu")
    parser.add_argument("--rw", default="randread")
    parser.add_argument("--bs", type=int, default=4096)
    parser.add_argument("--numjobs", type=int, default=16)
    parser.add_argument("--runtime", type=float, default=0.02)
    parser.add_argument("--tie-seed", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.bench.ledger import canonical_json

    record = build_record(
        args.transport, client=args.client, rw=args.rw, bs=args.bs,
        numjobs=args.numjobs, runtime=args.runtime,
        tie_seed=args.tie_seed)
    sys.stdout.write(canonical_json(record) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(_worker_main())
