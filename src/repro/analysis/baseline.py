"""The committed suppression baseline for ``simlint``.

The baseline absorbs *intentional* rule violations — wall-clock reads
in the perf harness, ``sum()`` over values that are provably exact —
without letting new ones in.  Every entry carries a mandatory
``justification`` so the file reads as a decision log, and entries are
keyed on (rule, path, stripped line text) rather than line numbers so
unrelated edits above a suppressed line don't invalidate it.

The committed file lives at ``benchmarks/baselines/simlint.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.model import Finding

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_PATH",
    "Baseline",
]

BASELINE_FORMAT = "repro-lint-baseline-v1"

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE_PATH = "benchmarks/baselines/simlint.json"

_Key = Tuple[str, str, str]


def _canon_path(path: str) -> str:
    """Invocation-independent path key.

    Lint may be invoked as ``lint src/repro`` from the repo root or
    with an absolute path from anywhere; anchor the key at the package
    tree so both spell the same entry.
    """
    norm = os.path.normpath(path).replace("\\", "/")
    idx = norm.find("src/repro/")
    return norm[idx:] if idx >= 0 else norm.lstrip("./")


def _key(rule: str, path: str, line_text: str) -> _Key:
    return (rule, _canon_path(path), line_text.strip())


@dataclass(slots=True)
class Baseline:
    """An in-memory suppression baseline."""

    entries: Dict[_Key, str] = field(default_factory=dict)
    matched: Set[_Key] = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"{path}: not a {BASELINE_FORMAT} document "
                f"(format={doc.get('format')!r})")
        entries: Dict[_Key, str] = {}
        for ent in doc.get("entries", []):
            justification = str(ent.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"{path}: baseline entry for {ent.get('rule')} at "
                    f"{ent.get('path')} has no justification — every "
                    "suppression must say why")
            entries[_key(str(ent["rule"]), str(ent["path"]),
                         str(ent["line_text"]))] = justification
        return cls(entries=entries)

    def matches(self, finding: Finding) -> bool:
        """Whether the baseline absorbs this finding (and record it)."""
        k = _key(finding.rule, finding.path, finding.line_text)
        if k in self.entries:
            self.matched.add(k)
            return True
        return False

    def stale_entries(self) -> List[Dict[str, str]]:
        """Entries that matched nothing — candidates for removal."""
        return [
            {"rule": rule, "path": path, "line_text": text,
             "justification": self.entries[(rule, path, text)]}
            for rule, path, text in sorted(self.entries)
            if (rule, path, text) not in self.matched
        ]

    @staticmethod
    def write(path: str, findings: List[Finding],
              justification: str = "TODO: justify this suppression") -> None:
        """Write a baseline covering ``findings`` (for bootstrap)."""
        entries = [
            {"rule": f.rule, "path": _key(f.rule, f.path, "")[1],
             "line_text": f.line_text.strip(),
             "justification": justification}
            for f in sorted(findings,
                            key=lambda f: (f.path, f.line, f.rule))
        ]
        doc = {"format": BASELINE_FORMAT, "entries": entries}
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
