"""System-wide telemetry: one snapshot of every component's utilization.

Operating a storage system means knowing where the time went.  This
module walks an assembled :class:`~repro.core.ros2.Ros2System` and
produces a structured report — per-node CPU and lock utilizations, NIC
port throughput, NVMe device busy fractions, engine xstream load, data
plane counters, tenancy stats — the same numbers the benches used when
diagnosing bottlenecks, packaged as a public API (and a printable table).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

from repro.bench.report import Table

__all__ = ["SystemReport", "snapshot"]

GIB = 2**30


@dataclass
class NodeReport:
    """Utilization of one node's compute resources."""

    name: str
    cpu_utilization: float
    tcp_rx_utilization: float
    lock_utilization: Dict[str, float]
    dram_used_bytes: float
    port_tx_bytes: int
    port_rx_bytes: int


@dataclass
class DeviceReport:
    """One NVMe device's load."""

    index: int
    utilization: float
    read_bytes: int
    write_bytes: int


@dataclass
class SystemReport:
    """A full snapshot at one simulated instant."""

    now: float
    nodes: List[NodeReport] = field(default_factory=list)
    devices: List[DeviceReport] = field(default_factory=list)
    xstream_utilization: float = 0.0
    data_plane_read_bytes: int = 0
    data_plane_write_bytes: int = 0
    staged_peak_bytes: float = 0.0
    tenant_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def busiest_component(self) -> str:
        """Name of the most utilized station (a bottleneck hint)."""
        candidates = []
        for n in self.nodes:
            candidates.append((n.cpu_utilization, f"{n.name}.cpu"))
            candidates.append((n.tcp_rx_utilization, f"{n.name}.tcp_rx"))
            for lock, u in n.lock_utilization.items():
                candidates.append((u, f"{n.name}.lock.{lock}"))
        for d in self.devices:
            candidates.append((d.utilization, f"nvme{d.index}"))
        candidates.append((self.xstream_utilization, "engine.xstreams"))
        if not candidates:
            return "idle"
        return max(candidates)[1]

    def to_dict(self) -> dict:
        """The whole snapshot as plain dicts/lists (JSON-serialisable)."""
        d = asdict(self)
        d["busiest_component"] = self.busiest_component()
        return d

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (machine-readable telemetry)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """A printable multi-table report."""
        nodes = Table(f"Nodes @ t={self.now:.3f}s",
                      ["cpu", "tcp_rx", "hottest lock", "tx GiB", "rx GiB"],
                      row_header="node")
        for n in self.nodes:
            hottest = max(n.lock_utilization.items(), key=lambda kv: kv[1],
                          default=("-", 0.0))
            nodes.add_row(n.name, [
                f"{n.cpu_utilization * 100:.0f}%",
                f"{n.tcp_rx_utilization * 100:.0f}%",
                f"{hottest[0]} {hottest[1] * 100:.0f}%",
                f"{n.port_tx_bytes / GIB:.2f}",
                f"{n.port_rx_bytes / GIB:.2f}",
            ])
        devs = Table("NVMe devices", ["busy", "read GiB", "written GiB"],
                     row_header="device")
        for d in self.devices:
            devs.add_row(f"nvme{d.index}", [
                f"{d.utilization * 100:.0f}%",
                f"{d.read_bytes / GIB:.2f}",
                f"{d.write_bytes / GIB:.2f}",
            ])
        tail = (
            f"engine xstreams: {self.xstream_utilization * 100:.0f}% | "
            f"data plane: {self.data_plane_read_bytes / GIB:.2f} GiB read, "
            f"{self.data_plane_write_bytes / GIB:.2f} GiB written | "
            f"staging peak: {self.staged_peak_bytes / GIB:.3f} GiB\n"
            f"bottleneck hint: {self.busiest_component()}"
        )
        return nodes.render() + "\n\n" + devs.render() + "\n\n" + tail


def snapshot(system) -> SystemReport:
    """Collect a :class:`SystemReport` from a running Ros2System."""
    env = system.env
    report = SystemReport(now=env.now)
    seen = set()
    for node in [system.client_node, system.server_node, system.launcher_node]:
        if node.name in seen:
            continue
        seen.add(node.name)
        report.nodes.append(NodeReport(
            name=node.name,
            cpu_utilization=node.cpu.utilization(),
            tcp_rx_utilization=node.tcp_rx_cpu.utilization(),
            lock_utilization={
                name: sec.utilization() for name, sec in node._locks.items()
            },
            dram_used_bytes=node.dram.used_bytes,
            port_tx_bytes=node.port.bytes_sent(),
            port_rx_bytes=node.port.bytes_received(),
        ))
    for dev in system.server_node.nvme.devices:
        report.devices.append(DeviceReport(
            index=dev.index,
            utilization=dev.utilization(),
            read_bytes=dev.reads.bytes,
            write_bytes=dev.writes.bytes,
        ))
    report.xstream_utilization = system.engine.xstream_utilization()
    dp = system.service.data_plane
    report.data_plane_read_bytes = dp.reads.bytes
    report.data_plane_write_bytes = dp.writes.bytes
    report.staged_peak_bytes = dp.staged.peak
    report.tenant_stats = {
        name: dict(system.service.tenants._by_name[name].stats)
        for name in system.service.tenants.tenants()
    }
    return report
