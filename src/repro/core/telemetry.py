"""System-wide telemetry: snapshots *and* continuous time series.

Operating a storage system means knowing where the time went.  This
module walks an assembled :class:`~repro.core.ros2.Ros2System` and
produces a structured report — per-node CPU and lock utilizations, NIC
port throughput, NVMe device busy fractions, engine xstream load, data
plane counters, tenancy stats — the same numbers the benches used when
diagnosing bottlenecks, packaged as a public API (and a printable table).

On top of the point-in-time :class:`SystemReport`, :func:`observe`
attaches a :class:`~repro.sim.timeseries.Sampler` with the standard probe
set (CPU pools, Arm TCP-RX cores, lock sections, NVMe queue depth and
busy fraction, NIC occupancy and byte rates, engine xstreams, data-plane
staging and byte rates, in-flight RPCs), and :class:`SystemTimeline`
packages the final snapshot with the sampled curves and windowed
busiest-component attribution (warmup vs. steady state vs. drain) — the
view in which the paper's temporal phenomena, like the DPU Arm-RX
bottleneck of Fig. 5, actually show up.
"""

from __future__ import annotations

import json
from math import fsum
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.bench.report import Table
from repro.sim.timeseries import GAUGE, RATE, UTILIZATION, Sampler, StationStats

__all__ = [
    "SystemReport",
    "snapshot",
    "install_probes",
    "observe",
    "PhaseWindow",
    "SystemTimeline",
]

GIB = 2**30


@dataclass(slots=True)
class NodeReport:
    """Utilization of one node's compute resources."""

    name: str
    cpu_utilization: float
    tcp_rx_utilization: float
    lock_utilization: Dict[str, float]
    dram_used_bytes: float
    port_tx_bytes: int
    port_rx_bytes: int


@dataclass(slots=True)
class DeviceReport:
    """One NVMe device's load."""

    index: int
    utilization: float
    read_bytes: int
    write_bytes: int


@dataclass(slots=True)
class SystemReport:
    """A full snapshot at one simulated instant."""

    now: float
    nodes: List[NodeReport] = field(default_factory=list)
    devices: List[DeviceReport] = field(default_factory=list)
    xstream_utilization: float = 0.0
    data_plane_read_bytes: int = 0
    data_plane_write_bytes: int = 0
    staged_peak_bytes: float = 0.0
    tenant_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Kernel cost counters (DESIGN.md §9): total dispatched simulation
    #: events and recycled Timeout objects.  Dividing events by completed
    #: IOs gives the events/IO figure the perf harness gates on.
    sim_events_processed: int = 0
    sim_timeouts_recycled: int = 0
    #: Recovery counters (DESIGN.md §14): all zero unless a fault plan
    #: was installed, so no-fault reports are unchanged.
    retries: int = 0
    reconnects: int = 0
    degraded_reads: int = 0
    fault_downtime: float = 0.0

    def busiest_component(self) -> str:
        """Name of the most utilized station (a bottleneck hint).

        Deterministic: on equal utilization the lexicographically smallest
        name wins, and an all-idle report (every utilization zero) returns
        ``"idle"`` rather than an arbitrary max.
        """
        candidates = []
        for n in self.nodes:
            candidates.append((n.cpu_utilization, f"{n.name}.cpu"))
            candidates.append((n.tcp_rx_utilization, f"{n.name}.tcp_rx"))
            for lock, u in n.lock_utilization.items():
                candidates.append((u, f"{n.name}.lock.{lock}"))
        for d in self.devices:
            candidates.append((d.utilization, f"nvme{d.index}"))
        candidates.append((self.xstream_utilization, "engine.xstreams"))
        if not candidates:
            return "idle"
        best_util = max(u for u, _name in candidates)
        if best_util <= 0.0:
            return "idle"
        return min(name for u, name in candidates if u == best_util)

    def to_dict(self) -> dict:
        """The whole snapshot as plain dicts/lists (JSON-serialisable)."""
        d = asdict(self)
        d["busiest_component"] = self.busiest_component()
        return d

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (machine-readable telemetry)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """A printable multi-table report."""
        nodes = Table(f"Nodes @ t={self.now:.3f}s",
                      ["cpu", "tcp_rx", "hottest lock", "tx GiB", "rx GiB"],
                      row_header="node")
        for n in self.nodes:
            hottest = max(n.lock_utilization.items(), key=lambda kv: kv[1],
                          default=("-", 0.0))
            nodes.add_row(n.name, [
                f"{n.cpu_utilization * 100:.0f}%",
                f"{n.tcp_rx_utilization * 100:.0f}%",
                f"{hottest[0]} {hottest[1] * 100:.0f}%",
                f"{n.port_tx_bytes / GIB:.2f}",
                f"{n.port_rx_bytes / GIB:.2f}",
            ])
        devs = Table("NVMe devices", ["busy", "read GiB", "written GiB"],
                     row_header="device")
        for d in self.devices:
            devs.add_row(f"nvme{d.index}", [
                f"{d.utilization * 100:.0f}%",
                f"{d.read_bytes / GIB:.2f}",
                f"{d.write_bytes / GIB:.2f}",
            ])
        tail = (
            f"engine xstreams: {self.xstream_utilization * 100:.0f}% | "
            f"data plane: {self.data_plane_read_bytes / GIB:.2f} GiB read, "
            f"{self.data_plane_write_bytes / GIB:.2f} GiB written | "
            f"staging peak: {self.staged_peak_bytes / GIB:.3f} GiB\n"
            f"kernel: {self.sim_events_processed} events dispatched, "
            f"{self.sim_timeouts_recycled} timeouts recycled\n"
            f"bottleneck hint: {self.busiest_component()}"
        )
        if (self.retries or self.reconnects or self.degraded_reads
                or self.fault_downtime):
            tail += (
                f"\nrecovery: {self.retries} retries, "
                f"{self.reconnects} reconnects, "
                f"{self.degraded_reads} degraded reads, "
                f"{self.fault_downtime * 1e3:.2f} ms fault downtime"
            )
        return nodes.render() + "\n\n" + devs.render() + "\n\n" + tail


def snapshot(system) -> SystemReport:
    """Collect a :class:`SystemReport` from a running Ros2System."""
    env = system.env
    report = SystemReport(
        now=env.now,
        sim_events_processed=env.events_processed,
        sim_timeouts_recycled=env.timeouts_recycled,
    )
    seen = set()
    for node in [system.client_node, system.server_node, system.launcher_node]:
        if node.name in seen:
            continue
        seen.add(node.name)
        report.nodes.append(NodeReport(
            name=node.name,
            cpu_utilization=node.cpu.utilization(),
            tcp_rx_utilization=node.tcp_rx_cpu.utilization(),
            lock_utilization={
                name: sec.utilization() for name, sec in node._locks.items()
            },
            dram_used_bytes=node.dram.used_bytes,
            port_tx_bytes=node.port.bytes_sent(),
            port_rx_bytes=node.port.bytes_received(),
        ))
    for dev in system.server_node.nvme.devices:
        report.devices.append(DeviceReport(
            index=dev.index,
            utilization=dev.utilization(),
            read_bytes=dev.reads.bytes,
            write_bytes=dev.writes.bytes,
        ))
    report.xstream_utilization = system.engine.xstream_utilization()
    report.degraded_reads = system.engine.degraded_reads
    fx = env._faults
    if fx is not None:
        report.retries = fx.stats.retries
        report.reconnects = fx.stats.reconnects
        report.fault_downtime = fx.stats.fault_downtime
    dp = system.service.data_plane
    report.data_plane_read_bytes = dp.reads.bytes
    report.data_plane_write_bytes = dp.writes.bytes
    report.staged_peak_bytes = dp.staged.peak
    report.tenant_stats = {
        name: dict(system.service.tenants._by_name[name].stats)
        for name in system.service.tenants.tenants()
    }
    return report


# ---------------------------------------------------------------------------
# Continuous telemetry: the standard probe set + the timeline view
# ---------------------------------------------------------------------------

def install_probes(system, sampler: Sampler) -> Sampler:
    """Register the standard probe set for an assembled Ros2System.

    One call wires every station :func:`snapshot` reports — plus the
    queueing stations behind the Little's-law self-check — into
    ``sampler``:

    * per node: CPU-pool busy fraction, the restricted TCP-RX core set
      (the DPU's Arm RX path), every serialized section existing at
      attach time (``tcp_stack`` is pre-created so the hot one is never
      missed), NIC TX/RX occupancy and byte rates;
    * per NVMe device: busy fraction and queue depth (a
      :class:`~repro.sim.timeseries.StationStats` attached to the command
      queue, also checked against ``L = λW``);
    * engine: mean xstream busy fraction and the in-flight RPC station;
    * data plane: staged bytes and read/write byte rates;
    * client: the submission CPU-pool station.
    """
    seen = set()
    for node in [system.client_node, system.server_node, system.launcher_node]:
        if node.name in seen:
            continue
        seen.add(node.name)
        name = node.name
        cpu = node.cpu
        sampler.add_probe(f"{name}.cpu.busy",
                          lambda c=cpu: c.busy_time / c.n_cores,
                          kind=UTILIZATION, node=name)
        rx = node.tcp_rx_cpu
        sampler.add_probe(f"{name}.tcp_rx.busy",
                          lambda r=rx: r.busy_time / r.n_cores,
                          kind=UTILIZATION, node=name)
        node.lock("tcp_stack")  # ensure the hottest section exists
        for lname, sec in node._locks.items():
            sampler.add_probe(f"{name}.lock.{lname}.busy",
                              lambda s=sec: s.busy_time,
                              kind=UTILIZATION, node=name)
        port = getattr(node, "port", None)
        if port is not None:
            sampler.add_probe(f"{name}.nic.tx.busy",
                              lambda p=port: p.tx.busy_time,
                              kind=UTILIZATION, node=name)
            sampler.add_probe(f"{name}.nic.rx.busy",
                              lambda p=port: p.rx.busy_time,
                              kind=UTILIZATION, node=name)
            sampler.add_probe(f"{name}.nic.tx.bytes",
                              lambda p=port: float(p.bytes_sent()),
                              kind=RATE, unit="B/s", node=name)
            sampler.add_probe(f"{name}.nic.rx.bytes",
                              lambda p=port: float(p.bytes_received()),
                              kind=RATE, unit="B/s", node=name)

    server = system.server_node
    for dev in server.nvme.devices:
        dname = f"nvme{dev.index}"
        sampler.add_probe(f"{dname}.busy", lambda d=dev: d.busy_time,
                          kind=UTILIZATION, node=server.name)
        stats = StationStats(dname)
        dev.attach_stats(stats)
        sampler.add_station(dname, stats, node=server.name)

    engine = system.engine
    sampler.add_probe(
        "engine.xstreams.busy",
        lambda e=engine: fsum(t.xstream.busy_time for t in e.targets) / e.n_targets,
        kind=UTILIZATION, node=server.name,
    )
    rpc_stats = StationStats("engine.rpc")
    engine.rpc.attach_stats(rpc_stats)
    sampler.add_station("engine.rpc", rpc_stats, node=server.name)

    dp = system.service.data_plane
    cname = system.client_node.name
    sampler.add_probe(f"{cname}.dp.staged", lambda d=dp: d.staged.level,
                      kind=GAUGE, unit="bytes", node=cname)
    sampler.add_probe(f"{cname}.dp.read.bytes",
                      lambda d=dp: float(d.reads.bytes),
                      kind=RATE, unit="B/s", node=cname)
    sampler.add_probe(f"{cname}.dp.write.bytes",
                      lambda d=dp: float(d.writes.bytes),
                      kind=RATE, unit="B/s", node=cname)
    client_stats = StationStats(f"{cname}.cpu")
    system.client_node.cpu.attach_stats(client_stats)
    sampler.add_station(f"{cname}.cpu", client_stats, node=cname)
    return sampler


def observe(system, interval: float = 1e-4, capacity: int = 512) -> Sampler:
    """Attach and start the standard sampler on a running system.

    ``interval`` is the sampling period in simulated seconds; ``capacity``
    bounds every series (older windows merge pairwise past it).  Returns
    the started :class:`~repro.sim.timeseries.Sampler`.
    """
    sampler = Sampler(system.env, interval=interval, capacity=capacity)
    install_probes(system, sampler)
    return sampler.start()


@dataclass(slots=True)
class PhaseWindow:
    """One named slice of the run's timeline."""

    name: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class SystemTimeline:
    """A :class:`SystemReport` grown over time.

    Bundles the end-of-run snapshot with the sampled series and a phase
    decomposition (by default warmup → steady state → drain), answering
    the questions a single snapshot cannot: *when* did the bottleneck
    move, which component capped each phase, did queues drain.
    """

    def __init__(self, report: SystemReport, sampler: Sampler,
                 phases: Optional[List[PhaseWindow]] = None) -> None:
        self.report = report
        self.sampler = sampler
        self.phases: List[PhaseWindow] = phases or []

    def set_phases(self, warmup_end: float, steady_end: float,
                   t_end: Optional[float] = None) -> "SystemTimeline":
        """Standard three-phase decomposition of a bench run.

        ``[start, warmup_end]`` is warmup (setup, prefill, FIO ramp),
        ``[warmup_end, steady_end]`` the measured steady state, and
        ``[steady_end, t_end]`` the drain of in-flight operations.
        """
        t0 = self.sampler.t_start
        if t0 != t0:  # NaN — sampler never started
            t0 = 0.0
        end = self.sampler.env.now if t_end is None else t_end
        self.phases = [PhaseWindow("warmup", t0, warmup_end),
                       PhaseWindow("steady", warmup_end, steady_end)]
        if end > steady_end:
            self.phases.append(PhaseWindow("drain", steady_end, end))
        return self

    def busiest_by_phase(self) -> Dict[str, Dict[str, float]]:
        """Per-phase busiest component (utilization series only)."""
        out: Dict[str, Dict[str, float]] = {}
        for ph in self.phases:
            name, util = self.sampler.busiest(ph.t0, ph.t1)
            out[ph.name] = {"component": name, "utilization": util,
                            "t0": ph.t0, "t1": ph.t1}
        return out

    def littles_law(self, tolerance: float = 0.05,
                    min_arrivals: int = 50) -> Dict[str, dict]:
        """Delegate to :meth:`~repro.sim.timeseries.Sampler.littles_law`."""
        return self.sampler.littles_law(tolerance=tolerance,
                                        min_arrivals=min_arrivals)

    def series(self, name: str):
        """One sampled series by probe name."""
        return self.sampler.series[name]

    def to_dict(self) -> dict:
        return {
            "report": self.report.to_dict(),
            "phases": [asdict(p) for p in self.phases],
            "busiest_by_phase": self.busiest_by_phase(),
            "littles_law": self.littles_law(),
            "sampler": self.sampler.to_dict(),
        }

    def render(self) -> str:
        """Printable phase-attribution + Little's-law tables."""
        phases = Table("Timeline — busiest component per phase",
                       ["window [s]", "component", "mean util"],
                       row_header="phase")
        for ph in self.phases:
            name, util = self.sampler.busiest(ph.t0, ph.t1)
            phases.add_row(ph.name, [
                f"{ph.t0:.4f}..{ph.t1:.4f}",
                name,
                f"{util * 100:.0f}%",
            ])
        law = Table("Little's law self-check (L = λW per station)",
                    ["L sampled", "λ [1/s]", "W [us]", "λW", "rel err"],
                    row_header="station")
        for name, row in self.littles_law().items():
            law.add_row(name + ("" if row["checked"] else " (unchecked)"), [
                f"{row['L_sampled']:.3f}",
                f"{row['lambda']:.0f}",
                f"{row['W'] * 1e6:.2f}",
                f"{row['lambda_W']:.3f}",
                f"{row['rel_err'] * 100:.1f}%",
            ])
        return phases.render() + "\n\n" + law.render()
