"""ROS2 system assembly: one call builds any evaluated configuration.

:class:`Ros2Config` names the axes the paper sweeps — transport (TCP vs
RDMA provider), client placement (host vs BlueField-3), SSD count — plus
the reproduction's functional knobs (data mode, encryption, tenancy).
:class:`Ros2System` wires the testbed, the unmodified DAOS engine, the
control plane, and the offloaded client service together (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.control_plane import GrpcChannel
from repro.core.offload import Ros2ClientService, Ros2Session
from repro.daos.client import DaosClient
from repro.daos.dfs import DfsNamespace
from repro.daos.engine import DaosEngine
from repro.daos.types import ContainerId, PoolId
from repro.hw.platform import ClusterTopology, make_paper_testbed
from repro.net.fabric import Fabric, FabricChannel, ProviderInfo, resolve_provider
from repro.sim.core import Environment, Event

__all__ = ["Ros2Config", "Ros2System"]


@dataclass(slots=True)
class Ros2Config:
    """One point in the paper's configuration space."""

    #: Data-plane provider: "rdma"/"tcp" aliases or a full provider name
    #: (ucx+rc, ucx+dc_x, ofi+verbs;ofi_rxm, ucx+tcp, ofi+tcp;ofi_rxm).
    transport: str = "rdma"
    #: Where the DFS client runs: "host" (EPYC) or "dpu" (BlueField-3).
    client: str = "host"
    #: NVMe SSDs behind the engine (the paper uses 1 and 4).
    n_ssds: int = 1
    #: Engine targets (default: 8 per SSD).
    n_targets: Optional[int] = None
    #: Carry real bytes end-to-end (tests/examples) or virtual payloads
    #: (performance benches).
    data_mode: bool = False


class Ros2System:
    """The assembled ROS2 deployment (paper Fig. 2)."""

    def __init__(self, env: Environment, config: Optional[Ros2Config] = None) -> None:
        self.env = env
        self.config = config or Ros2Config()
        self.provider: ProviderInfo = resolve_provider(self.config.transport)
        self.topology: ClusterTopology = make_paper_testbed(
            env, client=self.config.client, n_ssds=self.config.n_ssds
        )
        self.fabric = Fabric(env)
        self.engine = DaosEngine(
            self.topology.server,
            n_targets=self.config.n_targets,
            data_mode=self.config.data_mode,
        )
        self.pool: PoolId = self.engine.create_pool()
        self.container: Optional[ContainerId] = None
        self.service = Ros2ClientService(self)
        self._grpc: Optional[GrpcChannel] = None
        self._started = False

    # -- topology sugar ------------------------------------------------------------
    @property
    def client_node(self):
        """The node the DFS client runs on (DPU in offload mode)."""
        return self.topology.client

    @property
    def server_node(self):
        """The storage server."""
        return self.topology.server

    @property
    def launcher_node(self):
        """The x86 host that launches jobs (== client node in host mode)."""
        return self.topology.launcher

    def new_data_channel(self) -> FabricChannel:
        """A fresh data-plane channel (own PD/QP per session) served by the engine."""
        ch = self.fabric.connect(self.client_node, self.server_node, self.provider.name)
        self.engine.serve(ch)
        return ch

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> Generator[Event, None, "Ros2System"]:
        """Bootstrap (run as a process): create + format the shared DFS
        container, then bring up the control plane."""
        if self._started:
            return self
        bootstrap_channel = self.new_data_channel()
        daos = DaosClient(
            self.client_node, bootstrap_channel, data_mode=self.config.data_mode
        )
        ctx = daos.new_context("bootstrap")
        pool_handle = yield from daos.connect_pool(ctx, self.pool)
        cont = yield from pool_handle.create_container(ctx)
        self.container = cont.cont
        ns = DfsNamespace(daos, cont)
        yield from ns.format(ctx)

        # Control plane: launcher <-> client-node service, always gRPC/TCP
        # (loopback when the client runs on the launcher host itself).
        self._grpc = GrpcChannel(self.launcher_node, self.client_node).start()
        self._grpc.bind(self.service.grpc)
        self._started = True
        return self

    def register_tenant(self, name: str, **policy) -> str:
        """Admin-plane tenant registration; returns the bearer token.

        ``policy`` forwards to :meth:`repro.core.tenant.TenantManager.register`
        (ops_per_sec, bytes_per_sec, rkey_ttl, crypto_key, ...).
        """
        return self.service.tenants.register(name, **policy).token

    def open_session(self, token: str) -> Generator[Event, None, Ros2Session]:
        """Launcher-side session open (gRPC OpenSession + mount)."""
        if not self._started:
            raise RuntimeError("system not started; run start() first")
        response = yield from self._grpc.unary(
            "ros2.Control", "OpenSession", {}, metadata={"authorization": token}
        )
        return Ros2Session(self._grpc, self.service, response["session_id"], token)
