"""Per-tenant queues: start-time fair queueing on the DPU data plane.

The discussion (§5) credits the offload with "multi-tenant control
(dedicated QPs/PDs, per-tenant queues and rate limits)" and names
"multi-tenant scheduling and fairness on the DPU" as follow-up work.
Token buckets (:mod:`repro.core.tenant`) implement the *rate-limit* half;
this module implements the *queues* half: a work-conserving weighted fair
scheduler in front of the shared data-plane capacity.

The algorithm is textbook SFQ (start-time fair queueing):

* each request gets a start tag ``S = max(V, F_tenant)`` and a finish tag
  ``F = S + size / weight``;
* the dispatcher serves pending requests in increasing finish-tag order
  at the configured aggregate rate;
* virtual time ``V`` tracks the start tag of the request in service, so
  an idle tenant's unused share redistributes instantly (work
  conservation) and a returning tenant cannot claim back-credit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Generator

from repro.sim.core import Environment, Event

__all__ = ["QosScheduler"]


class QosScheduler:
    """Weighted fair sharing of one data-plane capacity across tenants."""

    def __init__(self, env: Environment, capacity_bytes_per_sec: float) -> None:
        if capacity_bytes_per_sec <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_bytes_per_sec}"
            )
        self.env = env
        self.capacity = float(capacity_bytes_per_sec)
        self._weights: Dict[str, float] = {}
        self._finish: Dict[str, float] = {}  # per-tenant last finish tag
        self._vtime = 0.0
        self._pending: list = []  # heap of (finish_tag, seq, nbytes, event)
        self._seq = itertools.count()
        self._dispatcher_running = False
        self.served_bytes: Dict[str, int] = {}

    def set_weight(self, tenant: str, weight: float) -> None:
        """Configure a tenant's share weight (default 1.0)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._weights[tenant] = float(weight)

    def weight_of(self, tenant: str) -> float:
        """The tenant's configured weight (1.0 unless set)."""
        return self._weights.get(tenant, 1.0)

    def submit(self, tenant: str, nbytes: int) -> Generator[Event, None, None]:
        """Queue one payload; completes when its share has been served."""
        if nbytes <= 0:
            raise ValueError(f"payload must be positive, got {nbytes}")
        start = max(self._vtime, self._finish.get(tenant, 0.0))
        finish = start + nbytes / self.weight_of(tenant)
        self._finish[tenant] = finish
        done = self.env.event()
        heapq.heappush(
            self._pending, (finish, next(self._seq), tenant, nbytes, done)
        )
        if not self._dispatcher_running:
            self._dispatcher_running = True
            self.env.process(self._dispatch(), name="qos-dispatch")
        yield done

    def _dispatch(self):
        while self._pending:
            finish, _seq, tenant, nbytes, done = heapq.heappop(self._pending)
            # Virtual time advances to the in-service request's start tag.
            self._vtime = max(self._vtime, finish - nbytes / self.weight_of(tenant))
            yield self.env.timeout(nbytes / self.capacity)
            self.served_bytes[tenant] = self.served_bytes.get(tenant, 0) + nbytes
            done.succeed()
        self._dispatcher_running = False

    # -- reporting ---------------------------------------------------------
    def shares(self) -> Dict[str, float]:
        """Fraction of served bytes per tenant."""
        total = sum(self.served_bytes.values())
        if not total:
            return {}
        return {t: b / total for t, b in self.served_bytes.items()}

    @staticmethod
    def jain_index(values) -> float:
        """Jain's fairness index of a set of allocations (1.0 = perfectly fair)."""
        values = [v for v in values if v >= 0]
        if not values or sum(values) == 0:
            return 1.0
        s1 = sum(values)
        s2 = sum(v * v for v in values)
        return (s1 * s1) / (len(values) * s2)
