"""ROS2: the RDMA-first, SmartNIC-offloaded object-storage client (the
paper's contribution, §3).

* :mod:`repro.core.control_plane` — the gRPC-style control plane: session
  setup, authentication, namespace/DFS metadata operations, capability
  exchange (§3.2 "control plane").
* :mod:`repro.core.data_plane` — the high-throughput data plane: fabric
  binding, DPU DRAM buffer staging, per-I/O accounting (§3.2 "data plane").
* :mod:`repro.core.offload` — POSIX-on-DPU: the DFS client service
  resident on the BlueField-3, which the host only launches jobs against.
* :mod:`repro.core.tenant` — multi-tenant isolation: per-tenant protection
  domains/QPs, short-lived scoped rkeys, token-bucket rate limits (§2.3,
  §5).
* :mod:`repro.core.inline` — DPU-resident inline services: ChaCha20
  encryption/decryption close to the NIC (§ Abstract, §5).
* :mod:`repro.core.gpudirect` — the optional GPUDirect RDMA placement
  extension (§3.5), implemented so it can be measured.
* :mod:`repro.core.ros2` — system assembly: one call builds the paper's
  testbed in any evaluated configuration.
"""

from repro.core.control_plane import (
    GrpcChannel,
    GrpcError,
    GrpcServer,
    StatusCode,
)
from repro.core.data_plane import DataPlane
from repro.core.gpudirect import GpuDirectPath, StagedGpuPath
from repro.core.inline import ChaCha20, InlineCrypto
from repro.core.offload import Ros2ClientService, Ros2Session
from repro.core.qos import QosScheduler
from repro.core.ros2 import Ros2Config, Ros2System
from repro.core.telemetry import SystemReport, snapshot
from repro.core.tenant import RateLimitExceeded, TenantManager, TokenBucket

__all__ = [
    "ChaCha20",
    "DataPlane",
    "GpuDirectPath",
    "GrpcChannel",
    "GrpcError",
    "GrpcServer",
    "InlineCrypto",
    "QosScheduler",
    "RateLimitExceeded",
    "Ros2ClientService",
    "Ros2Config",
    "Ros2Session",
    "Ros2System",
    "snapshot",
    "StagedGpuPath",
    "StatusCode",
    "SystemReport",
    "TenantManager",
    "TokenBucket",
]
