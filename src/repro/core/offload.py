"""POSIX-on-DPU: the offloaded DFS client service and its sessions.

This is the heart of ROS2 (§3.2): the DFS client stack (libdaos/libdfs)
executes on the client node — the BlueField-3 in offload mode, the host
otherwise — while the host "only launches jobs and observes results".

* The **control plane** (:class:`Ros2ClientService` gRPC methods) carries
  session setup/authentication, mount/open/close, directory operations
  and capability exchange from the launcher to the service.
* The **data plane** (:meth:`Ros2ClientService.io_read` /
  :meth:`io_write`, reached through a session's :class:`Ros2DataPort`)
  runs entirely on the client node: tenant admission, DRAM staging,
  optional inline encryption, then the DFS/DAOS RPC + bulk machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.core.control_plane import GrpcChannel, GrpcError, GrpcServer, StatusCode
from repro.core.data_plane import DataPlane
from repro.core.inline import InlineCrypto
from repro.core.tenant import AuthError, Tenant, TenantManager
from repro.daos.client import ContainerHandle, DaosClient
from repro.daos.dfs import DfsFile, DfsNamespace
from repro.daos.types import DaosError
from repro.sim.core import Environment, Event
from repro.storage.context import JobThread

__all__ = ["Ros2ClientService", "Ros2Session", "Ros2DataPort"]

_session_seq = itertools.count(1)
_fh_seq = itertools.count(10)

SERVICE = "ros2.Control"


@dataclass(slots=True)
class _SessionState:
    session_id: int
    tenant: Tenant
    daos: DaosClient
    cont: ContainerHandle
    ns: DfsNamespace
    svc_ctx: JobThread
    crypto: Optional[InlineCrypto] = None
    files: Dict[int, DfsFile] = field(default_factory=dict)


class Ros2ClientService:
    """The DFS client service resident on the client node (host or DPU)."""

    def __init__(self, system) -> None:
        """``system`` is the owning :class:`~repro.core.ros2.Ros2System`."""
        self.system = system
        self.node = system.client_node
        self.env: Environment = self.node.env
        self.tenants = TenantManager(self.env)
        self.data_plane = DataPlane(self.node, system.config.transport)
        self.grpc = GrpcServer(self.node)
        self.sessions: Dict[int, _SessionState] = {}
        #: Optional per-tenant weighted fair scheduler (§5 "per-tenant
        #: queues"); see :meth:`enable_qos`.
        self.qos = None
        self._register_methods()

    def enable_qos(self, capacity_bytes_per_sec: float,
                   weights: Optional[Dict[str, float]] = None):
        """Turn on weighted fair queueing over the data-plane capacity."""
        from repro.core.qos import QosScheduler

        self.qos = QosScheduler(self.env, capacity_bytes_per_sec)
        for tenant, weight in (weights or {}).items():
            self.qos.set_weight(tenant, weight)
        return self.qos

    # -- gRPC surface -----------------------------------------------------------
    def _register_methods(self) -> None:
        add = self.grpc.add_method
        add(SERVICE, "OpenSession", self._m_open_session)
        add(SERVICE, "CloseSession", self._m_close_session)
        add(SERVICE, "Mkdir", self._m_mkdir)
        add(SERVICE, "CreateFile", self._m_create_file)
        add(SERVICE, "OpenFile", self._m_open_file)
        add(SERVICE, "CloseFile", self._m_close_file)
        add(SERVICE, "Readdir", self._m_readdir)
        add(SERVICE, "Stat", self._m_stat)
        add(SERVICE, "Unlink", self._m_unlink)
        add(SERVICE, "Rename", self._m_rename)
        add(SERVICE, "GetCaps", self._m_get_caps)

    def _auth(self, metadata: Dict[str, Any]) -> Tenant:
        token = metadata.get("authorization")
        if not token:
            raise GrpcError(StatusCode.UNAUTHENTICATED, "missing bearer token")
        try:
            return self.tenants.authenticate(token)
        except AuthError as exc:
            raise GrpcError(StatusCode.UNAUTHENTICATED, str(exc)) from exc

    def _session(self, metadata: Dict[str, Any], request: Any) -> _SessionState:
        tenant = self._auth(metadata)
        sid = (request or {}).get("session_id")
        state = self.sessions.get(sid)
        if state is None:
            raise GrpcError(StatusCode.NOT_FOUND, f"unknown session {sid}")
        if state.tenant is not tenant:
            raise GrpcError(
                StatusCode.PERMISSION_DENIED, "session belongs to another tenant"
            )
        return state

    def _m_open_session(self, request, metadata):
        """Authenticate, connect a dedicated data channel, mount the FS.

        Each session gets its own fabric channel — on verbs providers that
        is a fresh protection domain + QP pair, the per-tenant isolation
        §2.3 calls for.
        """
        tenant = self._auth(metadata)
        channel = self.system.new_data_channel()
        daos = DaosClient(
            self.node, channel, data_mode=self.system.config.data_mode
        )
        svc_ctx = daos.new_context(f"{self.node.name}.ros2.svc")
        pool_handle = yield from daos.connect_pool(svc_ctx, self.system.pool)
        cont = yield from pool_handle.open_container(svc_ctx, self.system.container)
        ns = DfsNamespace(daos, cont)
        yield from ns.mount(svc_ctx)
        crypto = None
        if tenant.crypto_key is not None:
            crypto = InlineCrypto(self.node, tenant.crypto_key)
        sid = next(_session_seq)
        self.sessions[sid] = _SessionState(
            session_id=sid, tenant=tenant, daos=daos, cont=cont, ns=ns,
            svc_ctx=svc_ctx, crypto=crypto,
        )
        return {"session_id": sid, "chunk_size": ns.chunk_size,
                "provider": self.system.provider.name}

    def _m_close_session(self, request, metadata):
        state = self._session(metadata, request)
        yield self.env.timeout(0)
        state.files.clear()
        del self.sessions[state.session_id]
        return {}

    def _wrap_fs_errors(self, gen):
        """Map POSIX errors from DFS into gRPC status codes."""
        try:
            result = yield from gen
        except FileNotFoundError as exc:
            raise GrpcError(StatusCode.NOT_FOUND, str(exc)) from exc
        except FileExistsError as exc:
            raise GrpcError(StatusCode.ALREADY_EXISTS, str(exc)) from exc
        except (NotADirectoryError, IsADirectoryError, ValueError) as exc:
            raise GrpcError(StatusCode.INVALID_ARGUMENT, str(exc)) from exc
        except (OSError, DaosError) as exc:
            raise GrpcError(StatusCode.FAILED_PRECONDITION, str(exc)) from exc
        return result

    def _m_mkdir(self, request, metadata):
        s = self._session(metadata, request)
        yield from self._wrap_fs_errors(s.ns.mkdir(s.svc_ctx, request["path"]))
        return {}

    def _m_create_file(self, request, metadata):
        s = self._session(metadata, request)
        f = yield from self._wrap_fs_errors(
            s.ns.create(s.svc_ctx, request["path"], request.get("chunk_size"))
        )
        fh = next(_fh_seq)
        s.files[fh] = f
        return {"fh": fh, "chunk_size": f.chunk_size}

    def _m_open_file(self, request, metadata):
        s = self._session(metadata, request)
        f = yield from self._wrap_fs_errors(s.ns.open(s.svc_ctx, request["path"]))
        fh = next(_fh_seq)
        s.files[fh] = f
        return {"fh": fh, "chunk_size": f.chunk_size}

    def _m_close_file(self, request, metadata):
        s = self._session(metadata, request)
        yield self.env.timeout(0)
        if s.files.pop(request.get("fh"), None) is None:
            raise GrpcError(StatusCode.NOT_FOUND, f"unknown fh {request.get('fh')}")
        return {}

    def _m_readdir(self, request, metadata):
        s = self._session(metadata, request)
        names = yield from self._wrap_fs_errors(s.ns.readdir(s.svc_ctx, request["path"]))
        return {"names": names}

    def _m_stat(self, request, metadata):
        s = self._session(metadata, request)
        info = yield from self._wrap_fs_errors(s.ns.stat(s.svc_ctx, request["path"]))
        return {"type": info["type"], "size": info["size"],
                "chunk_size": info.get("chunk_size")}

    def _m_unlink(self, request, metadata):
        s = self._session(metadata, request)
        yield from self._wrap_fs_errors(s.ns.unlink(s.svc_ctx, request["path"]))
        return {}

    def _m_rename(self, request, metadata):
        s = self._session(metadata, request)
        yield from self._wrap_fs_errors(
            s.ns.rename(s.svc_ctx, request["old"], request["new"])
        )
        return {}

    def _m_get_caps(self, request, metadata):
        """Capability exchange: mint a scoped window descriptor (§3.2)."""
        s = self._session(metadata, request)
        length = int(request.get("length", 0))
        if length <= 0:
            raise GrpcError(StatusCode.INVALID_ARGUMENT, f"bad length {length}")
        yield self.env.timeout(0)
        region = self.tenants.scoped_window(
            s.tenant, s.daos.channel, self.node.name, length
        )
        return {"region": region, "ttl": s.tenant.rkey_ttl}

    # -- data plane (local to the client node) ------------------------------------
    def _state_for_io(self, session_id: int, fh: int) -> _SessionState:
        state = self.sessions.get(session_id)
        if state is None:
            raise KeyError(f"unknown session {session_id}")
        if fh not in state.files:
            raise KeyError(f"unknown fh {fh} in session {session_id}")
        return state

    def io_write(
        self,
        ctx: JobThread,
        session_id: int,
        fh: int,
        offset: int,
        nbytes: Optional[int] = None,
        data: Optional[bytes] = None,
        trace=None,
    ) -> Generator[Event, None, None]:
        """One data-plane write: admit -> schedule -> stage -> (encrypt) -> DFS."""
        state = self._state_for_io(session_id, fh)
        if nbytes is None:
            if data is None:
                raise ValueError("io_write needs data or an explicit nbytes")
            nbytes = len(data)
        node = self.node.name
        span = trace.child("dp.admit", node=node, nbytes=nbytes) if trace is not None else None
        yield from self.tenants.admit(state.tenant, nbytes)
        if span is not None:
            span.finish()
        if self.qos is not None:
            span = trace.child("dp.qos", node=node, nbytes=nbytes) if trace is not None else None
            yield from self.qos.submit(state.tenant.name, nbytes)
            if span is not None:
                span.finish()
        alloc = yield from self.data_plane.stage(nbytes, trace=trace)
        try:
            if state.crypto is not None:
                span = trace.child("dp.crypto", node=node, nbytes=nbytes) if trace is not None else None
                data = yield from state.crypto.crypt(ctx, offset, data, nbytes)
                if span is not None:
                    span.finish()
            yield from state.files[fh].write(ctx, offset, nbytes=nbytes, data=data,
                                             trace=trace)
        finally:
            self.data_plane.release(alloc)
        self.data_plane.record_write(nbytes)

    def io_read(
        self,
        ctx: JobThread,
        session_id: int,
        fh: int,
        offset: int,
        nbytes: int,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """One data-plane read: admit -> schedule -> stage -> DFS -> (decrypt)."""
        state = self._state_for_io(session_id, fh)
        node = self.node.name
        span = trace.child("dp.admit", node=node, nbytes=nbytes) if trace is not None else None
        yield from self.tenants.admit(state.tenant, nbytes)
        if span is not None:
            span.finish()
        if self.qos is not None:
            span = trace.child("dp.qos", node=node, nbytes=nbytes) if trace is not None else None
            yield from self.qos.submit(state.tenant.name, nbytes)
            if span is not None:
                span.finish()
        alloc = yield from self.data_plane.stage(nbytes, trace=trace)
        try:
            data = yield from state.files[fh].read(ctx, offset, nbytes, trace=trace)
            if state.crypto is not None:
                span = trace.child("dp.crypto", node=node, nbytes=nbytes) if trace is not None else None
                data = yield from state.crypto.crypt(ctx, offset, data, nbytes)
                if span is not None:
                    span.finish()
        finally:
            self.data_plane.release(alloc)
        self.data_plane.record_read(nbytes)
        return data


class Ros2DataPort:
    """Data-plane access for workloads running on the client node.

    In the paper's setup FIO runs *on the DPU* alongside the DFS client;
    the port models that locality: contexts are job threads on the client
    node, and calls go straight into the service (no network hop)."""

    def __init__(self, service: Ros2ClientService, session_id: int) -> None:
        self.service = service
        self.session_id = session_id
        self._threads = 0

    def new_context(self, name: Optional[str] = None) -> JobThread:
        """One workload job thread on the client node."""
        self._threads += 1
        node = self.service.node
        return JobThread(
            node.env,
            name or f"{node.name}.ros2.job{self._threads}",
            factor=node.spec.cycle_factor,
        )

    def write(self, ctx, fh, offset, nbytes=None, data=None, trace=None):
        """POSIX pwrite through the offloaded client."""
        return self.service.io_write(ctx, self.session_id, fh, offset, nbytes, data,
                                     trace=trace)

    def read(self, ctx, fh, offset, nbytes, trace=None):
        """POSIX pread through the offloaded client."""
        return self.service.io_read(ctx, self.session_id, fh, offset, nbytes,
                                    trace=trace)


class Ros2Session:
    """The launcher-side session handle (all calls ride the gRPC channel)."""

    def __init__(self, channel: GrpcChannel, service: Ros2ClientService,
                 session_id: int, token: str) -> None:
        self.channel = channel
        self.service = service
        self.session_id = session_id
        self._md = {"authorization": token}

    def _call(self, method: str, request: Dict[str, Any]):
        request = dict(request)
        request["session_id"] = self.session_id
        return self.channel.unary(SERVICE, method, request, metadata=self._md)

    def mkdir(self, path: str):
        """Create a directory."""
        return self._call("Mkdir", {"path": path})

    def create(self, path: str, chunk_size: Optional[int] = None
               ) -> Generator[Event, None, int]:
        """Create a file; returns its file handle."""
        r = yield from self._call("CreateFile", {"path": path, "chunk_size": chunk_size})
        return r["fh"]

    def open(self, path: str) -> Generator[Event, None, int]:
        """Open a file; returns its file handle."""
        r = yield from self._call("OpenFile", {"path": path})
        return r["fh"]

    def close(self, fh: int):
        """Close a file handle."""
        return self._call("CloseFile", {"fh": fh})

    def readdir(self, path: str) -> Generator[Event, None, list]:
        """List a directory."""
        r = yield from self._call("Readdir", {"path": path})
        return r["names"]

    def stat(self, path: str) -> Generator[Event, None, Dict[str, Any]]:
        """Stat a path."""
        return (yield from self._call("Stat", {"path": path}))

    def unlink(self, path: str):
        """Remove a file or empty directory."""
        return self._call("Unlink", {"path": path})

    def rename(self, old: str, new: str):
        """Atomically move an entry."""
        return self._call("Rename", {"old": old, "new": new})

    def get_caps(self, length: int) -> Generator[Event, None, Dict[str, Any]]:
        """Capability exchange: a scoped memory-window descriptor."""
        return (yield from self._call("GetCaps", {"length": length}))

    def close_session(self):
        """Tear the session down."""
        return self._call("CloseSession", {})

    def data_port(self) -> Ros2DataPort:
        """Data-plane port for workloads colocated with the client."""
        return Ros2DataPort(self.service, self.session_id)
