"""The gRPC-style control plane.

ROS2 splits a lightweight control plane from the data plane (§3.1): gRPC
carries session setup, authentication, mount/open/close, directory
operations and capability exchange — "control messages are few and
latency-insensitive relative to bulk I/O" (§3.2).  Accordingly this layer
always rides the kernel-TCP transport (gRPC is HTTP/2 over TCP) no matter
which provider the data plane uses.

The surface mimics gRPC's shape: named services with unary methods,
metadata (where the bearer token rides), and status codes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.hw.platform import ComputeNode
from repro.net.message import Message
from repro.net.tcp import TcpConnection, TcpStack
from repro.sim.core import Environment, Event, Process

__all__ = ["StatusCode", "GrpcError", "GrpcServer", "GrpcChannel"]

#: Typical unary-call frame sizes (HTTP/2 headers + protobuf body).
REQUEST_BYTES = 256
RESPONSE_BYTES = 192


class StatusCode(enum.Enum):
    """The gRPC status codes this stack uses."""

    OK = 0
    UNAUTHENTICATED = 16
    PERMISSION_DENIED = 7
    NOT_FOUND = 5
    ALREADY_EXISTS = 6
    INVALID_ARGUMENT = 3
    RESOURCE_EXHAUSTED = 8
    FAILED_PRECONDITION = 9
    INTERNAL = 13
    UNIMPLEMENTED = 12


class GrpcError(RuntimeError):
    """A non-OK unary response, raised client-side."""

    def __init__(self, code: StatusCode, detail: str = "") -> None:
        super().__init__(f"{code.name}: {detail}")
        self.code = code
        self.detail = detail


class GrpcServer:
    """A control-plane server hosting named services."""

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.env: Environment = node.env
        self._methods: Dict[Tuple[str, str], Callable] = {}
        self._interceptors: list = []
        self.calls_served = 0

    def add_method(self, service: str, method: str, handler: Callable) -> None:
        """Register ``handler(request, metadata) -> generator`` for a method."""
        key = (service, method)
        if key in self._methods:
            raise ValueError(f"duplicate method {service}/{method}")
        self._methods[key] = handler

    def add_interceptor(self, fn: Callable) -> None:
        """Add ``fn(service, method, metadata)`` raising GrpcError to reject."""
        self._interceptors.append(fn)

    def methods(self) -> list:
        """Registered (service, method) pairs."""
        return sorted(self._methods)

    def serve(self, conn: TcpConnection) -> Process:
        """Service unary calls arriving on ``conn``."""
        return self.env.process(self._loop(conn), name="grpc-server")

    def _loop(self, conn: TcpConnection):
        name = self.node.name
        while True:
            msg = yield conn.recv(name)
            if msg.kind == "grpc.shutdown":
                return
            if msg.kind != "grpc.req":
                continue
            self.env.process(self._dispatch(conn, msg), name="grpc-call")

    def _dispatch(self, conn: TcpConnection, msg: Message):
        body = msg.payload
        service, method = body["service"], body["method"]
        metadata = body.get("metadata", {})
        handler = self._methods.get((service, method))

        def reply(code: StatusCode, response: Any = None, detail: str = ""):
            return conn.send(msg.reply_to(
                kind="grpc.rep",
                payload={"code": code, "response": response, "detail": detail},
                nbytes=RESPONSE_BYTES,
            ))

        if handler is None:
            yield from reply(StatusCode.UNIMPLEMENTED, detail=f"{service}/{method}")
            return
        try:
            for interceptor in self._interceptors:
                interceptor(service, method, metadata)
            response = yield from handler(body.get("request"), metadata)
        except GrpcError as exc:
            yield from reply(exc.code, detail=exc.detail)
            return
        self.calls_served += 1
        yield from reply(StatusCode.OK, response=response)


class GrpcChannel:
    """A client channel to one control-plane server."""

    _tags = itertools.count(1)

    #: One-way latency of a loopback (same-node) unary call.
    LOOPBACK_LATENCY = 12e-6

    def __init__(
        self,
        node: ComputeNode,
        server_node: ComputeNode,
        client_stack: Optional[TcpStack] = None,
        server_stack: Optional[TcpStack] = None,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.server_name = server_node.name
        #: Same-node deployments (client service on the host itself) use a
        #: loopback call path instead of the switch.
        self.local = node.name == server_node.name
        self.conn: Optional[TcpConnection] = None
        self._local_server: Optional[GrpcServer] = None
        if not self.local:
            self._client_stack = client_stack or TcpStack(node)
            self._server_stack = server_stack or TcpStack(server_node)
            self.conn = self._client_stack.connect(self._server_stack)
        self._pending: Dict[int, Event] = {}
        self._demux: Optional[Process] = None
        #: Metadata attached to every call (bearer token etc.).
        self.default_metadata: Dict[str, Any] = {}

    def bind(self, server: GrpcServer) -> "GrpcChannel":
        """Attach the server side: loopback dispatch locally, TCP otherwise."""
        if self.local:
            self._local_server = server
        else:
            server.serve(self.conn)
        return self

    def start(self) -> "GrpcChannel":
        """Spawn the response demultiplexer (no-op for loopback channels)."""
        if not self.local and self._demux is None:
            self._demux = self.env.process(self._demux_loop(), name="grpc-demux")
        return self

    def _demux_loop(self):
        name = self.node.name
        while True:
            msg = yield self.conn.recv(name)
            waiter = self._pending.pop(msg.tag, None)
            if waiter is not None:
                waiter.succeed(msg)

    def unary(
        self,
        service: str,
        method: str,
        request: Any = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Generator[Event, None, Any]:
        """One unary call; returns the response or raises GrpcError."""
        if self.local:
            return (yield from self._unary_local(service, method, request, metadata))
        if self._demux is None:
            raise RuntimeError("channel not started; call start() first")
        tag = next(GrpcChannel._tags)
        done = self.env.event()
        self._pending[tag] = done
        md = dict(self.default_metadata)
        if metadata:
            md.update(metadata)
        yield from self.conn.send(Message(
            src=self.node.name,
            dst=self.server_name,
            kind="grpc.req",
            tag=tag,
            payload={"service": service, "method": method,
                     "request": request, "metadata": md},
            nbytes=REQUEST_BYTES,
        ))
        reply = yield done
        body = reply.payload
        if body["code"] is not StatusCode.OK:
            raise GrpcError(body["code"], body.get("detail", ""))
        return body.get("response")

    def _unary_local(
        self,
        service: str,
        method: str,
        request: Any,
        metadata: Optional[Dict[str, Any]],
    ) -> Generator[Event, None, Any]:
        """Loopback dispatch: same status semantics, no switch traversal."""
        server = self._local_server
        if server is None:
            raise RuntimeError("loopback channel has no bound server; call bind()")
        md = dict(self.default_metadata)
        if metadata:
            md.update(metadata)
        yield self.env.timeout(self.LOOPBACK_LATENCY)
        handler = server._methods.get((service, method))
        if handler is None:
            raise GrpcError(StatusCode.UNIMPLEMENTED, f"{service}/{method}")
        for interceptor in server._interceptors:
            interceptor(service, method, md)
        response = yield from handler(request, md)
        server.calls_served += 1
        yield self.env.timeout(self.LOOPBACK_LATENCY)
        return response

    def shutdown_server(self) -> Generator[Event, None, None]:
        """Stop the server loop on this connection (no-op for loopback)."""
        if self.local:
            return
        yield from self.conn.send(Message(
            src=self.node.name, dst=self.server_name, kind="grpc.shutdown", nbytes=16
        ))
