"""DPU-resident inline services: encryption/decryption close to the NIC.

The abstract calls out "DPU-resident features such as multi-tenant
isolation and inline services (e.g., encryption/decryption) close to the
NIC".  This module provides both halves:

* :class:`ChaCha20` — a real RFC 8439 ChaCha20 cipher, vectorized with
  NumPy across blocks (the keystream for every 64-byte block of a payload
  is computed in one array program — the "vectorize the outer loop" idiom
  from the HPC guides).
* :class:`InlineCrypto` — the timing wrapper: on BlueField-3 the payload
  rides the SoC's crypto accelerator (a serial offload engine near line
  rate); on a host it costs per-byte CPU on the calling thread.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.hw.platform import Node
from repro.hw.specs import GIB
from repro.sim.core import Environment, Event
from repro.sim.queues import FifoServer
from repro.storage.context import JobThread

__all__ = ["ChaCha20", "InlineCrypto"]


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter_round(s: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    # Operates in place on state array of shape (16, nblocks), dtype uint32.
    s[a] += s[b]; s[d] = _rotl(s[d] ^ s[a], 16)  # noqa: E702 - RFC layout
    s[c] += s[d]; s[b] = _rotl(s[b] ^ s[c], 12)  # noqa: E702
    s[a] += s[b]; s[d] = _rotl(s[d] ^ s[a], 8)   # noqa: E702
    s[c] += s[d]; s[b] = _rotl(s[b] ^ s[c], 7)   # noqa: E702


class ChaCha20:
    """RFC 8439 ChaCha20, all blocks of a payload computed vectorized."""

    KEY_BYTES = 32
    NONCE_BYTES = 12
    BLOCK_BYTES = 64

    _CONSTANTS = np.frombuffer(b"expand 32-byte k", dtype="<u4").copy()

    def __init__(self, key: bytes, nonce: bytes) -> None:
        if len(key) != self.KEY_BYTES:
            raise ValueError(f"key must be {self.KEY_BYTES} bytes, got {len(key)}")
        if len(nonce) != self.NONCE_BYTES:
            raise ValueError(f"nonce must be {self.NONCE_BYTES} bytes, got {len(nonce)}")
        self._key = np.frombuffer(key, dtype="<u4").copy()
        self._nonce = np.frombuffer(nonce, dtype="<u4").copy()

    def keystream(self, counter: int, nbytes: int) -> bytes:
        """Keystream bytes starting at block ``counter``."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        nblocks = (nbytes + self.BLOCK_BYTES - 1) // self.BLOCK_BYTES
        # Build the (16, nblocks) initial state with a running counter.
        state = np.empty((16, nblocks), dtype=np.uint32)
        state[0:4] = self._CONSTANTS[:, None]
        state[4:12] = self._key[:, None]
        state[12] = (counter + np.arange(nblocks, dtype=np.uint64)) & 0xFFFFFFFF
        state[13:16] = self._nonce[:, None]

        working = state.copy()
        old = np.seterr(over="ignore")
        try:
            for _ in range(10):  # 20 rounds = 10 double rounds
                _quarter_round(working, 0, 4, 8, 12)
                _quarter_round(working, 1, 5, 9, 13)
                _quarter_round(working, 2, 6, 10, 14)
                _quarter_round(working, 3, 7, 11, 15)
                _quarter_round(working, 0, 5, 10, 15)
                _quarter_round(working, 1, 6, 11, 12)
                _quarter_round(working, 2, 7, 8, 13)
                _quarter_round(working, 3, 4, 9, 14)
            working += state
        finally:
            np.seterr(**old)
        # Column-major serialization: each block is 16 little-endian words.
        stream = working.T.astype("<u4").tobytes()
        return stream[:nbytes]

    def crypt(self, counter: int, data: bytes) -> bytes:
        """Encrypt or decrypt (XOR with keystream) starting at ``counter``."""
        if not data:
            return b""
        ks = np.frombuffer(self.keystream(counter, len(data)), dtype=np.uint8)
        buf = np.frombuffer(data, dtype=np.uint8)
        return (buf ^ ks).tobytes()

    def crypt_at(self, byte_offset: int, data: bytes) -> bytes:
        """Encrypt/decrypt ``data`` located at ``byte_offset`` in the stream.

        ChaCha20 is seekable: the block counter is derived from the offset
        (counter 1 = stream byte 0, per RFC 8439 usage), so file extents
        can be crypted independently at any alignment.
        """
        if byte_offset < 0:
            raise ValueError(f"negative stream offset {byte_offset}")
        if not data:
            return b""
        counter = 1 + byte_offset // self.BLOCK_BYTES
        skip = byte_offset % self.BLOCK_BYTES
        ks_all = self.keystream(counter, skip + len(data))
        ks = np.frombuffer(ks_all, dtype=np.uint8)[skip:]
        buf = np.frombuffer(data, dtype=np.uint8)
        return (buf ^ ks).tobytes()


#: BlueField-3 inline crypto accelerator throughput (datasheet-class AES/
#: ChaCha line-rate engines; one serial engine per direction).
DPU_CRYPTO_ACCEL_RATE = 48 * GIB

#: Software ChaCha20 throughput per x86 core.
SW_CRYPTO_BYTES_PER_SEC = 3.0 * GIB


class InlineCrypto:
    """Per-tenant inline encryption with platform-dependent cost.

    * On a DPU (``accelerated=True``, the default on BlueField-3) payloads
      stream through the crypto engine: a serial offload, no CPU.
    * On a host, encryption is software: per-byte CPU on the job thread.
    """

    def __init__(
        self,
        node: Node,
        key: bytes,
        nonce: bytes = bytes(12),
        accelerated: Optional[bool] = None,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.cipher = ChaCha20(key, nonce)
        if accelerated is None:
            accelerated = node.spec.name == "bluefield-3"
        self.accelerated = bool(accelerated)
        self._engine = FifoServer(self.env, rate=DPU_CRYPTO_ACCEL_RATE,
                                  name=f"{node.name}.crypto")
        self.bytes_processed = 0

    def crypt(
        self,
        ctx: JobThread,
        stream_offset: int,
        data: Optional[bytes] = None,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """Encrypt/decrypt a payload located at ``stream_offset``.

        ``data`` may be None (virtual performance mode) with an explicit
        ``nbytes`` — the engine/CPU time is charged either way.
        """
        if nbytes is None:
            if data is None:
                raise ValueError("crypt needs data or an explicit nbytes")
            nbytes = len(data)
        if self.accelerated:
            yield self._engine.serve_units(nbytes)
        else:
            yield ctx.run(nbytes / SW_CRYPTO_BYTES_PER_SEC)
        self.bytes_processed += nbytes
        if data is None:
            return None
        return self.cipher.crypt_at(stream_offset, data)
