"""Multi-tenant isolation on the DPU.

The security analysis (§2.3) motivates exactly the controls ROS2 places on
the BlueField: per-tenant protection domains and QPs, short-lived scoped
rkeys, strict memory registration, and per-tenant rate limits "while
keeping policy enforcement close to the NIC".  This module implements the
policy side:

* :class:`TokenBucket` — a work-conserving rate limiter (ops/s and
  bytes/s) with analytic refill (no polling processes).
* :class:`TenantManager` — registration, bearer-token authentication,
  admission control, and scoped-window minting.  Channel-level isolation
  (each tenant's fabric channel owns a fresh PD + QP pair) is enforced by
  construction in :class:`~repro.net.fabric.RdmaChannel`; the manager adds
  the capability hygiene on top.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.net.fabric import FabricChannel, RemoteRegion
from repro.sim.core import Environment, Event

__all__ = ["RateLimitExceeded", "AuthError", "TokenBucket", "Tenant", "TenantManager"]


class RateLimitExceeded(RuntimeError):
    """Raised in strict mode when a tenant exceeds its configured rate."""


class AuthError(RuntimeError):
    """Unknown or revoked bearer token."""


class TokenBucket:
    """Analytic token bucket: ``rate`` tokens/s, capacity ``burst``.

    ``acquire`` either waits (shaping, the default) or raises
    (:class:`RateLimitExceeded`, policing) when the bucket is empty.
    Refill is computed lazily from elapsed simulated time, so the limiter
    adds zero events while a tenant stays under its rate.
    """

    def __init__(self, env: Environment, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._level = self.burst
        self._last = env.now
        self.denied = 0
        self.delayed = 0

    def _refill(self) -> None:
        now = self.env.now
        self._level = min(self.burst, self._level + (now - self._last) * self.rate)
        self._last = now

    @property
    def level(self) -> float:
        """Tokens currently available."""
        self._refill()
        return self._level

    def try_acquire(self, n: float) -> bool:
        """Take ``n`` tokens if available right now."""
        self._refill()
        if n <= self._level:
            self._level -= n
            return True
        self.denied += 1
        return False

    def acquire(self, n: float, strict: bool = False) -> Generator[Event, None, None]:
        """Take ``n`` tokens, waiting for refill (or raising when strict)."""
        if n <= 0:
            raise ValueError(f"token count must be positive, got {n}")
        if n > self.burst:
            raise ValueError(f"request of {n} exceeds burst capacity {self.burst}")
        # Relative tolerance so floating-point refill arithmetic can never
        # leave a vanishing deficit that spins the loop on ~0s timeouts.
        eps = 1e-9 * n
        while True:
            self._refill()
            if n <= self._level + eps:
                self._level = max(0.0, self._level - n)
                return
            if strict:
                self.denied += 1
                raise RateLimitExceeded(
                    f"need {n} tokens, {self._level:.1f} available at rate {self.rate}/s"
                )
            # Wait for the deficit to refill, then RE-CHECK: a concurrent
            # acquirer may have drained the bucket while we slept (no
            # overdraft allowed).
            deficit = max(n - self._level, eps)
            self.delayed += 1
            yield self.env.timeout(deficit / self.rate)


_token_seq = itertools.count(1)


def _mint_token(name: str) -> str:
    raw = f"{name}:{next(_token_seq)}:ros2".encode()
    return hashlib.sha256(raw).hexdigest()[:32]


@dataclass(slots=True)
class Tenant:
    """One registered tenant and its policy state."""

    name: str
    token: str
    ops_bucket: Optional[TokenBucket] = None
    bytes_bucket: Optional[TokenBucket] = None
    rkey_ttl: Optional[float] = None
    crypto_key: Optional[bytes] = None
    revoked: bool = False
    stats: Dict[str, int] = field(default_factory=lambda: {"ops": 0, "bytes": 0})


class TenantManager:
    """Registration, authentication and admission control."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._by_token: Dict[str, Tenant] = {}
        self._by_name: Dict[str, Tenant] = {}

    def register(
        self,
        name: str,
        ops_per_sec: Optional[float] = None,
        bytes_per_sec: Optional[float] = None,
        burst_ops: Optional[float] = None,
        burst_bytes: Optional[float] = None,
        rkey_ttl: Optional[float] = None,
        crypto_key: Optional[bytes] = None,
    ) -> Tenant:
        """Register a tenant; returns it (the bearer token is inside)."""
        if name in self._by_name:
            raise ValueError(f"tenant {name!r} already registered")
        tenant = Tenant(
            name=name,
            token=_mint_token(name),
            ops_bucket=(
                TokenBucket(self.env, ops_per_sec, burst_ops) if ops_per_sec else None
            ),
            bytes_bucket=(
                TokenBucket(self.env, bytes_per_sec, burst_bytes)
                if bytes_per_sec else None
            ),
            rkey_ttl=rkey_ttl,
            crypto_key=crypto_key,
        )
        self._by_token[tenant.token] = tenant
        self._by_name[name] = tenant
        return tenant

    def authenticate(self, token: str) -> Tenant:
        """Resolve a bearer token or raise :class:`AuthError`."""
        tenant = self._by_token.get(token)
        if tenant is None or tenant.revoked:
            raise AuthError("invalid or revoked bearer token")
        return tenant

    def revoke(self, name: str) -> None:
        """Kill a tenant's access (existing scoped rkeys age out via TTL)."""
        tenant = self._by_name.get(name)
        if tenant is None:
            raise KeyError(f"unknown tenant {name!r}")
        tenant.revoked = True

    def tenants(self) -> list:
        """Registered tenant names."""
        return sorted(self._by_name)

    def admit(
        self, tenant: Tenant, nbytes: int, strict: bool = False
    ) -> Generator[Event, None, None]:
        """Admission control for one I/O of ``nbytes`` (shaping by default)."""
        if tenant.revoked:
            raise AuthError(f"tenant {tenant.name!r} is revoked")
        if tenant.ops_bucket is not None:
            yield from tenant.ops_bucket.acquire(1, strict=strict)
        if tenant.bytes_bucket is not None and nbytes > 0:
            yield from tenant.bytes_bucket.acquire(nbytes, strict=strict)
        tenant.stats["ops"] += 1
        tenant.stats["bytes"] += nbytes

    def scoped_window(
        self,
        tenant: Tenant,
        channel: FabricChannel,
        owner: str,
        length: int,
        buffer: Optional[Any] = None,
    ) -> RemoteRegion:
        """Mint a registration whose rkey dies after the tenant's TTL.

        This is the "short-lived scoped rkeys" control of §2.3: even a
        leaked descriptor goes stale within ``rkey_ttl`` seconds.
        """
        valid_until = (
            self.env.now + tenant.rkey_ttl if tenant.rkey_ttl is not None else None
        )
        return channel.register(owner, length, buffer=buffer, valid_until=valid_until)
