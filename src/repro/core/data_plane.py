"""The ROS2 data plane: fabric binding and DPU DRAM staging.

"All payloads currently terminate in DPU DRAM; the DPU notifies
completion to the caller" (§3.2).  The data plane therefore stages every
in-flight payload in the client node's DRAM pool — 30 GiB on BlueField-3
— giving natural back-pressure when tenants overrun the buffer budget,
and tracks per-provider transfer statistics for the reports.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.dram import Allocation, DramPool
from repro.hw.platform import ComputeNode
from repro.net.fabric import ProviderInfo, resolve_provider
from repro.sim.core import Environment, Event
from repro.sim.monitor import Gauge, RateMeter

__all__ = ["DataPlane"]


class DataPlane:
    """Buffer staging + accounting for the offloaded client's bulk I/O."""

    def __init__(
        self,
        node: ComputeNode,
        provider: str,
        staging_budget_bytes: Optional[int] = None,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.provider: ProviderInfo = resolve_provider(provider)
        #: Staging budget: by default the whole node DRAM is eligible.
        #: A smaller budget (buffer pool carved out of node DRAM, the rest
        #: belonging to other services/tenants) is enforced as an
        #: *aggregate* in-flight cap, giving real back-pressure.
        self.budget = int(staging_budget_bytes or node.dram.capacity_bytes)
        if self.budget > node.dram.capacity_bytes:
            raise ValueError(
                f"staging budget {self.budget} exceeds node DRAM "
                f"{node.dram.capacity_bytes}"
            )
        self._pool: DramPool = DramPool(
            self.env, self.budget, name=f"{node.name}.dp.staging"
        )
        self.reads = RateMeter(self.env, f"{node.name}.dp.reads")
        self.writes = RateMeter(self.env, f"{node.name}.dp.writes")

    @property
    def staged(self) -> Gauge:
        """The staging pool's occupancy gauge (level, time-weighted mean,
        and the :meth:`~repro.sim.monitor.Gauge.max` watermark used for
        peak tracking — no ad-hoc peak fields)."""
        return self._pool.occupancy

    @property
    def is_rdma(self) -> bool:
        """Whether the bound provider is a verbs family."""
        return self.provider.family == "rdma"

    def stage(self, nbytes: int, trace=None) -> Generator[Event, None, Allocation]:
        """Reserve DPU DRAM for one in-flight payload (``yield from``).

        Blocks when the staging budget is exhausted — the back-pressure a
        30 GiB DPU applies to greedy tenants.
        """
        if nbytes <= 0:
            raise ValueError(f"staging size must be positive, got {nbytes}")
        if nbytes > self.budget:
            raise MemoryError(
                f"payload of {nbytes} bytes exceeds staging budget {self.budget}"
            )
        span = None
        if trace is not None:
            span = trace.child("dp.stage", node=self.node.name, nbytes=nbytes)
        alloc = yield from self._pool.alloc(nbytes)
        if span is not None:
            span.finish()
        return alloc

    def release(self, alloc: Allocation) -> None:
        """Return a staging buffer (occupancy tracked by the pool's gauge)."""
        alloc.free()

    def record_read(self, nbytes: int) -> None:
        """Account one completed read payload."""
        self.reads.record(nbytes)

    def record_write(self, nbytes: int) -> None:
        """Account one completed write payload."""
        self.writes.record(nbytes)
