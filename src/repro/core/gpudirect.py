"""Optional GPU placement via GPUDirect RDMA (paper §3.5).

The paper outlines — but does not evaluate — replacing the DPU-DRAM sink
with GPU HBM: register GPU buffers (nvidia-peermem), convey the MR
descriptors through the control plane, and have the storage server RDMA-
write straight into GPU memory.  We implement both the extension and the
baseline it replaces so the ablation bench can measure the difference:

* :class:`GpuDirectPath` — reads land in GPU HBM directly: the DFS fetch
  targets a GPU-backed registration; the only extra cost is the HBM
  ingest, and no DPU/host DRAM is consumed.
* :class:`StagedGpuPath` — the status-quo path: the payload terminates in
  client DRAM (staged), then crosses PCIe into HBM as a second copy.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.offload import Ros2ClientService
from repro.hw.gpu import GpuDevice
from repro.sim.core import Event
from repro.storage.context import JobThread

__all__ = ["GpuDirectPath", "StagedGpuPath"]


class GpuDirectPath:
    """Reads placed directly into GPU HBM (the §3.5 extension)."""

    def __init__(self, service: Ros2ClientService, session_id: int, gpu: GpuDevice) -> None:
        self.service = service
        self.session_id = session_id
        self.gpu = gpu
        #: MR keys obtained via nvidia-peermem and conveyed over the
        #: control plane (we track count for the reports).
        self.registrations = 0

    def register_gpu_buffer(self, nbytes: int):
        """Register a GPU buffer and convey its descriptor (§3.5 steps 1-2)."""
        state = self.service.sessions[self.session_id]
        region = self.service.tenants.scoped_window(
            state.tenant, state.daos.channel, self.service.node.name, nbytes
        )
        self.registrations += 1
        return region

    def read(
        self, ctx: JobThread, fh: int, offset: int, nbytes: int
    ) -> Generator[Event, None, None]:
        """One read whose payload lands in GPU HBM (no DRAM staging).

        The server's RDMA write targets the GPU MR (§3.5 step 3), so
        client DRAM is bypassed entirely; the HBM ingest happens while the
        wire transfer drains, and we charge it after the fetch completes.
        """
        state = self.service._state_for_io(self.session_id, fh)
        yield from self.service.tenants.admit(state.tenant, nbytes)
        data = yield from state.files[fh].read(ctx, offset, nbytes)
        yield from self.gpu.hbm_write(nbytes)
        self.service.data_plane.record_read(nbytes)
        return data


class StagedGpuPath:
    """The baseline: DPU/host DRAM staging + PCIe copy into the GPU."""

    def __init__(self, service: Ros2ClientService, session_id: int, gpu: GpuDevice) -> None:
        self.service = service
        self.session_id = session_id
        self.gpu = gpu

    def read(
        self, ctx: JobThread, fh: int, offset: int, nbytes: int
    ) -> Generator[Event, None, None]:
        """One read staged in client DRAM, then copied over PCIe into HBM."""
        data = yield from self.service.io_read(
            ctx, self.session_id, fh, offset, nbytes
        )
        # Second hop: DRAM -> PCIe -> HBM, plus the copy's CPU involvement.
        yield from self.gpu.staged_copy_in(nbytes)
        return data
