"""libdaos: the client library (pool/container handles, object I/O, TX).

Cost model (x86 baseline, scaled by the client node's factors — this is
the code that moves to the BlueField-3 in ROS2):

* ``submit_cpu_per_op`` / ``complete_cpu_per_op`` on the calling job
  thread — DFS translation, RPC marshalling, completion callbacks.
* ``serial_per_op`` in the node-wide ``daos_progress`` section — the
  client service's single event-queue progress context.  Invisible on the
  EPYC host; on the DPU (lock factor 2.5) it is what caps RDMA small-I/O
  at ~400 K IOPS, the 20-40 % gap of Fig. 5d.
* Transport costs ride the RPC/bulk machinery underneath.

Payloads above the engine's inline threshold use a registered bulk window;
in performance mode one pre-registered window is reused (as a real DAOS
client pre-registers its buffer cache), in functional mode a per-op window
carries the actual bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.daos.engine import INLINE_THRESHOLD
from repro.daos.rpc import RPC_REQUEST_BYTES, RpcClient
from repro.daos.types import ContainerId, DaosError, ObjectClass, ObjectId, PoolId
from repro.faults.errors import FaultInjectedError
from repro.faults.retry import backoff_delay, is_retryable, remaining_budget
from repro.net.rdma import RdmaError
from repro.hw.platform import ComputeNode
from repro.hw.specs import DAOS_PATH, StoragePathCosts
from repro.net.fabric import FabricChannel, RemoteRegion
from repro.sim.core import Environment, Event
from repro.storage.context import JobThread

__all__ = ["DaosClient", "PoolHandle", "ContainerHandle", "ObjectHandle", "Transaction"]


class DaosClient:
    """One client context connected to an engine over one channel."""

    def __init__(
        self,
        node: ComputeNode,
        channel: FabricChannel,
        costs: StoragePathCosts = DAOS_PATH,
        data_mode: bool = False,
        bulk_window_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.channel = channel
        self.costs = costs
        self.data_mode = bool(data_mode)
        self.rpc = RpcClient(node, channel).start()
        self._progress = node.lock("daos_progress")
        self._threads = 0
        self._io_seq = 0
        self._window: Optional[RemoteRegion] = None
        if not data_mode:
            self._window = channel.register(node.name, bulk_window_bytes)

    # -- contexts -----------------------------------------------------------------
    def new_context(self, name: Optional[str] = None) -> JobThread:
        """One application job thread issuing I/O through this client."""
        self._threads += 1
        return JobThread(
            self.env,
            name or f"{self.node.name}.daos.job{self._threads}",
            factor=self.node.spec.cycle_factor,
        )

    # -- cost plumbing -------------------------------------------------------------
    def _pre(self, ctx: JobThread, trace=None):
        span = trace.child("client_submit", node=self.node.name) if trace is not None else None
        yield ctx.run(self.costs.submit_cpu_per_op)
        if span is not None:
            span.finish()
        if self.costs.serial_per_op:
            span = trace.child("client_progress", node=self.node.name) if trace is not None else None
            yield self._progress.enter(self.costs.serial_per_op)
            if span is not None:
                span.finish()

    def _post(self, ctx: JobThread, trace=None):
        span = trace.child("client_complete", node=self.node.name) if trace is not None else None
        yield ctx.run(self.costs.complete_cpu_per_op)
        if span is not None:
            span.finish()

    def call(
        self, ctx: JobThread, opcode: str, args: Dict[str, Any]
    ) -> Generator[Event, None, Any]:
        """One costed RPC from ``ctx`` (control-plane-ish operations)."""
        yield from self._pre(ctx)
        result = yield from self.rpc.call(opcode, args)
        yield from self._post(ctx)
        return result

    def _call_io(
        self,
        opcode: str,
        args: Dict[str, Any],
        req_nbytes: int = RPC_REQUEST_BYTES,
        trace: Any = None,
        idempotent: bool = True,
    ) -> Generator[Event, None, Any]:
        """One data-path RPC with recovery semantics (ISSUE 10).

        With no fault plan installed this is a zero-overhead passthrough
        to :meth:`RpcClient.call`.  Under chaos each attempt carries the
        policy's per-op deadline; retryable failures back off with
        deterministic jitter (blamed on ``fault:{resource}`` when a
        tracer is installed), repair the transport, and try again until
        the attempt cap or the whole-op budget runs out.  Non-idempotent
        ops (writes) never retry after an ambiguous timeout.
        """
        env = self.env
        fx = env._faults
        if fx is None:
            result = yield from self.rpc.call(
                opcode, args, req_nbytes=req_nbytes, trace=trace
            )
            return result
        policy = fx.plan.policy
        self._io_seq += 1
        key = f"{fx.plan.seed_key}:{self.node.name}:io{self._io_seq}"
        started = env.now
        attempt = 0
        while True:
            attempt += 1
            # The per-op deadline exists to catch replies lost inside a
            # fault window; faults cannot fire before the plan is armed,
            # so setup/prefill traffic (32-wide MiB writes whose queueing
            # delay dwarfs the policy timeout) runs without one.
            deadline = (policy.op_timeout
                        if policy.op_timeout > 0 and fx.armed_at is not None
                        else None)
            try:
                result = yield from self.rpc.call(
                    opcode, args, req_nbytes=req_nbytes, trace=trace,
                    deadline=deadline,
                )
                return result
            except (DaosError, FaultInjectedError, RdmaError,
                    ConnectionError) as exc:
                if not is_retryable(exc, idempotent=idempotent):
                    raise
                if attempt >= policy.max_attempts:
                    raise
                budget = remaining_budget(policy, started, env.now)
                if budget is not None and budget <= 0.0:
                    raise
                fx.stats.retries += 1
                delay = backoff_delay(policy, attempt, key)
                if budget is not None and delay > budget:
                    delay = budget
                wt = env._wait_tracer
                if wt is not None:
                    # The backoff sleep is downtime caused by the fault,
                    # not an anonymous sleep: blame it on the faulted
                    # resource so the doctor surfaces ``fault:{name}``.
                    wt.reserve(f"fault:{fx.fault_resource()}", delay, 0.0)
                yield env.timeout(delay)
                try:
                    self.channel.ensure_connected()
                except (RdmaError, ConnectionError):
                    # Still inside the fault window; keep backing off.
                    continue

    # -- handles ---------------------------------------------------------------------
    def connect_pool(
        self, ctx: JobThread, pool: PoolId
    ) -> Generator[Event, None, "PoolHandle"]:
        """Connect to a pool; returns its handle."""
        result = yield from self.call(ctx, "pool_connect", {"pool": pool})
        return PoolHandle(self, pool, result["n_targets"])


@dataclass(slots=True)
class PoolHandle:
    """A connected pool."""

    client: DaosClient
    pool: PoolId
    n_targets: int

    def create_container(
        self, ctx: JobThread
    ) -> Generator[Event, None, "ContainerHandle"]:
        """Create and open a fresh container."""
        result = yield from self.client.call(ctx, "cont_create", {"pool": self.pool})
        handle = yield from self.open_container(ctx, result["cont"])
        return handle

    def open_container(
        self, ctx: JobThread, cont: ContainerId
    ) -> Generator[Event, None, "ContainerHandle"]:
        """Open an existing container."""
        result = yield from self.client.call(
            ctx, "cont_open", {"pool": self.pool, "cont": cont}
        )
        return ContainerHandle(self.client, self.pool, cont, result["epoch"])


class ContainerHandle:
    """An open container: object handles, oid allocation, snapshots, TX."""

    def __init__(
        self, client: DaosClient, pool: PoolId, cont: ContainerId, epoch: int
    ) -> None:
        self.client = client
        self.pool = pool
        self.cont = cont
        self.open_epoch = epoch

    def alloc_oid(
        self, ctx: JobThread, oclass: ObjectClass = ObjectClass.S1, count: int = 1
    ) -> Generator[Event, None, List[ObjectId]]:
        """Allocate ``count`` fresh object ids of ``oclass``."""
        result = yield from self.client.call(
            ctx, "oid_alloc", {"pool": self.pool, "count": count}
        )
        base = result["base"]
        return [ObjectId.make(base + i, oclass) for i in range(count)]

    def obj(self, oid: ObjectId) -> "ObjectHandle":
        """Open an object handle (local operation)."""
        return ObjectHandle(self, oid)

    def query_epoch(self, ctx: JobThread) -> Generator[Event, None, int]:
        """Highest committed epoch (snapshot point)."""
        result = yield from self.client.call(
            ctx, "cont_query", {"pool": self.pool, "cont": self.cont}
        )
        return result["epoch"]

    def tx(self) -> "Transaction":
        """Start staging a transaction."""
        return Transaction(self)


class ObjectHandle:
    """Object I/O: array update/fetch, KV put/get, punch, enumeration."""

    def __init__(self, cont: ContainerHandle, oid: ObjectId) -> None:
        self.cont = cont
        self.oid = oid
        self.client = cont.client

    def _base_args(self) -> Dict[str, Any]:
        return {"pool": self.cont.pool, "cont": self.cont.cont, "oid": self.oid}

    # -- array I/O -------------------------------------------------------------
    def update(
        self,
        ctx: JobThread,
        dkey: bytes,
        akey: bytes,
        offset: int,
        nbytes: Optional[int] = None,
        data: Optional[bytes] = None,
        epoch: Optional[int] = None,
        trace=None,
    ) -> Generator[Event, None, int]:
        """Write one extent; returns the commit epoch."""
        if nbytes is None:
            if data is None:
                raise DaosError("update needs data or an explicit nbytes")
            nbytes = len(data)
        client = self.client
        yield from client._pre(ctx, trace=trace)

        args = self._base_args()
        args.update(dkey=bytes(dkey), akey=bytes(akey), offset=offset, nbytes=nbytes)
        if epoch is not None:
            args["epoch"] = epoch

        window = None
        if nbytes > INLINE_THRESHOLD:
            if client.data_mode:
                buf = bytearray(nbytes)
                if data is not None:
                    buf[:] = data
                window = client.channel.register(client.node.name, nbytes, buffer=buf)
            else:
                window = client._window
            args["region"] = window
        elif data is not None:
            args["data"] = bytes(data)
        elif client.data_mode:
            args["data"] = bytes(nbytes)

        # Inline payloads ride the request capsule on the wire.
        req_nbytes = 220 + (nbytes if window is None else 0)
        result = yield from client._call_io("obj_update", args, req_nbytes=req_nbytes,
                                            trace=trace, idempotent=False)
        yield from client._post(ctx, trace=trace)
        if window is not None and client.data_mode:
            client.channel.deregister(window)
        return result["epoch"]

    def fetch(
        self,
        ctx: JobThread,
        dkey: bytes,
        akey: bytes,
        offset: int,
        nbytes: int,
        epoch: Optional[int] = None,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """Read a range at ``epoch`` (None = latest committed)."""
        client = self.client
        yield from client._pre(ctx, trace=trace)

        args = self._base_args()
        args.update(dkey=bytes(dkey), akey=bytes(akey), offset=offset, nbytes=nbytes)
        if epoch is not None:
            args["epoch"] = epoch

        window = None
        buf: Optional[bytearray] = None
        if nbytes > INLINE_THRESHOLD:
            if client.data_mode:
                buf = bytearray(nbytes)
                window = client.channel.register(client.node.name, nbytes, buffer=buf)
            else:
                window = client._window
            args["region"] = window

        result = yield from client._call_io("obj_fetch", args, trace=trace,
                                            idempotent=True)
        yield from client._post(ctx, trace=trace)
        if window is not None and client.data_mode:
            client.channel.deregister(window)
            return bytes(buf)
        return result.get("data")

    def punch(
        self, ctx: JobThread, dkey: bytes, akey: bytes, offset: int, nbytes: int
    ) -> Generator[Event, None, int]:
        """Punch a hole in an array akey."""
        args = self._base_args()
        args.update(dkey=bytes(dkey), akey=bytes(akey), offset=offset, nbytes=nbytes)
        result = yield from self.client.call(ctx, "obj_punch", args)
        return result["epoch"]

    def punch_dkey(self, ctx: JobThread, dkey: bytes) -> Generator[Event, None, int]:
        """Remove a whole dkey."""
        args = self._base_args()
        args["dkey"] = bytes(dkey)
        result = yield from self.client.call(ctx, "obj_punch_dkey", args)
        return result["epoch"]

    # -- KV I/O ---------------------------------------------------------------
    def kv_put(
        self, ctx: JobThread, dkey: bytes, akey: bytes, value: Any
    ) -> Generator[Event, None, int]:
        """Store a single value."""
        args = self._base_args()
        args.update(dkey=bytes(dkey), akey=bytes(akey), value=value)
        result = yield from self.client.call(ctx, "kv_put", args)
        return result["epoch"]

    def kv_get(
        self, ctx: JobThread, dkey: bytes, akey: bytes, epoch: Optional[int] = None
    ) -> Generator[Event, None, Any]:
        """Read a single value at ``epoch``."""
        args = self._base_args()
        args.update(dkey=bytes(dkey), akey=bytes(akey))
        if epoch is not None:
            args["epoch"] = epoch
        result = yield from self.client.call(ctx, "kv_get", args)
        return result["value"]

    # -- enumeration --------------------------------------------------------------
    def list_dkeys(
        self, ctx: JobThread, epoch: Optional[int] = None
    ) -> Generator[Event, None, List[bytes]]:
        """Visible dkeys across every shard."""
        args = self._base_args()
        if epoch is not None:
            args["epoch"] = epoch
        result = yield from self.client.call(ctx, "obj_list_dkeys", args)
        return result["dkeys"]

    def dkey_sizes(
        self, ctx: JobThread, akey: bytes, epoch: Optional[int] = None
    ) -> Generator[Event, None, Dict[bytes, int]]:
        """Per-dkey array sizes (DFS file-size query)."""
        args = self._base_args()
        args["akey"] = bytes(akey)
        if epoch is not None:
            args["epoch"] = epoch
        result = yield from self.client.call(ctx, "obj_sizes", args)
        return result["sizes"]


class Transaction:
    """Client-side staged transaction committed atomically at one epoch."""

    def __init__(self, cont: ContainerHandle) -> None:
        self.cont = cont
        self.ops: List[Dict[str, Any]] = []
        self.committed_epoch: Optional[int] = None
        self.aborted = False

    def _check_open(self) -> None:
        if self.committed_epoch is not None:
            raise DaosError("transaction already committed")
        if self.aborted:
            raise DaosError("transaction aborted")

    def update(
        self, oid: ObjectId, dkey: bytes, akey: bytes, offset: int,
        nbytes: Optional[int] = None, data: Optional[bytes] = None,
    ) -> "Transaction":
        """Stage an array write (inline payloads only)."""
        self._check_open()
        if nbytes is None:
            if data is None:
                raise DaosError("staged update needs data or nbytes")
            nbytes = len(data)
        self.ops.append({
            "kind": "update", "oid": oid, "dkey": bytes(dkey), "akey": bytes(akey),
            "offset": offset, "nbytes": nbytes,
            "data": bytes(data) if data is not None else None,
        })
        return self

    def kv_put(self, oid: ObjectId, dkey: bytes, akey: bytes, value: Any) -> "Transaction":
        """Stage a single-value write."""
        self._check_open()
        self.ops.append({
            "kind": "kv_put", "oid": oid, "dkey": bytes(dkey),
            "akey": bytes(akey), "value": value,
        })
        return self

    def punch_dkey(self, oid: ObjectId, dkey: bytes) -> "Transaction":
        """Stage a dkey removal."""
        self._check_open()
        self.ops.append({"kind": "punch_dkey", "oid": oid, "dkey": bytes(dkey)})
        return self

    def abort(self) -> None:
        """Drop the staged operations."""
        self._check_open()
        self.aborted = True
        self.ops.clear()

    def commit(self, ctx: JobThread) -> Generator[Event, None, int]:
        """Apply every staged op atomically; returns the commit epoch."""
        self._check_open()
        result = yield from self.cont.client.call(ctx, "tx_commit", {
            "pool": self.cont.pool, "cont": self.cont.cont, "ops": self.ops,
        })
        self.committed_epoch = int(result["epoch"])
        return self.committed_epoch
