"""CaRT/Mercury-like RPC framework over fabric channels.

DAOS's RPC stack (CaRT over Mercury, §3.3) provides tagged
request/response messaging with bulk-transfer descriptors riding in the
request.  This module reproduces that shape:

* :class:`RpcServer` — registers generator handlers per opcode, services
  one or more channels, replies with results or propagated errors.
* :class:`RpcClient` — tagged calls with a completion demultiplexer.

Handlers receive ``(args, src, channel)`` so they can drive one-sided bulk
transfers against descriptors the client put in ``args`` — exactly how a
DAOS engine pulls write payloads and pushes read payloads.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional

from repro.daos.types import DaosError
from repro.faults.errors import FaultInjectedError
from repro.hw.platform import ComputeNode
from repro.net.fabric import FabricChannel
from repro.net.message import Message
from repro.net.rdma import RdmaError
from repro.sim.core import Environment, Event, Process

__all__ = ["RpcError", "RpcTimeout", "RpcServer", "RpcClient", "RPC_REQUEST_BYTES"]

#: Wire size of a request/response capsule (opcode, ids, keys, descriptor).
RPC_REQUEST_BYTES = 220
RPC_REPLY_BYTES = 96


class RpcError(DaosError):
    """An RPC failed on the server; carries the remote error text.

    ``remote_error`` is the raw server-side message; ``op``, ``target``
    and ``sim_time`` locate the failure so chaos reports and the retry
    classifier can act on it without string-parsing the whole message.
    """

    def __init__(
        self,
        remote_error: str,
        op: Optional[str] = None,
        target: Optional[str] = None,
        sim_time: Optional[float] = None,
    ) -> None:
        self.remote_error = remote_error
        self.op = op
        self.target = target
        self.sim_time = sim_time
        message = remote_error
        if op is not None or target is not None:
            context = " ".join(
                part for part in (
                    f"op={op}" if op is not None else None,
                    f"target={target}" if target is not None else None,
                    f"t={sim_time:.6f}" if sim_time is not None else None,
                ) if part is not None
            )
            message = f"{remote_error} [{context}]"
        super().__init__(message)


class RpcTimeout(RpcError):
    """A call's per-attempt deadline expired before the reply arrived.

    Ambiguous by nature — the server may or may not have executed the
    op — so only idempotent operations may retry after one.
    """


class RpcServer:
    """Opcode-dispatching RPC service for one node."""

    def __init__(self, node: ComputeNode) -> None:
        self.node = node
        self.env: Environment = node.env
        self._handlers: Dict[str, Callable] = {}
        self._loops: list = []
        self.requests_served = 0
        #: In-flight request count (dispatched, reply not yet sent).
        self.inflight = 0
        #: Optional telemetry station (attached only while sampling).
        self.stats = None

    def attach_stats(self, stats) -> None:
        """Attach a :class:`~repro.sim.timeseries.StationStats` recorder.

        Every dispatched request then reports arrival and sojourn
        (dispatch to reply-sent), powering the in-flight-RPC counter track
        and the Little's-law self-check on the RPC station.
        """
        self.stats = stats

    def register(self, opcode: str, handler: Callable) -> None:
        """Register ``handler(args, src, channel) -> generator`` for ``opcode``."""
        if opcode in self._handlers:
            raise ValueError(f"duplicate RPC opcode {opcode!r}")
        self._handlers[opcode] = handler

    def opcodes(self) -> list:
        """Registered opcode names."""
        return sorted(self._handlers)

    def serve(self, channel: FabricChannel) -> Process:
        """Start servicing requests arriving on ``channel``."""
        proc = self.env.process(self._serve_loop(channel), name="rpc-server")
        self._loops.append(proc)
        return proc

    def _serve_loop(self, channel: FabricChannel):
        name = self.node.name
        while True:
            msg = yield channel.recv(name)
            if msg.kind == "rpc.shutdown":
                return
            if msg.kind != "rpc.req":
                continue  # stray message; CaRT drops unknown traffic
            self.env.process(self._dispatch(channel, msg), name="rpc-handler")

    def _dispatch(self, channel: FabricChannel, msg: Message):
        # One generator frame per request: the accounting wrapper and the
        # handler body used to be separate generators, which added a
        # delegation frame to every resumption of every handler.
        self.inflight += 1
        st = self.stats
        if st is not None:
            st.arrive()
        t0 = self.env.now
        try:
            opcode = msg.payload.get("op")
            args = msg.payload.get("args", {})
            handler = self._handlers.get(opcode)
            if handler is None:
                yield from self._send_reply(channel, msg.reply_to(
                    kind="rpc.rep",
                    payload={"status": "error",
                             "error": f"unknown opcode {opcode!r}"},
                    nbytes=RPC_REPLY_BYTES,
                ))
                return
            # Extract trace context from the capsule (CaRT carries
            # hlc/trace metadata the same way); hand the handler a
            # server-side span.
            trace = msg.meta.get("trace") if msg.meta else None
            span = None
            if trace is not None:
                span = trace.child(f"rpc.handler[{opcode}]", node=self.node.name)
                args = dict(args)
                args["_trace"] = span
            try:
                result = yield from handler(args, msg.src, channel)
            except (DaosError, FaultInjectedError, RdmaError, ConnectionError) as exc:
                # DaosError is the normal application-error path; the
                # other three surface mid-handler when a fault window
                # breaks the transport or the device under it — the
                # handler must not die, or the engine stops serving.
                if span is not None:
                    span.finish()
                yield from self._send_reply(channel, msg.reply_to(
                    kind="rpc.rep",
                    payload={"status": "error",
                             "error": f"{type(exc).__name__}: {exc}"},
                    nbytes=RPC_REPLY_BYTES,
                ))
                return
            if span is not None:
                span.finish()
            # Handlers that piggyback payload bytes onto the reply (inline
            # fetches) declare the extra wire size via the "_wire" key.
            wire_extra = 0
            if isinstance(result, dict):
                wire_extra = int(result.pop("_wire", 0))
            self.requests_served += 1
            yield from self._send_reply(channel, msg.reply_to(
                kind="rpc.rep",
                payload={"status": "ok", "result": result},
                nbytes=RPC_REPLY_BYTES + wire_extra,
            ))
        finally:
            self.inflight -= 1
            if st is not None:
                st.depart(self.env.now - t0)

    def _send_reply(self, channel: FabricChannel, reply: Message):
        """Send a reply; under fault injection a dead transport drops it.

        The client's deadline/retry machinery recovers the op — exactly
        what happens when a real server's reply hits a broken QP.
        Without an installed fault plan transport failures are genuine
        bugs and propagate.
        """
        try:
            yield from channel.send(reply)
        except (RdmaError, ConnectionError):
            fx = self.env._faults
            if fx is None:
                raise
            fx.stats.replies_dropped += 1


class RpcClient:
    """Tagged RPC calls over one channel, with a demux loop."""

    _tags = itertools.count(1)

    def __init__(self, node: ComputeNode, channel: FabricChannel) -> None:
        self.node = node
        self.env: Environment = node.env
        self.channel = channel
        self.server_name = channel.peer_of(node.name)
        self._pending: Dict[int, Event] = {}
        self._demux: Optional[Process] = None

    def start(self) -> "RpcClient":
        """Spawn the reply demultiplexer; call once before any call."""
        if self._demux is None:
            self._demux = self.env.process(self._demux_loop(), name="rpc-demux")
        return self

    def _demux_loop(self):
        name = self.node.name
        while True:
            msg = yield self.channel.recv(name)
            waiter = self._pending.pop(msg.tag, None)
            if waiter is not None:
                waiter.succeed(msg)

    def call(
        self,
        opcode: str,
        args: Dict[str, Any],
        req_nbytes: int = RPC_REQUEST_BYTES,
        trace: Any = None,
        deadline: Optional[float] = None,
    ) -> Generator[Event, None, Any]:
        """Issue one RPC; returns the handler result or raises RpcError.

        ``trace`` (a parent :class:`~repro.sim.spans.Span`) rides in the
        request capsule's metadata — the analog of CaRT's hlc/trace fields
        — so the server and both transport legs can attach child spans.
        ``deadline`` bounds the wait for the reply; on expiry the call
        raises :class:`RpcTimeout` and a late reply is dropped by the
        demux (its tag is no longer pending).
        """
        if self._demux is None:
            raise RuntimeError("RpcClient not started; call start() first")
        tag = next(RpcClient._tags)
        done = self.env.event()
        self._pending[tag] = done
        span = trace.child(f"rpc[{opcode}]", node=self.node.name) if trace is not None else None
        try:
            yield from self.channel.send(Message(
                src=self.node.name,
                dst=self.server_name,
                kind="rpc.req",
                tag=tag,
                payload={"op": opcode, "args": args},
                nbytes=req_nbytes,
                meta={"trace": span} if span is not None else {},
            ))
        except BaseException:
            # The request never reached the server; forget the tag so the
            # pending map cannot leak across retries.
            self._pending.pop(tag, None)
            if span is not None:
                span.finish()
            raise
        if deadline is None:
            reply = yield done
        else:
            fired = yield self.env.any_of((done, self.env.timeout(deadline)))
            if done not in fired:
                self._pending.pop(tag, None)
                if span is not None:
                    span.finish()
                fx = self.env._faults
                if fx is not None:
                    fx.stats.timeouts += 1
                raise RpcTimeout(
                    f"no reply within {deadline:g}s",
                    op=opcode, target=self.server_name, sim_time=self.env.now,
                )
            reply = fired[done]
        if span is not None:
            span.finish()
        body = reply.payload
        if body["status"] != "ok":
            raise RpcError(
                body.get("error", "remote failure"),
                op=opcode, target=self.server_name, sim_time=self.env.now,
            )
        return body.get("result")

    def shutdown_server(self) -> Generator[Event, None, None]:
        """Stop the server loop on this channel."""
        yield from self.channel.send(Message(
            src=self.node.name, dst=self.server_name, kind="rpc.shutdown", nbytes=16
        ))
