"""The versioned dkey/akey record store (DAOS's key-array data model).

A DAOS object maps a *distribution key* (dkey) to a set of *attribute
keys* (akeys); each akey holds either an **array value** — a sparse byte
array written as versioned extents — or a **single value** replaced
wholesale per write.  Every write is stamped with an epoch; reads resolve
visibility at a requested epoch, which is what gives DAOS snapshots and
transactions (§2.4 "transactional, versioned object model").

This module is pure data structure (no simulation time); the VOS layer
binds records to media and charges device costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.daos.checksum import Checksummer
from repro.daos.types import NoSuchObject

__all__ = ["Extent", "ExtentStore", "SingleValue", "VersionedObject", "Coverage"]

_seq = itertools.count(1)


@dataclass(slots=True)
class Extent:
    """One versioned write of ``[start, end)`` within an array akey."""

    epoch: int
    start: int
    end: int  # exclusive
    data: Optional[bytes]  # None in virtual mode
    checksum: int
    punched: bool = False
    #: Media placement assigned by VOS: (tier, offset) or None before bind.
    media: Optional[Tuple[str, int]] = None
    seq: int = field(default_factory=lambda: next(_seq))

    @property
    def nbytes(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Coverage:
    """One resolved segment of a read: ``[start, end)`` served by ``extent``
    (None = hole, reads back as zeros)."""

    start: int
    end: int
    extent: Optional[Extent]

    @property
    def nbytes(self) -> int:
        return self.end - self.start


class ExtentStore:
    """A sparse, versioned byte array (one array akey)."""

    __slots__ = ("extents",)

    def __init__(self) -> None:
        self.extents: List[Extent] = []

    def write(
        self,
        epoch: int,
        offset: int,
        nbytes: int,
        data: Optional[bytes] = None,
    ) -> Extent:
        """Record a write at ``epoch``; returns the extent for media binding."""
        if offset < 0 or nbytes <= 0:
            raise ValueError(f"bad extent ({offset}, {nbytes})")
        if data is not None and len(data) != nbytes:
            raise ValueError(f"data of {len(data)} bytes but nbytes={nbytes}")
        ext = Extent(
            epoch=epoch,
            start=offset,
            end=offset + nbytes,
            data=bytes(data) if data is not None else None,
            checksum=Checksummer.compute(data, nbytes),
        )
        self.extents.append(ext)
        return ext

    def punch(self, epoch: int, offset: int, nbytes: int) -> Extent:
        """Record a hole-punch (reads at later epochs see zeros)."""
        if offset < 0 or nbytes <= 0:
            raise ValueError(f"bad punch ({offset}, {nbytes})")
        ext = Extent(
            epoch=epoch, start=offset, end=offset + nbytes,
            data=None, checksum=0, punched=True,
        )
        self.extents.append(ext)
        return ext

    def resolve(self, epoch: int, offset: int, nbytes: int) -> List[Coverage]:
        """Visibility resolution: split ``[offset, offset+nbytes)`` into
        segments, each served by the newest extent visible at ``epoch``."""
        if offset < 0 or nbytes <= 0:
            raise ValueError(f"bad read range ({offset}, {nbytes})")
        lo, hi = offset, offset + nbytes
        live = [e for e in self.extents if e.epoch <= epoch and e.end > lo and e.start < hi]
        if not live:
            return [Coverage(lo, hi, None)]
        if len(live) == 1:
            e = live[0]
            if e.start <= lo and e.end >= hi:
                # Fast path: a single extent covers the whole window — the
                # general machinery below would produce exactly this one
                # segment (same boundaries, same winner, same punch rule).
                return [Coverage(lo, hi, None if e.punched else e)]
        # Split on all extent boundaries inside the query window.
        points = sorted({lo, hi, *(max(lo, e.start) for e in live),
                         *(min(hi, e.end) for e in live)})
        out: List[Coverage] = []
        for a, b in zip(points, points[1:]):
            if a >= b:
                continue
            winner: Optional[Extent] = None
            for e in live:
                if e.start <= a and e.end >= b:
                    if winner is None or (e.epoch, e.seq) > (winner.epoch, winner.seq):
                        winner = e
            if winner is not None and winner.punched:
                winner = None
            out.append(Coverage(a, b, winner))
        # Merge adjacent segments served by the same extent (or both holes).
        merged: List[Coverage] = []
        for seg in out:
            if merged and merged[-1].extent is seg.extent and merged[-1].end == seg.start:
                merged[-1] = Coverage(merged[-1].start, seg.end, seg.extent)
            else:
                merged.append(seg)
        return merged

    def read_bytes(self, epoch: int, offset: int, nbytes: int) -> bytes:
        """Assemble real bytes for a read (functional mode; holes are zero)."""
        out = bytearray(nbytes)
        for seg in self.resolve(epoch, offset, nbytes):
            e = seg.extent
            if e is None or e.data is None:
                continue
            src_off = seg.start - e.start
            out[seg.start - offset:seg.end - offset] = \
                memoryview(e.data)[src_off:src_off + seg.nbytes]
        return bytes(out)

    def size(self, epoch: int) -> int:
        """Highest visible (non-punched) byte offset + 1, or 0 if empty.

        Matches POSIX file-size semantics under DFS: punching the tail does
        not shrink the file, so any recorded extent bounds the size.
        """
        ends = [e.end for e in self.extents if e.epoch <= epoch]
        return max(ends, default=0)

    def highest_epoch(self) -> int:
        """Newest epoch recorded (0 when empty)."""
        return max((e.epoch for e in self.extents), default=0)


class SingleValue:
    """A single-value akey: each write replaces the whole value."""

    __slots__ = ("versions",)

    def __init__(self) -> None:
        self.versions: List[Tuple[int, int, Any]] = []  # (epoch, seq, value)

    def write(self, epoch: int, value: Any) -> None:
        """Replace the value at ``epoch``."""
        self.versions.append((epoch, next(_seq), value))

    def read(self, epoch: int) -> Any:
        """The newest value visible at ``epoch``."""
        best = None
        for rec in self.versions:
            if rec[0] <= epoch and (best is None or (rec[0], rec[1]) > (best[0], best[1])):
                best = rec
        if best is None:
            raise NoSuchObject(f"no single-value visible at epoch {epoch}")
        return best[2]

    def exists(self, epoch: int) -> bool:
        """Whether any version is visible at ``epoch``."""
        return any(rec[0] <= epoch for rec in self.versions)


class VersionedObject:
    """One object: dkey -> akey -> (ExtentStore | SingleValue)."""

    def __init__(self) -> None:
        self._dkeys: Dict[bytes, Dict[bytes, Any]] = {}
        self._dkey_punch: Dict[bytes, int] = {}  # dkey -> punch epoch

    # -- array values --------------------------------------------------------
    def array(self, dkey: bytes, akey: bytes) -> ExtentStore:
        """Get/create the array akey under ``dkey``."""
        akeys = self._dkeys.setdefault(bytes(dkey), {})
        store = akeys.get(bytes(akey))
        if store is None:
            store = akeys[bytes(akey)] = ExtentStore()
        elif not isinstance(store, ExtentStore):
            raise TypeError(f"akey {akey!r} holds a single value, not an array")
        return store

    # -- single values -------------------------------------------------------
    def value(self, dkey: bytes, akey: bytes) -> SingleValue:
        """Get/create the single-value akey under ``dkey``."""
        akeys = self._dkeys.setdefault(bytes(dkey), {})
        sv = akeys.get(bytes(akey))
        if sv is None:
            sv = akeys[bytes(akey)] = SingleValue()
        elif not isinstance(sv, SingleValue):
            raise TypeError(f"akey {akey!r} holds an array, not a single value")
        return sv

    def read_value(self, epoch: int, dkey: bytes, akey: bytes) -> Any:
        """Read a single value at ``epoch``, honouring dkey punches.

        A value written before a punch (with the punch at or before
        ``epoch``) is invisible; a value rewritten after the punch is
        visible again.
        """
        sv = self.value(dkey, akey)
        punched_at = self._dkey_punch.get(bytes(dkey))
        floor = punched_at if (punched_at is not None and punched_at <= epoch) else 0
        best = None
        for rec in sv.versions:
            if floor < rec[0] <= epoch and (
                best is None or (rec[0], rec[1]) > (best[0], best[1])
            ):
                best = rec
        if best is None:
            raise NoSuchObject(
                f"no single-value visible at epoch {epoch} (dkey punched at {punched_at})"
            )
        return best[2]

    # -- dkey-level operations -------------------------------------------------
    def punch_dkey(self, epoch: int, dkey: bytes) -> None:
        """Hide a whole dkey from later epochs."""
        self._dkey_punch[bytes(dkey)] = max(
            epoch, self._dkey_punch.get(bytes(dkey), 0)
        )

    def dkey_visible(self, epoch: int, dkey: bytes) -> bool:
        """Whether ``dkey`` has visible content at ``epoch``."""
        dkey = bytes(dkey)
        akeys = self._dkeys.get(dkey)
        if not akeys:
            return False
        punched_at = self._dkey_punch.get(dkey)
        # A punch only hides content for readers at or past the punch epoch.
        written_after_punch = punched_at if (punched_at is not None and punched_at <= epoch) else 0
        for store in akeys.values():
            if isinstance(store, ExtentStore):
                visible = any(
                    written_after_punch < e.epoch <= epoch and not e.punched
                    for e in store.extents
                )
            else:
                visible = any(
                    written_after_punch < rec[0] <= epoch for rec in store.versions
                )
            if visible:
                return True
        return False

    def list_dkeys(self, epoch: int) -> List[bytes]:
        """Visible dkeys at ``epoch`` (sorted, like a dkey enumeration)."""
        return sorted(d for d in self._dkeys if self.dkey_visible(epoch, d))

    def akeys_of(self, dkey: bytes) -> List[bytes]:
        """Raw akey names recorded under ``dkey`` (no epoch filtering)."""
        return sorted(self._dkeys.get(bytes(dkey), {}))
