"""Client-side read caching (the dfuse/libioil caching layer).

DAOS deployments front DFS with dfuse, whose data caching absorbs
re-reads in client memory with a configurable attr/data timeout.  This
module reproduces that layer for the simulated client:

* :class:`ClientCache` — a byte-budgeted LRU over (oid, chunk) pages with
  epoch tagging and TTL-based revalidation.
* :class:`CachedDfsFile` — a drop-in wrapper over
  :class:`~repro.daos.dfs.DfsFile`: reads are served from cache when a
  fresh entry covers them (a small CPU cost, no RPC); misses read through
  and populate; local writes invalidate the overlapping pages (write-
  through, like dfuse with writeback caching disabled).

Cache entries are only trusted for ``ttl`` simulated seconds — after
that a re-read goes back to the engine, which is how dfuse bounds
staleness under cross-client sharing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional, Tuple

from repro.daos.dfs import DfsFile
from repro.daos.types import ObjectId
from repro.hw.specs import US
from repro.sim.core import Environment, Event
from repro.storage.context import JobThread

__all__ = ["ClientCache", "CachedDfsFile"]

#: CPU cost of a cache hit (hash lookup + memcpy bookkeeping), x86 baseline.
HIT_CPU = 0.8 * US


class ClientCache:
    """Byte-budgeted LRU of file pages with TTL freshness."""

    def __init__(
        self,
        env: Environment,
        capacity_bytes: int,
        ttl: Optional[float] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.env = env
        self.capacity_bytes = int(capacity_bytes)
        #: Entries older than this are revalidated (None = never expire).
        self.ttl = ttl
        self._entries: "OrderedDict[Tuple, Tuple[float, int, Optional[bytes]]]" = \
            OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._bytes

    def _key(self, oid: ObjectId, chunk: int) -> Tuple:
        return (oid.hi, oid.lo, chunk)

    def lookup(self, oid: ObjectId, chunk: int) -> Optional[Tuple[int, Optional[bytes]]]:
        """A fresh ``(nbytes, data)`` entry for the chunk, else None."""
        key = self._key(oid, chunk)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stamp, nbytes, data = entry
        if self.ttl is not None and self.env.now - stamp > self.ttl:
            self._evict(key)
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return nbytes, data

    def insert(self, oid: ObjectId, chunk: int, nbytes: int,
               data: Optional[bytes]) -> None:
        """Cache a whole-chunk read result (evicting LRU pages to fit)."""
        if nbytes > self.capacity_bytes:
            return  # larger than the whole cache: don't bother
        key = self._key(oid, chunk)
        if key in self._entries:
            self._evict(key)
        while self._bytes + nbytes > self.capacity_bytes and self._entries:
            self._evict(next(iter(self._entries)))
        self._entries[key] = (self.env.now, nbytes, data)
        self._bytes += nbytes

    def invalidate(self, oid: ObjectId, chunk: int) -> None:
        """Drop the chunk (local write or explicit invalidation)."""
        if self._evict(self._key(oid, chunk)):
            self.invalidations += 1

    def invalidate_object(self, oid: ObjectId) -> None:
        """Drop every cached chunk of one object (unlink/truncate)."""
        for key in [k for k in self._entries if k[:2] == (oid.hi, oid.lo)]:
            self._evict(key)
            self.invalidations += 1

    def clear(self) -> None:
        """Drop everything."""
        self._entries.clear()
        self._bytes = 0

    def _evict(self, key: Tuple) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._bytes -= entry[1]
        return True

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedDfsFile:
    """A DfsFile wrapper that serves whole-chunk re-reads from the cache."""

    def __init__(self, file: DfsFile, cache: ClientCache) -> None:
        self.file = file
        self.cache = cache
        #: The thread pool the hit cost is charged to comes from the caller.

    @property
    def chunk_size(self) -> int:
        return self.file.chunk_size

    def read(
        self, ctx: JobThread, offset: int, nbytes: int
    ) -> Generator[Event, None, Optional[bytes]]:
        """Chunk-aligned reads hit the cache; others read through."""
        chunk = self.file.chunk_size
        idx, in_off = divmod(offset, chunk)
        aligned = in_off == 0 and nbytes == chunk
        if aligned:
            entry = self.cache.lookup(self.file.oid, idx)
            if entry is not None:
                yield ctx.run(HIT_CPU)
                return entry[1]
        data = yield from self.file.read(ctx, offset, nbytes)
        if aligned:
            self.cache.insert(self.file.oid, idx, nbytes, data)
        return data

    def write(
        self,
        ctx: JobThread,
        offset: int,
        nbytes: Optional[int] = None,
        data: Optional[bytes] = None,
    ) -> Generator[Event, None, None]:
        """Write through, invalidating every overlapped cached chunk."""
        if nbytes is None and data is not None:
            nbytes = len(data)
        chunk = self.file.chunk_size
        first = offset // chunk
        last = (offset + (nbytes or 1) - 1) // chunk
        for idx in range(first, last + 1):
            self.cache.invalidate(self.file.oid, idx)
        yield from self.file.write(ctx, offset, nbytes=nbytes, data=data)

    def size(self, ctx: JobThread):
        """Delegate size queries (metadata is not cached here)."""
        return self.file.size(ctx)
