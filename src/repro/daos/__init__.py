"""A DAOS-like distributed object store (the paper's storage substrate).

DAOS (§2.4) is the system ROS2 offloads: a transactional, versioned object
store over SCM (PMDK) and NVMe (SPDK), fronted by a Mercury/CaRT RPC stack
over UCX/libfabric, with a POSIX namespace (DFS) mapped onto objects.
This package reimplements that layering functionally:

* :mod:`repro.daos.types` — identifiers, errors, object classes.
* :mod:`repro.daos.checksum` — end-to-end checksums (crc32c-style).
* :mod:`repro.daos.object` — the versioned dkey/akey extent store.
* :mod:`repro.daos.vos` — per-target Versioned Object Store binding
  records to SCM/NVMe media with epoch visibility.
* :mod:`repro.daos.rpc` — CaRT-like RPC (request/response with tags,
  generator handlers, bulk descriptors).
* :mod:`repro.daos.engine` — the I/O engine: targets, xstreams, pool and
  container service, object I/O with transport-aware bulk transfer.
* :mod:`repro.daos.client` — libdaos: pool/container handles, object
  update/fetch, transactions, event-queue progress costs.
* :mod:`repro.daos.dfs` — the POSIX file/directory layer (libdfs).
"""

from repro.daos.checksum import Checksummer, ChecksumError
from repro.daos.client import DaosClient, ObjectHandle
from repro.daos.dcache import CachedDfsFile, ClientCache
from repro.daos.dfs import DfsFile, DfsNamespace
from repro.daos.engine import DaosEngine
from repro.daos.object import ExtentStore, VersionedObject
from repro.daos.rpc import RpcClient, RpcError, RpcServer
from repro.daos.types import (
    ContainerId,
    DaosError,
    NoSuchObject,
    ObjectClass,
    ObjectId,
    PoolId,
)
from repro.daos.vos import VersionedObjectStore

__all__ = [
    "CachedDfsFile",
    "Checksummer",
    "ChecksumError",
    "ClientCache",
    "ContainerId",
    "DaosClient",
    "DaosEngine",
    "DaosError",
    "DfsFile",
    "DfsNamespace",
    "ExtentStore",
    "NoSuchObject",
    "ObjectClass",
    "ObjectHandle",
    "ObjectId",
    "PoolId",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "VersionedObject",
    "VersionedObjectStore",
]
