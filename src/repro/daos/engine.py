"""The DAOS I/O engine: targets, xstreams, pool/container service, object I/O.

One engine runs on the storage node, *unmodified* in every ROS2
configuration (the paper's key constraint: only the client moves to the
DPU).  The engine owns ``n_targets`` VOS instances — 8 per NVMe SSD, like
a production DAOS layout — each with a service xstream; object shards are
placed by hashing, with ``SX`` objects striping dkeys across all targets
(how DFS gets multi-SSD bandwidth from one file).

Data movement follows DAOS exactly: records at or below the inline
threshold travel inside the RPC; larger payloads ride one-sided bulk
transfers against the client-registered window (the engine *pulls* write
payloads and *pushes* read payloads), so on verbs providers the client
spends zero CPU per byte.
"""

from __future__ import annotations

import zlib
from math import fsum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.daos.rpc import RpcServer
from repro.daos.types import (
    ContainerId,
    DaosError,
    NoSuchContainer,
    NoSuchPool,
    ObjectClass,
    ObjectId,
    PoolId,
    new_container_id,
    new_pool_id,
)
from repro.daos.vos import VersionedObjectStore
from repro.hw.platform import StorageNode
from repro.hw.specs import US
from repro.net.fabric import FabricChannel, RemoteRegion
from repro.sim.core import Environment, Event, Process
from repro.storage.block import BlockDevice
from repro.storage.context import JobThread
from repro.storage.pmdk import PmemPool

__all__ = ["DaosEngine", "TARGETS_PER_SSD", "INLINE_THRESHOLD"]

#: Production-like layout: 8 targets (xstreams) per NVMe SSD.
TARGETS_PER_SSD = 8

#: Records at or below this size travel inline in the RPC; above it the
#: engine uses one-sided bulk against the client window (DAOS's
#: rpc-inline/bulk split).
INLINE_THRESHOLD = 4096

#: Per-request CPU on the serving xstream (dispatch, VOS tree walk,
#: durability bookkeeping) — x86 baseline.
ENGINE_CPU_PER_OP = 5.0 * US

#: Checksum/copy work per payload byte on the serving xstream.
ENGINE_CPU_PER_BYTE = 0.02e-9

#: Media-pipeline efficiency per transport family: the kernel-TCP data
#: path overlaps with NVMe streaming worse than RDMA's DMA'd bulk path
#: (calibrated so host TCP reads ~5.6 GiB/s where RDMA reads 6.45, Fig. 5).
MEDIA_OVERLAP = {"tcp": 0.88, "rdma": 1.0}


@dataclass(slots=True)
class _Container:
    cont_id: ContainerId
    epoch: int = 0  # highest committed epoch


@dataclass(slots=True)
class _Pool:
    pool_id: PoolId
    containers: Dict[ContainerId, _Container] = field(default_factory=dict)


@dataclass(slots=True)
class _Target:
    index: int
    vos: VersionedObjectStore
    xstream: JobThread
    #: Failure-injection flag: a down target serves nothing until rebuilt.
    down: bool = False


class DaosEngine:
    """The I/O engine process on the storage server."""

    def __init__(
        self,
        node: StorageNode,
        n_targets: Optional[int] = None,
        data_mode: bool = False,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.data_mode = bool(data_mode)
        n_ssds = len(node.nvme)
        self.n_targets = int(n_targets if n_targets is not None else TARGETS_PER_SSD * n_ssds)
        if self.n_targets <= 0:
            raise ValueError(f"need at least one target, got {self.n_targets}")

        self.block = BlockDevice(node.nvme, data_mode=data_mode)
        region = self.block.capacity_bytes // self.n_targets
        scm_per_target = node.scm_bytes // self.n_targets
        self.targets: List[_Target] = []
        for i in range(self.n_targets):
            scm = PmemPool(self.env, scm_per_target, data_mode=data_mode)
            vos = VersionedObjectStore(
                self.env, i, scm, self.block,
                nvme_region_start=i * region, nvme_region_bytes=region,
            )
            self.targets.append(_Target(i, vos, JobThread(
                self.env, f"{node.name}.xs{i}", factor=node.spec.cycle_factor
            )))
        self._sys_xstream = JobThread(
            self.env, f"{node.name}.xs_sys", factor=node.spec.cycle_factor
        )
        self.pools: Dict[PoolId, _Pool] = {}
        self._oid_seq = 1
        #: Placement cache: ``(oid.hi, oid.lo, dkey) -> [replica targets]``.
        #: Placement is a pure function of (oid, dkey, targets); targets are
        #: fixed at construction and failure only toggles ``down`` flags on
        #: the cached objects, so entries never go stale.  This removes an
        #: f-string + CRC32 from every data-path RPC.
        self._place_cache: Dict[tuple, List[_Target]] = {}
        #: Reads served from a surviving replica or by EC reconstruction
        #: while a target was down (surfaced in ``SystemReport``).
        self.degraded_reads = 0
        self.rpc = RpcServer(node)
        self._register_handlers()
        fx = self.env._faults
        if fx is not None:
            fx.register_engine(self)

    # -- administration (local API, also callable via RPC) ---------------------
    def create_pool(self) -> PoolId:
        """Create a pool spanning all targets."""
        pid = new_pool_id()
        self.pools[pid] = _Pool(pid)
        return pid

    def create_container(self, pool: PoolId) -> ContainerId:
        """Create a container in ``pool``."""
        p = self._pool(pool)
        cid = new_container_id()
        p.containers[cid] = _Container(cid)
        return cid

    def serve(self, channel: FabricChannel) -> Process:
        """Service DAOS RPCs arriving on ``channel``."""
        return self.rpc.serve(channel)

    # -- placement ----------------------------------------------------------------
    def target_for(self, oid: ObjectId, dkey: bytes) -> _Target:
        """Primary shard placement: S1/RP2 pin the object; SX stripes dkeys.

        Uses a stable CRC-based hash (Python's ``hash`` is salted per
        process, which would make placement non-reproducible).
        """
        seed = f"{oid.hi:x}.{oid.lo:x}".encode()
        if oid.oclass is ObjectClass.SX:
            h = zlib.crc32(seed + b"/" + bytes(dkey))
        else:
            h = zlib.crc32(seed)
        return self.targets[h % self.n_targets]

    def replicas_for(self, oid: ObjectId, dkey: bytes) -> List[_Target]:
        """All replica targets (primary first).  RP2 places the second
        replica on the next target ring position (distinct when possible).

        Results are memoised per ``(oid, dkey)`` — callers must treat the
        returned list as read-only (all in-tree callers do).
        """
        key = (oid.hi, oid.lo, dkey)
        cached = self._place_cache.get(key)
        if cached is not None:
            return cached
        primary = self.target_for(oid, dkey)
        if oid.oclass is not ObjectClass.RP2 or self.n_targets < 2:
            cached = [primary]
        else:
            cached = [primary, self.targets[(primary.index + 1) % self.n_targets]]
        self._place_cache[key] = cached
        return cached

    def ec_targets(self, oid: ObjectId, dkey: bytes) -> List[_Target]:
        """The (data0, data1, parity) targets of an EC2P1 shard."""
        if self.n_targets < 3:
            raise DaosError(
                f"EC2P1 needs at least 3 targets, engine has {self.n_targets}"
            )
        primary = self.target_for(oid, dkey)
        return [
            self.targets[(primary.index + i) % self.n_targets] for i in range(3)
        ]

    def live_replicas(self, oid: ObjectId, dkey: bytes) -> List[_Target]:
        """Replicas currently serving (down targets filtered out)."""
        replicas = self.replicas_for(oid, dkey)
        for t in replicas:
            if t.down:
                live = [x for x in replicas if not x.down]
                if not live:
                    raise DaosError(
                        f"all replicas of {oid} dkey={dkey!r} are down "
                        f"(data unavailable)"
                    )
                return live
        # Healthy path: no filtering, no list allocation (read-only result).
        return replicas

    # -- failure injection & rebuild ---------------------------------------------
    def fail_target(self, index: int) -> None:
        """Mark a target failed: it serves no I/O until rebuilt."""
        self.targets[index].down = True

    def rebuild_target(self, index: int):
        """Bring a failed target back and resync its redundant shards.

        Run as a process (``yield from`` / ``env.process``).  RP2 records
        are copied from the surviving replica; EC2P1 cell streams are
        XOR-reconstructed from the two surviving targets.  Failure here
        models *transient* unavailability (a rebooted target): surviving
        state is intact and only writes that raced the outage need
        resyncing.
        """
        target = self.targets[index]
        if not target.down:
            return
        resynced = 0
        resynced += yield from self._rebuild_ec(target)
        for peer in self.targets:
            if peer is target or peer.down:
                continue
            for (cont, oid), obj in list(peer.vos.objects.items()):
                if oid.oclass is not ObjectClass.RP2:
                    continue
                for dkey in list(obj._dkeys):
                    replicas = self.replicas_for(oid, dkey)
                    if target not in replicas or peer not in replicas:
                        continue
                    for akey, store in obj._dkeys[dkey].items():
                        extents = getattr(store, "extents", None)
                        if extents is None:
                            # Single values: replay the newest version.
                            for epoch, _seq, value in store.versions:
                                yield from target.vos.kv_put(
                                    cont, oid, dkey, akey, epoch, value
                                )
                            continue
                        for ext in extents:
                            if ext.punched:
                                target.vos.object(cont, oid).array(
                                    dkey, akey
                                ).punch(ext.epoch, ext.start, ext.nbytes)
                                continue
                            yield peer.xstream.run(ENGINE_CPU_PER_OP)
                            # Read from the survivor, write to the rebuilt.
                            yield from peer.vos.fetch(
                                cont, oid, dkey, akey, ext.epoch,
                                ext.start, ext.nbytes, verify=False,
                            )
                            yield from target.vos.update(
                                cont, oid, dkey, akey, ext.epoch,
                                ext.start, ext.nbytes, data=ext.data,
                            )
                            resynced += 1
        target.down = False
        return resynced

    def _rebuild_ec(self, target: _Target):
        """Reconstruct the EC cell streams the failed target should hold.

        For every EC object whose 3-target set includes ``target``, each
        extent present on a surviving member is reconstructed: parity from
        the two data streams, or a data stream from its sibling + parity.
        """
        from repro.daos import erasure

        rebuilt = 0
        done_keys = set()
        for peer in self.targets:
            if peer is target or peer.down:
                continue
            for (cont, oid), obj in list(peer.vos.objects.items()):
                if oid.oclass is not ObjectClass.EC2P1:
                    continue
                for dkey in list(obj._dkeys):
                    ec_set = self.ec_targets(oid, dkey)
                    if target not in ec_set or peer is not next(
                        t for t in ec_set if not t.down
                    ):
                        continue  # one survivor drives each shard's rebuild
                    missing = ec_set.index(target)
                    survivors = [t for i, t in enumerate(ec_set) if i != missing]
                    if any(t.down for t in survivors):
                        continue  # unrecoverable right now
                    for akey, store in obj._dkeys[dkey].items():
                        extents = getattr(store, "extents", None)
                        if not extents:
                            continue
                        for ext in extents:
                            key = (cont, oid, dkey, akey, ext.epoch,
                                   ext.start, ext.end)
                            if key in done_keys or ext.punched:
                                continue
                            done_keys.add(key)
                            parts = []
                            for s in survivors:
                                yield s.xstream.run(ENGINE_CPU_PER_OP)
                                part = yield from s.vos.fetch(
                                    cont, oid, dkey, akey, ext.epoch,
                                    ext.start, ext.nbytes, verify=False,
                                )
                                parts.append(part)
                            lost = erasure.xor_bytes(parts[0], parts[1])
                            yield target.xstream.run(
                                ENGINE_CPU_PER_BYTE * 2 * ext.nbytes
                            )
                            yield from target.vos.update(
                                cont, oid, dkey, akey, ext.epoch,
                                ext.start, ext.nbytes, data=lost,
                            )
                            rebuilt += 1
        return rebuilt

    # -- internals -----------------------------------------------------------------
    def _pool(self, pool: PoolId) -> _Pool:
        p = self.pools.get(pool)
        if p is None:
            raise NoSuchPool(f"{pool} does not exist")
        return p

    def _cont(self, pool: PoolId, cont: ContainerId) -> _Container:
        c = self._pool(pool).containers.get(cont)
        if c is None:
            raise NoSuchContainer(f"{cont} does not exist in {pool}")
        return c

    @staticmethod
    def _media_eff(channel: FabricChannel) -> float:
        return MEDIA_OVERLAP[channel.provider.family]

    def _register_handlers(self) -> None:
        r = self.rpc.register
        r("pool_connect", self._h_pool_connect)
        r("cont_create", self._h_cont_create)
        r("cont_open", self._h_cont_open)
        r("cont_query", self._h_cont_query)
        r("oid_alloc", self._h_oid_alloc)
        r("obj_update", self._h_obj_update)
        r("obj_fetch", self._h_obj_fetch)
        r("obj_punch", self._h_obj_punch)
        r("obj_punch_dkey", self._h_obj_punch_dkey)
        r("obj_list_dkeys", self._h_obj_list_dkeys)
        r("obj_sizes", self._h_obj_sizes)
        r("kv_put", self._h_kv_put)
        r("kv_get", self._h_kv_get)
        r("tx_commit", self._h_tx_commit)

    # -- control handlers -------------------------------------------------------
    def _h_pool_connect(self, args, src, channel):
        pool = self._pool(args["pool"])
        yield self._sys_xstream.run(ENGINE_CPU_PER_OP)
        return {"n_targets": self.n_targets, "pool": pool.pool_id}

    def _h_cont_create(self, args, src, channel):
        yield self._sys_xstream.run(ENGINE_CPU_PER_OP)
        return {"cont": self.create_container(args["pool"])}

    def _h_cont_open(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        yield self._sys_xstream.run(ENGINE_CPU_PER_OP)
        return {"epoch": cont.epoch}

    def _h_cont_query(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        yield self._sys_xstream.run(ENGINE_CPU_PER_OP)
        return {"epoch": cont.epoch}

    def _h_oid_alloc(self, args, src, channel):
        """Allocate a range of object ids (DAOS oid allocator)."""
        count = int(args.get("count", 1))
        if count <= 0:
            raise DaosError(f"oid_alloc count must be positive, got {count}")
        base = self._oid_seq
        self._oid_seq += count
        yield self._sys_xstream.run(ENGINE_CPU_PER_OP)
        return {"base": base, "count": count}

    # -- data handlers ------------------------------------------------------------
    def _h_obj_update(self, args, src, channel):
        pool, cid = args["pool"], args["cont"]
        cont = self._cont(pool, cid)
        oid: ObjectId = args["oid"]
        dkey, akey = args["dkey"], args["akey"]
        offset, nbytes = args["offset"], args["nbytes"]
        region: Optional[RemoteRegion] = args.get("region")
        data: Optional[bytes] = args.get("data")
        epoch = args.get("epoch")
        if epoch is None:
            cont.epoch += 1
            epoch = cont.epoch
        elif epoch <= 0:
            raise DaosError(f"bad epoch {epoch}")

        trace = args.get("_trace")
        if oid.oclass is ObjectClass.EC2P1:
            result = yield from self._ec_update(
                channel, cid, oid, dkey, akey, epoch, offset, nbytes,
                region, data, trace=trace,
            )
            return result

        replicas = self.live_replicas(oid, dkey)
        span = trace.child("engine.xstream", node=self.node.name, nbytes=nbytes) if trace is not None else None
        yield replicas[0].xstream.run(
            ENGINE_CPU_PER_OP + ENGINE_CPU_PER_BYTE * nbytes
        )
        if span is not None:
            span.finish()
        if region is not None and nbytes > INLINE_THRESHOLD:
            # Bulk pull from the client window (one-sided on verbs), once;
            # replicas share the payload server-side.
            data = yield from channel.rma_read(self.node.name, region, nbytes,
                                               trace=trace)
        eff = self._media_eff(channel)
        if len(replicas) == 1:
            yield from replicas[0].vos.update(
                cid, oid, dkey, akey, epoch, offset, nbytes, data=data,
                bw_efficiency=eff, trace=trace,
            )
        else:
            # Replicated write: all replicas persist in parallel; the
            # update completes when the slowest replica is durable.
            writes = []
            for idx, target in enumerate(replicas):
                if idx:
                    yield target.xstream.run(ENGINE_CPU_PER_OP)
                writes.append(self.env.process(target.vos.update(
                    cid, oid, dkey, akey, epoch, offset, nbytes, data=data,
                    bw_efficiency=eff, trace=trace,
                )))
            yield self.env.all_of(writes)
        return {"epoch": epoch}

    def _h_obj_fetch(self, args, src, channel):
        pool, cid = args["pool"], args["cont"]
        cont = self._cont(pool, cid)
        oid: ObjectId = args["oid"]
        dkey, akey = args["dkey"], args["akey"]
        offset, nbytes = args["offset"], args["nbytes"]
        region: Optional[RemoteRegion] = args.get("region")
        epoch = args.get("epoch")
        if epoch is None:
            epoch = cont.epoch

        trace = args.get("_trace")
        if oid.oclass is ObjectClass.EC2P1:
            result = yield from self._ec_fetch(
                channel, cid, oid, dkey, akey, epoch, offset, nbytes, region,
                trace=trace,
            )
            return result

        # Served by the first live replica (primary unless failed over).
        live = self.live_replicas(oid, dkey)
        if live is not self.replicas_for(oid, dkey):
            # Failover filtered the placement: this read is degraded.
            self.degraded_reads += 1
        target = live[0]
        span = trace.child("engine.xstream", node=self.node.name, nbytes=nbytes) if trace is not None else None
        yield target.xstream.run(
            ENGINE_CPU_PER_OP + ENGINE_CPU_PER_BYTE * nbytes
        )
        if span is not None:
            span.finish()
        data = yield from target.vos.fetch(
            cid, oid, dkey, akey, epoch, offset, nbytes,
            bw_efficiency=self._media_eff(channel), trace=trace,
        )
        if region is not None and nbytes > INLINE_THRESHOLD:
            # Bulk push into the client window.
            yield from channel.rma_write(
                self.node.name, region, payload=data, nbytes=nbytes, trace=trace
            )
            return {"epoch": epoch, "nbytes": nbytes}
        # Inline read: the payload rides the reply capsule on the wire.
        return {"epoch": epoch, "nbytes": nbytes, "data": data, "_wire": nbytes}

    # -- erasure-coded data path (EC2P1) -----------------------------------------
    def _ec_update(self, channel, cid, oid, dkey, akey, epoch, offset, nbytes,
                   region, data, trace=None):
        """Stripe-aligned EC write: two data cells + XOR parity, three targets.

        Degraded writes (a cell target down) are rejected — real DAOS
        journals them via a replication fallback we do not model; rebuild
        the target first.
        """
        from repro.daos import erasure

        try:
            erasure.check_aligned(offset, nbytes)
        except ValueError as exc:
            raise DaosError(str(exc)) from exc
        targets = self.ec_targets(oid, dkey)
        if any(t.down for t in targets):
            raise DaosError("EC2P1 degraded writes are not supported; rebuild first")

        yield targets[0].xstream.run(
            ENGINE_CPU_PER_OP + ENGINE_CPU_PER_BYTE * nbytes
        )
        if region is not None and nbytes > INLINE_THRESHOLD:
            data = yield from channel.rma_read(self.node.name, region, nbytes,
                                               trace=trace)
        d0, d1, parity = erasure.encode(data, nbytes)
        half = nbytes // 2
        local_off = (offset // erasure.STRIPE_BYTES) * erasure.CELL_BYTES
        eff = self._media_eff(channel)
        # Parity XOR runs on the parity target's xstream.
        yield targets[2].xstream.run(ENGINE_CPU_PER_BYTE * nbytes)
        writes = [
            self.env.process(t.vos.update(
                cid, oid, dkey, akey, epoch, local_off, half, data=buf,
                bw_efficiency=eff,
            ))
            for t, buf in zip(targets, (d0, d1, parity))
        ]
        yield self.env.all_of(writes)
        return {"epoch": epoch}

    def _ec_fetch(self, channel, cid, oid, dkey, akey, epoch, offset, nbytes,
                  region, trace=None):
        """Stripe-aligned EC read, reconstructing through parity when one
        data target is down."""
        from repro.daos import erasure

        try:
            erasure.check_aligned(offset, nbytes)
        except ValueError as exc:
            raise DaosError(str(exc)) from exc
        targets = self.ec_targets(oid, dkey)
        d_targets, p_target = targets[:2], targets[2]
        down = [t.down for t in d_targets]
        if all(down) or (any(down) and p_target.down):
            raise DaosError(
                f"EC2P1 shard of {oid} has lost too many targets to reconstruct"
            )
        half = nbytes // 2
        local_off = (offset // erasure.STRIPE_BYTES) * erasure.CELL_BYTES
        eff = self._media_eff(channel)
        serving = next(t for t in targets if not t.down)
        yield serving.xstream.run(ENGINE_CPU_PER_OP + ENGINE_CPU_PER_BYTE * nbytes)

        def read_from(t):
            return self.env.process(t.vos.fetch(
                cid, oid, dkey, akey, epoch, local_off, half,
                bw_efficiency=eff,
            ))

        if not any(down):
            p0, p1 = read_from(d_targets[0]), read_from(d_targets[1])
            results = yield self.env.all_of([p0, p1])
            data = erasure.interleave(results[p0], results[p1])
        else:
            self.degraded_reads += 1
            alive = d_targets[1] if down[0] else d_targets[0]
            pa, pp = read_from(alive), read_from(p_target)
            results = yield self.env.all_of([pa, pp])
            # Reconstruct the lost cell stream, then reassemble in order.
            lost = erasure.reconstruct_cell(results[pa], results[pp])
            yield p_target.xstream.run(ENGINE_CPU_PER_BYTE * nbytes)
            if down[0]:
                data = erasure.interleave(lost, results[pa])
            else:
                data = erasure.interleave(results[pa], lost)

        if region is not None and nbytes > INLINE_THRESHOLD:
            yield from channel.rma_write(
                self.node.name, region, payload=data, nbytes=nbytes, trace=trace
            )
            return {"epoch": epoch, "nbytes": nbytes}
        return {"epoch": epoch, "nbytes": nbytes, "data": data, "_wire": nbytes}

    def _h_obj_punch(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        cont.epoch += 1
        target = self.target_for(args["oid"], args["dkey"])
        yield target.xstream.run(ENGINE_CPU_PER_OP)
        yield from target.vos.punch(
            args["cont"], args["oid"], args["dkey"], args["akey"],
            cont.epoch, args["offset"], args["nbytes"],
        )
        return {"epoch": cont.epoch}

    def _h_obj_punch_dkey(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        cont.epoch += 1
        oid, dkey = args["oid"], args["dkey"]
        target = self.target_for(oid, dkey)
        yield target.xstream.run(ENGINE_CPU_PER_OP)
        target.vos.object(args["cont"], oid).punch_dkey(cont.epoch, dkey)
        return {"epoch": cont.epoch}

    def _h_obj_list_dkeys(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        oid = args["oid"]
        epoch = args.get("epoch", cont.epoch)
        # SX objects stripe dkeys over every target: enumerate them all.
        merged: List[bytes] = []
        for target in self._shards_of(oid):
            yield target.xstream.run(ENGINE_CPU_PER_OP)
            keys = yield from target.vos.list_dkeys(args["cont"], oid, epoch)
            merged.extend(keys)
        return {"dkeys": sorted(set(merged))}

    def _h_obj_sizes(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        oid = args["oid"]
        epoch = args.get("epoch", cont.epoch)
        sizes: Dict[bytes, int] = {}
        for target in self._shards_of(oid):
            yield target.xstream.run(ENGINE_CPU_PER_OP)
            part = yield from target.vos.dkey_sizes(
                args["cont"], oid, args["akey"], epoch
            )
            sizes.update(part)
        if oid.oclass is ObjectClass.EC2P1:
            # Targets store cell streams: logical bytes are twice the
            # local per-target extent size.
            sizes = {k: 2 * v for k, v in sizes.items()}
        return {"sizes": sizes}

    def _h_kv_put(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        cont.epoch += 1
        for target in self.live_replicas(args["oid"], args["dkey"]):
            yield target.xstream.run(ENGINE_CPU_PER_OP)
            yield from target.vos.kv_put(
                args["cont"], args["oid"], args["dkey"], args["akey"],
                cont.epoch, args["value"],
            )
        return {"epoch": cont.epoch}

    def _h_kv_get(self, args, src, channel):
        cont = self._cont(args["pool"], args["cont"])
        epoch = args.get("epoch", cont.epoch)
        live = self.live_replicas(args["oid"], args["dkey"])
        if live is not self.replicas_for(args["oid"], args["dkey"]):
            self.degraded_reads += 1
        target = live[0]
        yield target.xstream.run(ENGINE_CPU_PER_OP)
        value = yield from target.vos.kv_get(
            args["cont"], args["oid"], args["dkey"], args["akey"], epoch
        )
        return {"value": value}

    def _h_tx_commit(self, args, src, channel):
        """Apply a batch of staged operations atomically at one new epoch."""
        cont = self._cont(args["pool"], args["cont"])
        cont.epoch += 1
        epoch = cont.epoch
        for op in args["ops"]:
            kind = op["kind"]
            oid, dkey = op["oid"], op["dkey"]
            target = self.target_for(oid, dkey)
            yield target.xstream.run(ENGINE_CPU_PER_OP)
            if kind == "update":
                yield from target.vos.update(
                    args["cont"], oid, dkey, op["akey"], epoch,
                    op["offset"], op["nbytes"], data=op.get("data"),
                )
            elif kind == "kv_put":
                yield from target.vos.kv_put(
                    args["cont"], oid, dkey, op["akey"], epoch, op["value"]
                )
            elif kind == "punch_dkey":
                target.vos.object(args["cont"], oid).punch_dkey(epoch, dkey)
            else:
                raise DaosError(f"unknown tx op kind {kind!r}")
        return {"epoch": epoch}

    def _shards_of(self, oid: ObjectId) -> List[_Target]:
        if oid.oclass is ObjectClass.SX:
            return [t for t in self.targets if not t.down]
        if oid.oclass is ObjectClass.RP2:
            return self.live_replicas(oid, b"")[:1]
        if oid.oclass is ObjectClass.EC2P1:
            live = [t for t in self.ec_targets(oid, b"")[:2] if not t.down]
            if not live:
                raise DaosError(f"both data targets of {oid} are down")
            return live[:1]
        return [self.target_for(oid, b"")]

    # -- introspection ---------------------------------------------------------------
    def xstream_utilization(self) -> float:
        """Mean busy fraction across target xstreams."""
        now = self.env.now
        if now <= 0:
            return 0.0
        return fsum(t.xstream.busy_time for t in self.targets) / (now * self.n_targets)
