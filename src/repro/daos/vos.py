"""Per-target Versioned Object Store: records bound to SCM + NVMe media.

Each DAOS target owns one VOS instance.  Small records and all metadata
live on storage-class memory (PMDK tier); bulk array extents live on NVMe
through the user-space driver (§3.3 "storage tiers").  The VOS charges
media time for every update/fetch and computes/verifies the end-to-end
checksum of each extent.

The ``bw_efficiency`` parameter threads the transport-dependent pipeline
efficiency into device reads/writes: kernel-TCP data paths overlap with
media streaming measurably worse than RDMA's DMA'd bulk transfers (this is
one of the calibrated mechanisms behind Fig. 5a, where host TCP tops out
at ~5-6 GiB/s on a drive RDMA streams at 6.4 GiB/s).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.daos.checksum import Checksummer
from repro.daos.object import Coverage, VersionedObject
from repro.daos.types import ContainerId, NoSuchObject, ObjectId
from repro.sim.core import Environment, Event
from repro.storage.block import BlockDevice
from repro.storage.pmdk import PmemPool

__all__ = ["VersionedObjectStore"]

#: Records strictly below this size go to SCM (DAOS's media threshold;
#: 4 KiB records go to NVMe so the paper's 4 KiB IOPS tests exercise the
#: drives, as their write-IOPS ceilings in Fig. 5 show).
SCM_THRESHOLD = 2048

#: Estimated SCM bytes per single-value / metadata record.
KV_RECORD_BYTES = 128


class VersionedObjectStore:
    """One target's VOS."""

    def __init__(
        self,
        env: Environment,
        target_index: int,
        scm: PmemPool,
        nvme: BlockDevice,
        nvme_region_start: int,
        nvme_region_bytes: int,
        scm_threshold: int = SCM_THRESHOLD,
    ) -> None:
        self.env = env
        self.target_index = target_index
        self.scm = scm
        self.nvme = nvme
        self.region_start = int(nvme_region_start)
        self.region_bytes = int(nvme_region_bytes)
        self.scm_threshold = int(scm_threshold)
        self._nvme_cursor = 0
        self.objects: Dict[Tuple[ContainerId, ObjectId], VersionedObject] = {}

    # -- object lookup ---------------------------------------------------------
    def object(self, cont: ContainerId, oid: ObjectId) -> VersionedObject:
        """Get/create the object shard held by this target."""
        key = (cont, oid)
        obj = self.objects.get(key)
        if obj is None:
            obj = self.objects[key] = VersionedObject()
        return obj

    def object_if_exists(self, cont: ContainerId, oid: ObjectId) -> Optional[VersionedObject]:
        """The object shard, or None if nothing was ever written."""
        return self.objects.get((cont, oid))

    # -- media allocation --------------------------------------------------------
    def _alloc_nvme(self, nbytes: int) -> int:
        if self._nvme_cursor + nbytes > self.region_bytes:
            raise MemoryError(
                f"target {self.target_index}: NVMe region exhausted "
                f"({self._nvme_cursor}+{nbytes} > {self.region_bytes})"
            )
        offset = self.region_start + self._nvme_cursor
        self._nvme_cursor += nbytes
        return offset

    # -- array I/O ----------------------------------------------------------------
    def update(
        self,
        cont: ContainerId,
        oid: ObjectId,
        dkey: bytes,
        akey: bytes,
        epoch: int,
        offset: int,
        nbytes: int,
        data: Optional[bytes] = None,
        bw_efficiency: float = 1.0,
        trace=None,
    ) -> Generator[Event, None, None]:
        """Write one extent: record it, then persist to the right tier."""
        store = self.object(cont, oid).array(dkey, akey)
        ext = store.write(epoch, offset, nbytes, data)
        if nbytes <= self.scm_threshold:
            span = trace.child("media.scm", nbytes=nbytes) if trace is not None else None
            scm_off = self.scm.reserve(nbytes)
            yield from self.scm.persist(scm_off, nbytes=nbytes, data=data)
            ext.media = ("scm", scm_off)
        else:
            span = trace.child("media.nvme", nbytes=nbytes) if trace is not None else None
            dev_off = self._alloc_nvme(nbytes)
            yield from self.nvme.write(
                dev_off, nbytes=nbytes, data=data, bw_efficiency=bw_efficiency
            )
            ext.media = ("nvme", dev_off)
        if span is not None:
            span.finish()

    def fetch(
        self,
        cont: ContainerId,
        oid: ObjectId,
        dkey: bytes,
        akey: bytes,
        epoch: int,
        offset: int,
        nbytes: int,
        verify: bool = True,
        bw_efficiency: float = 1.0,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """Read a range at ``epoch``: media time per covering extent,
        checksum verification, zero-fill for holes."""
        obj = self.object_if_exists(cont, oid)
        if obj is None:
            # Never-written object: a pure hole, no media touched.
            return bytes(nbytes) if self._data_mode() else None
        store = obj.array(dkey, akey)
        coverage: List[Coverage] = store.resolve(epoch, offset, nbytes)
        out: Optional[bytearray] = bytearray(nbytes) if self._data_mode() else None

        env = self.env
        reads = []
        any_nvme = False
        for seg in coverage:
            ext = seg.extent
            if ext is None or ext.media is None:
                continue
            tier, media_off = ext.media
            seg_off = media_off + (seg.start - ext.start)
            if tier == "scm":
                reads.append(self.scm.load(seg_off, seg.nbytes))
            else:
                any_nvme = True
                reads.append(
                    self.nvme.read(seg_off, seg.nbytes, bw_efficiency=bw_efficiency)
                )
            if verify:
                Checksummer.verify(ext.data, ext.nbytes, ext.checksum)
            if out is not None and ext.data is not None:
                src = seg.start - ext.start
                out[seg.start - offset:seg.end - offset] = \
                    memoryview(ext.data)[src:src + seg.nbytes]
        if reads:
            span = None
            if trace is not None:
                span = trace.child("media.nvme" if any_nvme else "media.scm",
                                   nbytes=nbytes)
            if len(reads) == 1:
                # Single covering extent (the common case for aligned I/O):
                # drive the media generator inline instead of wrapping it in
                # a Process + AllOf — same reservations at the same instant,
                # two fewer events and three fewer allocations per fetch.
                yield from reads[0]
            else:
                yield env.all_of([env.process(g) for g in reads])
            if span is not None:
                span.finish()
        return bytes(out) if out is not None else None

    def punch(
        self,
        cont: ContainerId,
        oid: ObjectId,
        dkey: bytes,
        akey: bytes,
        epoch: int,
        offset: int,
        nbytes: int,
    ) -> Generator[Event, None, None]:
        """Punch a hole: a metadata-only record on SCM."""
        self.object(cont, oid).array(dkey, akey).punch(epoch, offset, nbytes)
        scm_off = self.scm.reserve(KV_RECORD_BYTES)
        yield from self.scm.persist(scm_off, nbytes=KV_RECORD_BYTES)

    # -- key-value (single value) I/O -------------------------------------------
    def kv_put(
        self,
        cont: ContainerId,
        oid: ObjectId,
        dkey: bytes,
        akey: bytes,
        epoch: int,
        value: Any,
    ) -> Generator[Event, None, None]:
        """Replace a single value (metadata record on SCM)."""
        self.object(cont, oid).value(dkey, akey).write(epoch, value)
        scm_off = self.scm.reserve(KV_RECORD_BYTES)
        yield from self.scm.persist(scm_off, nbytes=KV_RECORD_BYTES)

    def kv_get(
        self,
        cont: ContainerId,
        oid: ObjectId,
        dkey: bytes,
        akey: bytes,
        epoch: int,
    ) -> Generator[Event, None, Any]:
        """Read a single value at ``epoch`` (raises NoSuchObject if absent)."""
        obj = self.object_if_exists(cont, oid)
        if obj is None:
            raise NoSuchObject(f"{oid} has no records on target {self.target_index}")
        value = obj.read_value(epoch, dkey, akey)
        yield from self.scm.load(0, KV_RECORD_BYTES)
        return value

    # -- enumeration ---------------------------------------------------------------
    def list_dkeys(
        self, cont: ContainerId, oid: ObjectId, epoch: int
    ) -> Generator[Event, None, List[bytes]]:
        """Enumerate visible dkeys (SCM tree walk)."""
        obj = self.object_if_exists(cont, oid)
        if obj is None:
            return []
        keys = obj.list_dkeys(epoch)
        yield from self.scm.load(0, KV_RECORD_BYTES * max(1, len(keys)))
        return keys

    def dkey_sizes(
        self, cont: ContainerId, oid: ObjectId, akey: bytes, epoch: int
    ) -> Generator[Event, None, Dict[bytes, int]]:
        """Per-dkey array sizes at ``epoch`` (for DFS file-size queries)."""
        obj = self.object_if_exists(cont, oid)
        if obj is None:
            return {}
        sizes: Dict[bytes, int] = {}
        for dkey in obj.list_dkeys(epoch):
            try:
                store = obj.array(dkey, akey)
            except TypeError:
                continue
            size = store.size(epoch)
            if size:
                sizes[dkey] = size
        yield from self.scm.load(0, KV_RECORD_BYTES * max(1, len(sizes)))
        return sizes

    # -- helpers ------------------------------------------------------------------
    def _data_mode(self) -> bool:
        return self.nvme.data_mode

    @property
    def nvme_used_bytes(self) -> int:
        """Bytes bump-allocated from this target's NVMe region."""
        return self._nvme_cursor
