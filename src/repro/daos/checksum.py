"""End-to-end checksums.

DAOS protects every extent with a checksum computed at ingest and verified
at fetch (§2.4).  We use CRC-32C semantics via :func:`zlib.crc32` (the
polynomial differs from Castagnoli but the behaviour — fast, 32-bit,
chunked — is equivalent for the reproduction).  Virtual payloads get a
*size-keyed sentinel* so the code path (store, compare, reject) is always
exercised even when no real bytes move.
"""

from __future__ import annotations

import zlib
from typing import Optional

__all__ = ["Checksummer", "ChecksumError", "CHUNK_BYTES"]

#: DAOS checksums data in chunks (csum_chunk_size); verification failures
#: localize to a chunk.  We keep one checksum per extent plus the chunk
#: constant for cost accounting.
CHUNK_BYTES = 32 * 1024


class ChecksumError(RuntimeError):
    """Stored data failed its end-to-end verification."""


class Checksummer:
    """Compute/verify extent checksums in functional or virtual mode."""

    algo = "crc32c"

    @staticmethod
    def compute(data: Optional[bytes], nbytes: int) -> int:
        """Checksum of ``data`` (or the virtual sentinel for ``nbytes``)."""
        if data is not None:
            return zlib.crc32(data) & 0xFFFFFFFF
        # Virtual payload: sentinel derived from the length so that a
        # size-corrupting bug still trips verification.
        return (0x5EED ^ (nbytes * 0x9E3779B1)) & 0xFFFFFFFF

    @classmethod
    def verify(cls, data: Optional[bytes], nbytes: int, expected: int) -> None:
        """Raise :class:`ChecksumError` unless the checksum matches."""
        actual = cls.compute(data, nbytes)
        if actual != expected:
            raise ChecksumError(
                f"checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
            )

    @staticmethod
    def n_chunks(nbytes: int) -> int:
        """Number of checksum chunks an extent of ``nbytes`` spans."""
        return max(1, (nbytes + CHUNK_BYTES - 1) // CHUNK_BYTES)
