"""Identifiers, errors and object classes for the DAOS-like store."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "PoolId",
    "ContainerId",
    "ObjectId",
    "ObjectClass",
    "DaosError",
    "NoSuchPool",
    "NoSuchContainer",
    "NoSuchObject",
    "EpochError",
    "new_pool_id",
    "new_container_id",
]


class DaosError(RuntimeError):
    """Base class for storage-stack errors."""


class NoSuchPool(DaosError):
    """Pool handle or id does not resolve."""


class NoSuchContainer(DaosError):
    """Container id does not resolve within the pool."""


class NoSuchObject(DaosError):
    """Object (or dkey/akey within it) does not exist at this epoch."""


class EpochError(DaosError):
    """Invalid epoch ordering (write into the past, read of the future)."""


class ObjectClass(Enum):
    """How an object's shards spread over targets (simplified DAOS oclass).

    * ``S1`` — single target (metadata, small objects).
    * ``SX`` — striped across every target (bulk file data; gives DFS its
      multi-SSD bandwidth scaling).
    * ``RP2`` — two replicas per dkey on distinct targets (DAOS RP_2G1):
      updates land on both, fetches are served by any live replica, and a
      failed target can be rebuilt from its peer.
    * ``EC2P1`` — 2+1 erasure coding (DAOS EC_2P1G1): stripes split into
      two data cells plus XOR parity on three distinct targets; any
      single-target loss reconstructs.
    """

    S1 = "S1"
    SX = "SX"
    RP2 = "RP2"
    EC2P1 = "EC2P1"


@dataclass(frozen=True, order=True, slots=True)
class PoolId:
    """A pool UUID (compact integer form)."""

    value: int

    def __str__(self) -> str:
        return f"pool-{self.value:08x}"


@dataclass(frozen=True, order=True, slots=True)
class ContainerId:
    """A container UUID within a pool."""

    value: int

    def __str__(self) -> str:
        return f"cont-{self.value:08x}"


@dataclass(frozen=True, order=True, slots=True)
class ObjectId:
    """A 128-bit-style object id: (hi: class/meta, lo: sequence)."""

    hi: int
    lo: int

    _CLASS_CODES = {"S1": 0x0, "SX": 0x1, "RP2": 0x2, "EC2P1": 0x3}

    @property
    def oclass(self) -> ObjectClass:
        """Object class encoded in the high bits."""
        # Decoded via a precomputed code->class table (this property sits
        # on the per-IO placement path; the old linear scan plus enum
        # construction showed up in wall-clock profiles).
        return _OCLASS_BY_CODE[(self.hi >> 56) & 0x3]

    @staticmethod
    def make(lo: int, oclass: ObjectClass = ObjectClass.S1) -> "ObjectId":
        code = ObjectId._CLASS_CODES[oclass.value]
        return ObjectId(code << 56, lo)

    def __str__(self) -> str:
        return f"oid-{self.hi:x}.{self.lo:x}"


#: Reverse of :attr:`ObjectId._CLASS_CODES`; every 2-bit code maps to a
#: class (unknown codes cannot occur after the ``& 0x3`` mask, and all four
#: values are assigned), so :attr:`ObjectId.oclass` is one dict lookup.
_OCLASS_BY_CODE = {
    code: ObjectClass(name) for name, code in ObjectId._CLASS_CODES.items()
}


_pool_seq = itertools.count(0xA000_0001)
_cont_seq = itertools.count(0xB000_0001)


def new_pool_id() -> PoolId:
    """Mint a fresh pool id."""
    return PoolId(next(_pool_seq))


def new_container_id() -> ContainerId:
    """Mint a fresh container id."""
    return ContainerId(next(_cont_seq))
