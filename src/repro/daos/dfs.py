"""DFS: the POSIX namespace mapped onto DAOS objects (libdfs).

Layout follows DAOS's DFS closely (§3.3 "DFS mapping"):

* A **superblock** object (reserved oid) records the filesystem magic,
  default chunk size and the root directory's oid.
* A **directory** is an ``S1`` object whose dkeys are entry names; each
  entry is a single-value akey holding ``(type, oid, chunk_size, mode)``.
* A **file** is an ``SX`` object whose dkeys are chunk indices (8-byte
  big-endian); chunk payloads are extents under the ``b"data"`` akey.
  ``SX`` striping spreads consecutive chunks over every engine target,
  which is how one file saturates a 4-SSD array.

Namespace mutations (create, unlink, rename) commit through DAOS
transactions so a crash between RPCs can never half-create an entry.
POSIX-style errors surface as :class:`FileNotFoundError`,
:class:`FileExistsError`, :class:`NotADirectoryError`, :class:`IsADirectoryError`.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.daos.client import ContainerHandle, DaosClient, ObjectHandle
from repro.daos.types import DaosError, NoSuchObject, ObjectClass, ObjectId
from repro.sim.core import Event
from repro.storage.context import JobThread

__all__ = ["DfsNamespace", "DfsFile", "CHUNK_SIZE"]

#: Default file chunk size (DFS default; also the paper's large block size).
CHUNK_SIZE = 1024 * 1024

DFS_MAGIC = "DFS1"
_SB_OID = ObjectId.make(0, ObjectClass.S1)
_ENTRY_AKEY = b"entry"
_DATA_AKEY = b"data"


def _chunk_dkey(index: int) -> bytes:
    """Chunk index -> dkey bytes (big-endian keeps enumeration sorted)."""
    return struct.pack(">Q", index)


def _chunk_index(dkey: bytes) -> int:
    return struct.unpack(">Q", dkey)[0]


class DfsFile:
    """An open regular file."""

    def __init__(
        self, ns: "DfsNamespace", path: str, oid: ObjectId, chunk_size: int
    ) -> None:
        self.ns = ns
        self.path = path
        self.oid = oid
        self.chunk_size = int(chunk_size)
        self._obj: ObjectHandle = ns.cont.obj(oid)

    def _split(self, offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
        """Break a byte range into (chunk_index, offset_in_chunk, length)."""
        if offset < 0 or nbytes <= 0:
            raise ValueError(f"bad file range ({offset}, {nbytes})")
        out = []
        pos, remaining = offset, nbytes
        while remaining > 0:
            idx, in_off = divmod(pos, self.chunk_size)
            take = min(remaining, self.chunk_size - in_off)
            out.append((idx, in_off, take))
            pos += take
            remaining -= take
        return out

    def write(
        self,
        ctx: JobThread,
        offset: int,
        nbytes: Optional[int] = None,
        data: Optional[bytes] = None,
        trace=None,
    ) -> Generator[Event, None, None]:
        """POSIX pwrite; chunk pieces proceed in parallel."""
        if nbytes is None:
            if data is None:
                raise DaosError("write needs data or an explicit nbytes")
            nbytes = len(data)
        pieces = self._split(offset, nbytes)
        env = self.ns.client.env
        if len(pieces) == 1:
            idx, in_off, take = pieces[0]
            piece = data[:take] if data is not None else None
            yield from self._obj.update(
                ctx, _chunk_dkey(idx), _DATA_AKEY, in_off, nbytes=take, data=piece,
                trace=trace,
            )
            return
        procs = []
        consumed = 0
        for idx, in_off, take in pieces:
            piece = data[consumed:consumed + take] if data is not None else None
            procs.append(env.process(self._obj.update(
                ctx, _chunk_dkey(idx), _DATA_AKEY, in_off, nbytes=take, data=piece,
                trace=trace,
            )))
            consumed += take
        yield env.all_of(procs)

    def read(
        self,
        ctx: JobThread,
        offset: int,
        nbytes: int,
        epoch: Optional[int] = None,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """POSIX pread; returns bytes in data mode, None otherwise."""
        pieces = self._split(offset, nbytes)
        env = self.ns.client.env
        if len(pieces) == 1:
            idx, in_off, take = pieces[0]
            return (yield from self._obj.fetch(
                ctx, _chunk_dkey(idx), _DATA_AKEY, in_off, take, epoch=epoch,
                trace=trace,
            ))
        procs = [
            env.process(self._obj.fetch(
                ctx, _chunk_dkey(idx), _DATA_AKEY, in_off, take, epoch=epoch,
                trace=trace,
            ))
            for idx, in_off, take in pieces
        ]
        results = yield env.all_of(procs)
        parts = [results[p] for p in procs]
        if any(part is None for part in parts):
            return None
        return b"".join(parts)

    def punch(
        self, ctx: JobThread, offset: int, nbytes: int
    ) -> Generator[Event, None, None]:
        """Deallocate a byte range (reads back as zeros)."""
        for idx, in_off, take in self._split(offset, nbytes):
            yield from self._obj.punch(ctx, _chunk_dkey(idx), _DATA_AKEY, in_off, take)

    def size(self, ctx: JobThread) -> Generator[Event, None, int]:
        """POSIX file size: end of the highest-offset visible extent."""
        sizes = yield from self._obj.dkey_sizes(ctx, _DATA_AKEY)
        best = 0
        for dkey, sz in sizes.items():
            end = _chunk_index(dkey) * self.chunk_size + sz
            if end > best:
                best = end
        return best


class DfsNamespace:
    """A mounted DFS filesystem inside one container."""

    def __init__(self, client: DaosClient, cont: ContainerHandle) -> None:
        self.client = client
        self.cont = cont
        self.chunk_size = CHUNK_SIZE
        self.root_oid: Optional[ObjectId] = None

    # -- mount/format --------------------------------------------------------
    def format(self, ctx: JobThread) -> Generator[Event, None, "DfsNamespace"]:
        """Initialize the superblock and root directory (mkfs)."""
        oids = yield from self.cont.alloc_oid(ctx, ObjectClass.S1, 1)
        root = oids[0]
        tx = self.cont.tx()
        tx.kv_put(_SB_OID, b"sb", b"info", {
            "magic": DFS_MAGIC,
            "chunk_size": self.chunk_size,
            "root": root,
        })
        yield from tx.commit(ctx)
        self.root_oid = root
        return self

    def mount(self, ctx: JobThread) -> Generator[Event, None, "DfsNamespace"]:
        """Load the superblock of an already-formatted container."""
        sb = self.cont.obj(_SB_OID)
        try:
            info = yield from sb.kv_get(ctx, b"sb", b"info")
        except (DaosError, NoSuchObject) as exc:
            raise DaosError(f"container is not a DFS filesystem: {exc}") from exc
        if info.get("magic") != DFS_MAGIC:
            raise DaosError(f"bad DFS magic {info.get('magic')!r}")
        self.chunk_size = info["chunk_size"]
        self.root_oid = info["root"]
        return self

    # -- path plumbing ----------------------------------------------------------
    @staticmethod
    def _components(path: str) -> List[str]:
        if not path.startswith("/"):
            raise ValueError(f"DFS paths are absolute, got {path!r}")
        return [c for c in path.split("/") if c]

    def _require_mounted(self) -> ObjectId:
        if self.root_oid is None:
            raise DaosError("namespace is not mounted; call format() or mount()")
        return self.root_oid

    def _lookup_entry(
        self, ctx: JobThread, dir_oid: ObjectId, name: str
    ) -> Generator[Event, None, Dict[str, Any]]:
        obj = self.cont.obj(dir_oid)
        try:
            entry = yield from obj.kv_get(ctx, name.encode(), _ENTRY_AKEY)
        except DaosError:
            raise FileNotFoundError(name) from None
        return entry

    def _resolve_dir(
        self, ctx: JobThread, components: List[str]
    ) -> Generator[Event, None, ObjectId]:
        """Walk ``components`` (all must be directories); returns the oid."""
        oid = self._require_mounted()
        for name in components:
            entry = yield from self._lookup_entry(ctx, oid, name)
            if entry["type"] != "dir":
                raise NotADirectoryError(name)
            oid = entry["oid"]
        return oid

    def _resolve_parent(
        self, ctx: JobThread, path: str
    ) -> Generator[Event, None, Tuple[ObjectId, str]]:
        comps = self._components(path)
        if not comps:
            raise ValueError("operation on the root directory")
        parent = yield from self._resolve_dir(ctx, comps[:-1])
        return parent, comps[-1]

    def _entry_exists(
        self, ctx: JobThread, dir_oid: ObjectId, name: str
    ) -> Generator[Event, None, bool]:
        try:
            yield from self._lookup_entry(ctx, dir_oid, name)
        except FileNotFoundError:
            return False
        return True

    # -- namespace operations -------------------------------------------------------
    def mkdir(self, ctx: JobThread, path: str) -> Generator[Event, None, None]:
        """Create a directory (parents must exist)."""
        parent, name = yield from self._resolve_parent(ctx, path)
        if (yield from self._entry_exists(ctx, parent, name)):
            raise FileExistsError(path)
        oids = yield from self.cont.alloc_oid(ctx, ObjectClass.S1, 1)
        tx = self.cont.tx()
        tx.kv_put(parent, name.encode(), _ENTRY_AKEY,
                  {"type": "dir", "oid": oids[0], "mode": 0o755})
        yield from tx.commit(ctx)

    def create(
        self,
        ctx: JobThread,
        path: str,
        chunk_size: Optional[int] = None,
        oclass: ObjectClass = ObjectClass.SX,
    ) -> Generator[Event, None, DfsFile]:
        """Create a regular file; returns its open handle.

        ``oclass`` selects the data object's redundancy/striping class:
        ``SX`` (default, striped for bandwidth) or ``RP2`` (two replicas,
        survives a target failure).
        """
        parent, name = yield from self._resolve_parent(ctx, path)
        if (yield from self._entry_exists(ctx, parent, name)):
            raise FileExistsError(path)
        chunk = int(chunk_size or self.chunk_size)
        if chunk <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk}")
        oids = yield from self.cont.alloc_oid(ctx, oclass, 1)
        tx = self.cont.tx()
        tx.kv_put(parent, name.encode(), _ENTRY_AKEY,
                  {"type": "file", "oid": oids[0], "chunk_size": chunk, "mode": 0o644})
        yield from tx.commit(ctx)
        return DfsFile(self, path, oids[0], chunk)

    def open(self, ctx: JobThread, path: str) -> Generator[Event, None, DfsFile]:
        """Open an existing regular file."""
        parent, name = yield from self._resolve_parent(ctx, path)
        entry = yield from self._lookup_entry(ctx, parent, name)
        if entry["type"] != "file":
            raise IsADirectoryError(path)
        return DfsFile(self, path, entry["oid"], entry["chunk_size"])

    def unlink(self, ctx: JobThread, path: str) -> Generator[Event, None, None]:
        """Remove a file or (empty) directory entry."""
        parent, name = yield from self._resolve_parent(ctx, path)
        entry = yield from self._lookup_entry(ctx, parent, name)
        if entry["type"] == "dir":
            names = yield from self.readdir(ctx, path)
            if names:
                raise OSError(f"directory not empty: {path}")
        tx = self.cont.tx()
        tx.punch_dkey(parent, name.encode())
        yield from tx.commit(ctx)

    def rename(
        self, ctx: JobThread, old: str, new: str
    ) -> Generator[Event, None, None]:
        """Atomically move an entry (one transaction: insert + remove)."""
        old_parent, old_name = yield from self._resolve_parent(ctx, old)
        entry = yield from self._lookup_entry(ctx, old_parent, old_name)
        new_parent, new_name = yield from self._resolve_parent(ctx, new)
        if (yield from self._entry_exists(ctx, new_parent, new_name)):
            raise FileExistsError(new)
        tx = self.cont.tx()
        tx.kv_put(new_parent, new_name.encode(), _ENTRY_AKEY, entry)
        tx.punch_dkey(old_parent, old_name.encode())
        yield from tx.commit(ctx)

    def readdir(self, ctx: JobThread, path: str) -> Generator[Event, None, List[str]]:
        """List entry names in a directory."""
        comps = self._components(path) if path != "/" else []
        dir_oid = yield from self._resolve_dir(ctx, comps)
        obj = self.cont.obj(dir_oid)
        dkeys = yield from obj.list_dkeys(ctx)
        return sorted(d.decode() for d in dkeys)

    def stat(self, ctx: JobThread, path: str) -> Generator[Event, None, Dict[str, Any]]:
        """POSIX-ish stat: type, mode, oid, chunk_size, size."""
        parent, name = yield from self._resolve_parent(ctx, path)
        entry = yield from self._lookup_entry(ctx, parent, name)
        info = dict(entry)
        if entry["type"] == "file":
            f = DfsFile(self, path, entry["oid"], entry["chunk_size"])
            info["size"] = yield from f.size(ctx)
        else:
            info["size"] = 0
        return info

    def exists(self, ctx: JobThread, path: str) -> Generator[Event, None, bool]:
        """Whether ``path`` resolves."""
        try:
            parent, name = yield from self._resolve_parent(ctx, path)
            yield from self._lookup_entry(ctx, parent, name)
        except (FileNotFoundError, NotADirectoryError):
            return False
        return True
