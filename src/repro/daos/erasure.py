"""Erasure coding helpers (EC 2+1, the DAOS ``EC_2P1G1`` class).

A stripe of ``2 * CELL_BYTES`` splits into two data cells plus one XOR
parity cell, placed on three distinct targets.  Any single target loss is
recoverable: a missing data cell is the XOR of its sibling and the
parity; the parity cell is recomputed from both data cells.

The XOR runs vectorized over NumPy views (no Python-level byte loops),
and everything degrades gracefully to *virtual* mode (sizes only) for the
performance benches.

Simplification (documented in DESIGN.md): EC I/O must be stripe-aligned.
DFS writes whole chunks, which are stripe multiples, so the POSIX path
never notices; partial-stripe updates in real DAOS fall back to a
replication journal we do not model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "CELL_BYTES",
    "STRIPE_BYTES",
    "check_aligned",
    "split_stripe",
    "xor_bytes",
    "reconstruct_cell",
    "stripe_range",
]

#: One EC cell; a stripe is two cells + parity.
CELL_BYTES = 32 * 1024
STRIPE_BYTES = 2 * CELL_BYTES

#: Number of data cells / parity cells in the 2+1 layout.
DATA_CELLS = 2
PARITY_CELLS = 1


def check_aligned(offset: int, nbytes: int) -> None:
    """EC I/O must cover whole stripes."""
    if offset % STRIPE_BYTES or nbytes % STRIPE_BYTES or nbytes <= 0:
        raise ValueError(
            f"EC I/O must be stripe-aligned ({STRIPE_BYTES} B): "
            f"got offset={offset}, nbytes={nbytes}"
        )


def xor_bytes(a: Optional[bytes], b: Optional[bytes]) -> Optional[bytes]:
    """Vectorized XOR of two equal-length buffers (None stays virtual)."""
    if a is None or b is None:
        return None
    if len(a) != len(b):
        raise ValueError(f"XOR length mismatch: {len(a)} vs {len(b)}")
    va = np.frombuffer(a, dtype=np.uint8)
    vb = np.frombuffer(b, dtype=np.uint8)
    return (va ^ vb).tobytes()


def split_stripe(
    data: Optional[bytes],
) -> Tuple[Optional[bytes], Optional[bytes], Optional[bytes]]:
    """One stripe -> (cell0, cell1, parity)."""
    if data is None:
        return None, None, None
    if len(data) != STRIPE_BYTES:
        raise ValueError(f"stripe must be {STRIPE_BYTES} B, got {len(data)}")
    c0, c1 = data[:CELL_BYTES], data[CELL_BYTES:]
    return c0, c1, xor_bytes(c0, c1)


def reconstruct_cell(
    surviving: Optional[bytes], parity: Optional[bytes]
) -> Optional[bytes]:
    """Rebuild a lost data cell from its sibling and the parity."""
    return xor_bytes(surviving, parity)


def stripe_range(offset: int, nbytes: int) -> List[int]:
    """Stripe indices covered by an aligned range."""
    check_aligned(offset, nbytes)
    first = offset // STRIPE_BYTES
    return list(range(first, first + nbytes // STRIPE_BYTES))


def encode(
    data: Optional[bytes], nbytes: int
) -> Tuple[Optional[bytes], Optional[bytes], Optional[bytes]]:
    """Encode an aligned range into (data0, data1, parity) target buffers.

    Each returned buffer is ``nbytes // 2`` long: the concatenation of
    that target's cells across every stripe (which is exactly the
    contiguous layout each target stores).  Vectorized via one reshape.
    """
    if nbytes % STRIPE_BYTES or nbytes <= 0:
        raise ValueError(f"EC encode needs whole stripes, got {nbytes}")
    if data is None:
        return None, None, None
    if len(data) != nbytes:
        raise ValueError(f"data of {len(data)} bytes but nbytes={nbytes}")
    n_stripes = nbytes // STRIPE_BYTES
    arr = np.frombuffer(data, dtype=np.uint8).reshape(n_stripes, 2, CELL_BYTES)
    d0 = np.ascontiguousarray(arr[:, 0, :])
    d1 = np.ascontiguousarray(arr[:, 1, :])
    parity = d0 ^ d1
    return d0.tobytes(), d1.tobytes(), parity.tobytes()


def interleave(
    d0: Optional[bytes], d1: Optional[bytes]
) -> Optional[bytes]:
    """Inverse of :func:`encode`: two cell streams back into user data."""
    if d0 is None or d1 is None:
        return None
    if len(d0) != len(d1) or len(d0) % CELL_BYTES:
        raise ValueError(
            f"cell streams must be equal whole-cell lengths, got {len(d0)}/{len(d1)}"
        )
    n_stripes = len(d0) // CELL_BYTES
    out = np.empty((n_stripes, 2, CELL_BYTES), dtype=np.uint8)
    out[:, 0, :] = np.frombuffer(d0, dtype=np.uint8).reshape(n_stripes, CELL_BYTES)
    out[:, 1, :] = np.frombuffer(d1, dtype=np.uint8).reshape(n_stripes, CELL_BYTES)
    return out.tobytes()
