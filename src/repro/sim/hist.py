"""Streaming log-bucketed latency histogram (HDR-histogram flavoured).

``LogHistogram`` records values into geometrically spaced buckets so memory
stays bounded regardless of sample count — the property the unbounded
``LatencyRecorder._samples`` list lacks for long runs.  Buckets are spaced by
``base = 2 ** (1/16)`` which bounds the *relative* quantile error at
``base - 1`` (~4.4%); reporting the geometric bucket midpoint halves that to
~2.2%.  Histograms are mergeable (per-worker recording, one reduction at the
end) and export a cumulative-bucket view for the Prometheus text format.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

__all__ = ["LogHistogram"]

#: Default bucket growth factor: 16 buckets per octave.
_DEFAULT_BASE = 2.0 ** (1.0 / 16.0)

#: Values below this floor all land in bucket 0 (1 ns for latencies in
#: seconds — far below anything the simulator produces).
_MIN_VALUE = 1e-9


class LogHistogram:
    """Bounded-memory histogram over positive floats.

    Parameters
    ----------
    base:
        Geometric bucket growth factor (> 1).  Smaller base → finer buckets
        → tighter percentile error and slightly more memory.
    min_value:
        Smallest distinguishable value; anything below is clamped into the
        first bucket.
    """

    __slots__ = ("base", "min_value", "_log_base", "_buckets",
                 "count", "sum", "min", "max")

    def __init__(self, base: float = _DEFAULT_BASE,
                 min_value: float = _MIN_VALUE) -> None:
        if not base > 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        if not min_value > 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.base = float(base)
        self.min_value = float(min_value)
        self._log_base = math.log(self.base)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return int(math.log(value / self.min_value) / self._log_base) + 1

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if value < 0.0:
            raise ValueError(f"negative value {value}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        i = self._index(value)
        self._buckets[i] = self._buckets.get(i, 0) + count
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    # -- bucket geometry ---------------------------------------------------

    def _bucket_lower(self, index: int) -> float:
        if index <= 0:
            return 0.0
        return self.min_value * self.base ** (index - 1)

    def _bucket_upper(self, index: int) -> float:
        if index <= 0:
            return self.min_value
        return self.min_value * self.base ** index

    def _representative(self, index: int) -> float:
        """Geometric midpoint of the bucket — the reported quantile value."""
        if index <= 0:
            return self.min_value
        return self.min_value * self.base ** (index - 0.5)

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of a reported percentile."""
        return math.sqrt(self.base) - 1.0

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100), within bucket error."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        if p <= 0.0:
            return self.min
        if p >= 100.0:
            return self.max
        rank = p / 100.0 * self.count
        seen = 0
        for i in sorted(self._buckets):
            seen += self._buckets[i]
            if seen >= rank:
                rep = self._representative(i)
                # The true value lies inside [min, max] by construction.
                return min(max(rep, self.min), self.max)
        return self.max

    def percentiles(self, ps: Iterable[float]) -> List[float]:
        return [self.percentile(p) for p in ps]

    # -- merging & export --------------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into ``self`` (in place); returns self."""
        if (abs(other.base - self.base) > 1e-12
                or abs(other.min_value - self.min_value) > 1e-18):
            raise ValueError("cannot merge histograms with different geometry")
        for i, n in other._buckets.items():
            self._buckets[i] = self._buckets.get(i, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs — Prometheus ``le`` view."""
        out: List[Tuple[float, int]] = []
        running = 0
        for i in sorted(self._buckets):
            running += self._buckets[i]
            out.append((self._bucket_upper(i), running))
        return out

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LogHistogram(count={self.count}, buckets={len(self._buckets)}, "
                f"p50={self.percentile(50):.3g}, p99={self.percentile(99):.3g})")
