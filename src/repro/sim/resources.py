"""Capacity-limited resources, stores and containers.

These are the queueing building blocks for the hardware models:

* :class:`Resource` — ``capacity`` identical servers (CPU cores, NVMe
  submission slots).  FIFO grant order.
* :class:`PriorityResource` — like :class:`Resource` but grants by
  ``(priority, fifo)`` order; used for QoS experiments.
* :class:`Store` — an unbounded/bounded FIFO of Python objects (message
  queues, completion queues).
* :class:`Container` — a continuous level (bytes of buffer pool, tokens).

All request/put/get operations return events.  Requests support use as
context managers inside processes::

    with cpu.request() as req:
        yield req
        yield env.timeout(cost)

which guarantees release even if the process is interrupted while queued.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, List, Tuple

from repro.sim.core import PENDING, Environment, Event, SimulationError

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "StorePut",
    "StoreGet",
    "Store",
    "ContainerPut",
    "ContainerGet",
    "Container",
]


class Request(Event):
    """Event that fires when the resource grants a slot to the requester."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw the request (granted slot is released, queued one dropped)."""
        self.resource.release(self)

    # Context-manager protocol: ``with res.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()


class Release(Event):
    """Immediately-successful event produced by :meth:`Resource.release`.

    Born processed: releasing never blocks, so no kernel event is
    scheduled — a process yielding it continues at the same instant via
    the already-processed fast path.
    """

    __slots__ = ()

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._succeed_inline()


class Resource:
    """``capacity`` identical servers granted to requests in FIFO order.

    Hot-path notes (DESIGN.md §9): an immediately-grantable request is
    born processed (no kernel event), releasing a slot removes the user
    by *swap-remove* — O(1), valid because the order of ``users`` is not
    observable — and only the FIFO *grant* order of queued requests is
    part of the contract (pinned by a regression test).
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: "str | None" = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        #: Resource name for wait-cause attribution (None = anonymous).
        self.name = name
        self.users: List[Request] = []
        self._init_waiters()

    def _init_waiters(self) -> None:
        self.queue: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Slots currently granted."""
        return len(self.users)

    def request(self) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return a slot (or withdraw a queued request)."""
        users = self.users
        try:
            i = users.index(request)
        except ValueError:
            self._withdraw(request)  # queued (or stale): drop from the queue
        else:
            # Swap-remove: O(1); ``users`` order is not observable.
            last = users.pop()
            if last is not request:
                users[i] = last
            self._grant_next()
        return Release(self.env)

    # -- internals ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request._succeed_inline()
        else:
            wt = self.env._wait_tracer
            if wt is not None:
                wt.begin_block(request, self.name)
            self.queue.append(request)

    def _withdraw(self, request: Request) -> None:
        """Remove a queued (never granted) request; no-op if unknown."""
        try:
            self.queue.remove(request)
        except ValueError:
            pass  # releasing twice is a no-op by design
        else:
            wt = self.env._wait_tracer
            if wt is not None:
                wt.cancel_block(request)

    def _grant_next(self) -> None:
        wt = self.env._wait_tracer
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            if wt is not None:
                wt.end_block(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """Request carrying a priority (lower value = more urgent)."""

    __slots__ = ("priority", "_seq")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        self.priority = priority
        self._seq = resource._next_seq()
        super().__init__(resource)

    @property
    def key(self) -> tuple:
        return (self.priority, self._seq)


class PriorityResource(Resource):
    """Resource granting queued requests in ``(priority, arrival)`` order.

    The waiter queue is a binary heap keyed by ``(priority, seq)`` —
    O(log n) per enqueue/dequeue instead of the previous full re-sort per
    arrival.  Withdrawing a queued request (``release()`` before grant)
    uses *lazy deletion*: the entry stays in the heap and is skipped by
    :meth:`_grant_next` once it is no longer in the live set.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: "str | None" = None) -> None:
        self._seq = 0
        super().__init__(env, capacity, name)

    def _init_waiters(self) -> None:
        self._heap: List[Tuple[int, int, PriorityRequest]] = []
        self._queued: set = set()

    @property
    def queue(self) -> Tuple[PriorityRequest, ...]:
        """Live queued requests in grant order (for introspection/tests)."""
        return tuple(
            r for _, _, r in sorted(self._heap) if id(r) in self._queued
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Ask for one slot with ``priority`` (lower is served first)."""
        return PriorityRequest(self, priority)

    def _do_request(self, request: PriorityRequest) -> None:  # type: ignore[override]
        if len(self.users) < self._capacity:
            self.users.append(request)
            request._succeed_inline()
        else:
            wt = self.env._wait_tracer
            if wt is not None:
                wt.begin_block(request, self.name)
            heappush(self._heap, (request.priority, request._seq, request))
            self._queued.add(id(request))

    def _withdraw(self, request: Request) -> None:
        self._queued.discard(id(request))
        wt = self.env._wait_tracer
        if wt is not None:
            wt.cancel_block(request)

    def _grant_next(self) -> None:
        heap = self._heap
        queued = self._queued
        wt = self.env._wait_tracer
        while heap and len(self.users) < self._capacity:
            _, _, nxt = heap[0]
            if id(nxt) not in queued:  # lazily-deleted tombstone
                heappop(heap)
                continue
            heappop(heap)
            queued.discard(id(nxt))
            self.users.append(nxt)
            if wt is not None:
                wt.end_block(nxt)
            nxt.succeed()


class StorePut(Event):
    """Fires when the item has been accepted into the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        # Flattened Event.__init__ (no super() frame): one StorePut is
        # allocated per delivered message — a top-five allocation site.
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Fires with the retrieved item as its value."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        # Flattened Event.__init__ (see StorePut).
        self.env = store.env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        store._do_get(self)


class Store:
    """FIFO store of arbitrary items with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: "str | None" = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Resource name for wait-cause attribution (None = anonymous).
        self.name = name
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; fires when there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the oldest item; fires when one is available."""
        return StoreGet(self)

    # -- internals ----------------------------------------------------------
    # Immediately-satisfiable puts/gets are born processed (no kernel
    # event): the freshly-constructed event has no callbacks yet, so the
    # yielding process continues inline at the same simulated time.
    # Parked counterparts woken here (``putter``/``getter``) *do* have a
    # waiter attached and are scheduled normally via ``succeed``.
    def _do_put(self, event: StorePut) -> None:
        if self._getters:
            getter = self._getters.popleft()
            wt = self.env._wait_tracer
            if wt is not None:
                wt.end_block(getter)
            getter.succeed(event.item)
            event._succeed_inline()
        elif len(self.items) < self.capacity:
            self.items.append(event.item)
            event._succeed_inline()
        else:
            wt = self.env._wait_tracer
            if wt is not None:
                wt.begin_block(event, self.name)
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        if self.items:
            item = self.items.popleft()
            event._succeed_inline(item)
            if self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                wt = self.env._wait_tracer
                if wt is not None:
                    wt.end_block(putter)
                self.items.append(putter.item)
                putter.succeed()
        elif self._putters:
            putter = self._putters.popleft()
            wt = self.env._wait_tracer
            if wt is not None:
                wt.end_block(putter)
            event._succeed_inline(putter.item)
            putter.succeed()
        else:
            wt = self.env._wait_tracer
            if wt is not None:
                wt.begin_block(event, self.name)
            self._getters.append(event)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._do_put(self)


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._do_get(self)


class Container:
    """A continuous quantity with blocking put/get (token buckets, pools)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: "str | None" = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        #: Resource name for wait-cause attribution (None = anonymous).
        self.name = name
        self._level = float(init)
        self._putters: Deque[ContainerPut] = deque()
        self._getters: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; fires once it fits under ``capacity``."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; fires once the level covers it."""
        return ContainerGet(self, amount)

    # -- internals ----------------------------------------------------------
    def _do_put(self, event: ContainerPut) -> None:
        if self._level + event.amount <= self.capacity:
            self._level += event.amount
            event._succeed_inline()
            self._serve_getters()
        else:
            wt = self.env._wait_tracer
            if wt is not None:
                wt.begin_block(event, self.name)
            self._putters.append(event)

    def _do_get(self, event: ContainerGet) -> None:
        if event.amount <= self._level:
            self._level -= event.amount
            event._succeed_inline()
            self._serve_putters()
        else:
            if event.amount > self.capacity:
                event.fail(
                    SimulationError(
                        f"get({event.amount}) exceeds container capacity {self.capacity}"
                    )
                )
                return
            wt = self.env._wait_tracer
            if wt is not None:
                wt.begin_block(event, self.name)
            self._getters.append(event)

    def _serve_getters(self) -> None:
        wt = self.env._wait_tracer
        while self._getters and self._getters[0].amount <= self._level:
            g = self._getters.popleft()
            self._level -= g.amount
            if wt is not None:
                wt.end_block(g)
            g.succeed()

    def _serve_putters(self) -> None:
        wt = self.env._wait_tracer
        while self._putters and self._level + self._putters[0].amount <= self.capacity:
            p = self._putters.popleft()
            self._level += p.amount
            if wt is not None:
                wt.end_block(p)
            p.succeed()
