"""Fast queueing primitives used by the hardware models.

The generic :class:`~repro.sim.resources.Resource` costs three events per
acquire/hold/release cycle.  The models in :mod:`repro.hw` push enough
operations that this matters, so this module provides *reservation-based*
servers that need only **one** event per operation:

* :class:`FifoServer` — a single FIFO server.  ``serve(duration)`` computes
  the completion time analytically (``max(now, free_at) + duration``) and
  returns a single timeout event.  Exactly models a non-preemptive FIFO
  queue with deterministic service, which is how we model NVMe channels and
  serial links.
* :class:`PooledServer` — ``n`` identical FIFO servers sharing one queue
  (an M/G/n-style station).  Completion times are computed with a heap of
  per-server free times.  Models CPU core pools.
* :class:`BandwidthPipe` — a duplex-less byte pipe: transfers are chopped
  into chunks that interleave fairly through a :class:`FifoServer`, so a
  small message never waits behind more than the in-flight chunks of large
  transfers.  Models NIC links and PCIe lanes.

  The pipe is *event-lean*: while a transfer is alone on the pipe its whole
  remaining payload is reserved analytically in one step (one event instead
  of one per chunk — exactly equivalent, since no interleaving partner
  exists), and the pipe falls back to chunked reservation only while two or
  more transfers overlap.  A transfer that arrives mid-coalesce *revokes*
  the untransmitted tail of the resident reservation at the next chunk
  boundary, so the documented fairness bound — a new arrival waits at most
  the in-flight chunk(s), never a whole large transfer — is preserved.
  See DESIGN.md §9 for the exactness argument.

All of them track cumulative busy time so utilization can be reported.
"""

from __future__ import annotations

import heapq
from math import ceil
from typing import Generator, Optional

from repro.sim.core import Environment, Event, Process, Timeout

__all__ = ["FifoServer", "PooledServer", "BandwidthPipe"]


class FifoServer:
    """A single non-preemptive FIFO server with deterministic service times.

    ``serve()`` *reserves* the server immediately: the caller is queued at
    its current position and receives an event that fires when its service
    completes.  This collapses queueing to O(1) state (the time the server
    next becomes free).
    """

    __slots__ = ("env", "rate", "name", "_free_at", "busy_time", "ops", "_stats")

    def __init__(self, env: Environment, rate: Optional[float] = None,
                 name: Optional[str] = None) -> None:
        self.env = env
        #: Optional service rate in units/second for :meth:`serve_units`.
        self.rate = rate
        #: Resource name for wait-cause attribution (None = anonymous).
        self.name = name
        self._free_at = 0.0
        #: Cumulative seconds of service performed (for utilization).
        self.busy_time = 0.0
        #: Number of operations served.
        self.ops = 0
        #: Optional telemetry station (attached only while sampling).
        self._stats = None

    def attach_stats(self, stats) -> None:
        """Attach a :class:`~repro.sim.timeseries.StationStats` recorder.

        The hot loop pays one ``is not None`` test when detached; with a
        recorder attached every reservation reports its arrival and
        (analytically known) completion time, feeding the in-flight gauge
        and the Little's-law self-check.
        """
        self._stats = stats

    @property
    def free_at(self) -> float:
        """Earliest time the server becomes idle."""
        return self._free_at

    @property
    def backlog(self) -> float:
        """Seconds of already-reserved work ahead of a new arrival."""
        return max(0.0, self._free_at - self.env.now)

    def serve(self, duration: float) -> Timeout:
        """Reserve ``duration`` seconds of service; event fires at completion."""
        if duration < 0:
            raise ValueError(f"negative service duration {duration}")
        env = self.env
        now = env._now
        free = self._free_at
        start = free if free > now else now
        done = start + duration
        self._free_at = done
        self.busy_time += duration
        self.ops += 1
        if self._stats is not None:
            self._stats.record(now, done)
        wt = env._wait_tracer
        if wt is not None:
            wt.reserve(self.name, start - now, duration)
        return env.timeout(done - now)

    def serve_then(self, duration: float, extra_delay: float) -> Timeout:
        """Reserve ``duration`` of service, then sleep ``extra_delay`` more.

        Equivalent to ``yield serve(duration)`` followed by
        ``yield env.timeout(extra_delay)`` but with a single kernel event.
        The reservation bookkeeping (``_free_at``, ``busy_time``, station
        stats) is identical to :meth:`serve`; only the caller's wake-up is
        deferred.  Bit-exactness: ``serve`` would fire at
        ``now + (done - now)`` and the chained timeout at that instant
        plus ``extra_delay`` — the absolute fire time below repeats those
        float operations verbatim and is scheduled via ``timeout_until``,
        which never re-rounds through a relative delay.
        """
        if duration < 0:
            raise ValueError(f"negative service duration {duration}")
        if extra_delay < 0:
            raise ValueError(f"negative extra delay {extra_delay}")
        env = self.env
        now = env._now
        free = self._free_at
        start = free if free > now else now
        done = start + duration
        self._free_at = done
        self.busy_time += duration
        self.ops += 1
        if self._stats is not None:
            self._stats.record(now, done)
        wt = env._wait_tracer
        if wt is not None:
            wt.reserve(self.name, start - now, duration, extra_delay)
        return env.timeout_until((now + (done - now)) + extra_delay)

    def serve_units(self, units: float) -> Timeout:
        """Serve ``units`` of work at the configured ``rate``."""
        if self.rate is None:
            raise ValueError("server has no rate configured; use serve(duration)")
        return self.serve(units / self.rate)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time busy over ``elapsed`` (default: since t=0)."""
        span = self.env.now if elapsed is None else elapsed
        return 0.0 if span <= 0 else min(1.0, self.busy_time / span)


class PooledServer:
    """``n`` identical FIFO servers fed from a single queue.

    Like :class:`FifoServer` but with a heap of per-server free times: a new
    operation is assigned to the earliest-free server.  This is the
    standard work-conserving multi-server station and models a CPU core
    pool under non-preemptive dispatch.
    """

    __slots__ = ("env", "n", "name", "_free", "busy_time", "ops", "_stats")

    def __init__(self, env: Environment, n: int,
                 name: Optional[str] = None) -> None:
        if n <= 0:
            raise ValueError(f"need at least one server, got {n}")
        self.env = env
        self.n = int(n)
        #: Resource name for wait-cause attribution (None = anonymous).
        self.name = name
        self._free = [0.0] * self.n
        heapq.heapify(self._free)
        self.busy_time = 0.0
        self.ops = 0
        #: Optional telemetry station (attached only while sampling).
        self._stats = None

    def attach_stats(self, stats) -> None:
        """Attach a :class:`~repro.sim.timeseries.StationStats` recorder."""
        self._stats = stats

    @property
    def earliest_free(self) -> float:
        """Time the least-loaded server becomes idle."""
        return self._free[0]

    def execute(self, duration: float) -> Timeout:
        """Reserve ``duration`` seconds on the earliest-free server."""
        if duration < 0:
            raise ValueError(f"negative service duration {duration}")
        env = self.env
        now = env._now
        free = heapq.heappop(self._free)
        start = free if free > now else now
        done = start + duration
        heapq.heappush(self._free, done)
        self.busy_time += duration
        self.ops += 1
        if self._stats is not None:
            self._stats.record(now, done)
        wt = env._wait_tracer
        if wt is not None:
            wt.reserve(self.name, start - now, duration)
        return env.timeout(done - now)

    def backlog(self) -> float:
        """Seconds until the earliest server frees up (0 if any is idle)."""
        return max(0.0, self._free[0] - self.env.now)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean per-server busy fraction over ``elapsed`` (default since 0)."""
        span = self.env.now if elapsed is None else elapsed
        return 0.0 if span <= 0 else min(1.0, self.busy_time / (span * self.n))


class BandwidthPipe:
    """A shared serial byte pipe with chunk-level fair interleaving.

    A transfer of ``nbytes`` is broken into ``chunk_bytes`` pieces; each
    piece reserves the underlying :class:`FifoServer` only when the
    previous piece finishes, so concurrent transfers interleave at chunk
    granularity (approximating per-packet fair sharing).  A fixed
    ``latency`` is added once per transfer.

    **Coalescing fast path** (``coalesce=True``, the default): while a
    transfer is the *only* one in the pipe's data phase, its entire
    remaining payload is reserved in one analytic step and the transfer
    sleeps on a single event — the completion time, busy-time and op
    accounting are accumulated chunk-by-chunk in plain floats, so the
    outcome is bit-identical to serving every chunk through the event
    loop.  If a second transfer arrives mid-coalesce, the resident
    reservation is *revoked* at the next chunk boundary: the server gets
    the untransmitted tail back, the owner is re-woken at its in-flight
    chunk's completion, and both transfers continue in classic chunked
    mode.  Thus uncontended transfers cost one event regardless of size,
    while overlapping transfers keep the documented fairness bound (a new
    arrival waits for at most the chunk in flight).

    Use from a process as ``yield from pipe.transfer(nbytes)``.
    """

    __slots__ = ("env", "bandwidth", "latency", "chunk_bytes", "_server",
                 "bytes_moved", "coalesce", "_inflight", "_co_gate",
                 "_co_start", "_co_done", "_co_busy0", "_co_bytes",
                 "_co_unsent", "coalesced_ops", "revoked_ops")

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        chunk_bytes: int = 64 * 1024,
        coalesce: bool = True,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.env = env
        #: Bytes per second.
        self.bandwidth = float(bandwidth)
        #: One-way propagation + fixed per-message latency in seconds.
        self.latency = float(latency)
        self.chunk_bytes = int(chunk_bytes)
        # The internal server carries the pipe's wait-attribution name so
        # chunk reservations and the latency stage blame the same resource.
        self._server = FifoServer(env, name=name)
        #: Total payload bytes moved (for reports).
        self.bytes_moved = 0
        #: Enable the single-event fast path for uncontended transfers.
        #: ``coalesce=False`` forces the classic chunk-per-event behaviour
        #: (the reference the equivalence tests compare against).
        self.coalesce = bool(coalesce)
        #: Transfers currently in the data phase (past the latency stage).
        self._inflight = 0
        # Active coalesced reservation (None when nobody is coalescing):
        # the gate event the owner sleeps on, the transmission start time,
        # the reserved completion time, the server busy_time before the
        # reservation, and the reserved byte count.
        self._co_gate: Optional[Timeout] = None
        self._co_start = 0.0
        self._co_done = 0.0
        self._co_busy0 = 0.0
        self._co_bytes = 0
        #: Set by a revocation: bytes the owner must re-send chunked.
        self._co_unsent = 0
        #: Count of coalesced reservations (perf accounting).
        self.coalesced_ops = 0
        #: Count of revocations (contention arriving mid-coalesce).
        self.revoked_ops = 0

    @property
    def name(self) -> Optional[str]:
        """Resource name for wait-cause attribution (None = anonymous)."""
        return self._server.name

    @property
    def busy_time(self) -> float:
        """Cumulative seconds the pipe spent transmitting."""
        return self._server.busy_time

    @property
    def inflight(self) -> int:
        """Transfers currently in the data phase."""
        return self._inflight

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the pipe was transmitting."""
        return self._server.utilization(elapsed)

    def transfer(self, nbytes: int) -> Generator[Event, None, None]:
        """Move ``nbytes`` through the pipe; completes after the last chunk.

        This is a plain generator intended for ``yield from`` inside a
        simulation process (no extra :class:`Process` is spawned).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        self.bytes_moved += nbytes
        if self.latency:
            wt = self.env._wait_tracer
            if wt is not None:
                # Pure propagation, blamed on the pipe (not a generic sleep).
                wt.reserve(self._server.name, 0.0, 0.0, self.latency)
            yield self.env.timeout(self.latency)
        if nbytes == 0:
            return
        self._inflight += 1
        if self._inflight == 2 and self._co_gate is not None:
            # Contention arrived while someone coalesced: claw back the
            # untransmitted tail so we only wait for the chunk in flight.
            self._revoke()
        try:
            remaining = nbytes
            srv = self._server
            bw = self.bandwidth
            chunk = self.chunk_bytes
            # Loop-invariant coalescing eligibility (only ``_inflight``
            # changes mid-transfer; a telemetry recorder or wait tracer is
            # attached between runs, never mid-transfer).  With a wait
            # tracer installed we stay chunked so every reservation is
            # observed individually — the chunked path is exactly
            # equivalent by construction (DESIGN.md §9).
            can_coalesce = (self.coalesce and srv._stats is None
                            and self.env._wait_tracer is None)
            while remaining > 0:
                if can_coalesce and self._inflight == 1:
                    # Alone on the pipe: one analytic reservation, one event.
                    # (With a telemetry recorder attached we stay chunked so
                    # per-chunk station records are preserved exactly;
                    # samplers only probe pipes via busy_time in practice.)
                    gate = self._reserve_remaining(remaining)
                    try:
                        yield gate
                    except BaseException:
                        # Interrupted/killed mid-coalesce: hand back the
                        # untransmitted tail so the pipe is not left
                        # spuriously busy (chunked mode loses at most the
                        # chunk in flight; so do we).
                        if self._co_gate is gate:
                            self._abort_coalesced()
                        raise
                    if self._co_gate is gate:
                        # Ran to completion un-revoked.
                        self._co_gate = None
                        remaining = 0
                    else:
                        # Revoked: continue with the clawed-back tail.
                        remaining = self._co_unsent
                        self._co_unsent = 0
                else:
                    take = chunk if remaining > chunk else remaining
                    yield srv.serve(take / bw)
                    remaining -= take
        finally:
            self._inflight -= 1

    # -- coalescing internals ------------------------------------------------
    def _reserve_remaining(self, nbytes: int) -> Timeout:
        """Reserve ``nbytes`` on the server analytically; return the gate.

        Completion time, busy time and op count are accumulated with the
        same per-chunk float additions the chunked path performs, so the
        reservation is bit-identical to serving each chunk individually.
        """
        env = self.env
        srv = self._server
        now = env._now
        free = srv._free_at
        start = free if free > now else now
        bw = self.bandwidth
        chunk = self.chunk_bytes
        full, tail = divmod(nbytes, chunk)
        chunk_time = chunk / bw
        busy0 = srv.busy_time
        done = start
        busy = busy0
        for _ in range(full):
            done += chunk_time
            busy += chunk_time
        if tail:
            tail_time = tail / bw
            done += tail_time
            busy += tail_time
        srv._free_at = done
        srv.busy_time = busy
        srv.ops += full + (1 if tail else 0)
        if srv._stats is not None:  # pragma: no cover - guarded by caller
            srv._stats.record(now, done)
        wt = env._wait_tracer
        if wt is not None:  # pragma: no cover - guarded by caller
            wt.reserve(srv.name, start - now, done - start)
        gate = env.timeout(done - now)
        self._co_gate = gate
        self._co_start = start
        self._co_done = done
        self._co_busy0 = busy0
        self._co_bytes = nbytes
        self._co_unsent = 0
        self.coalesced_ops += 1
        return gate

    def _rollback_tail(self) -> int:
        """Give the server back every chunk not yet in flight.

        Under chunked reservation the owner would, at this instant, have
        completed ``floor(elapsed / chunk_time)`` chunks and hold one more
        in flight; everything beyond that is returned.  Returns the number
        of unsent bytes (0 if only the tail remained — nothing to revoke).
        """
        srv = self._server
        now = self.env._now
        start = self._co_start
        nbytes = self._co_bytes
        chunk = self.chunk_bytes
        chunk_time = chunk / self.bandwidth
        elapsed = now - start
        committed = 1 if elapsed < 0 else int(elapsed / chunk_time) + 1
        total_chunks = ceil(nbytes / chunk)
        if committed >= total_chunks:
            return 0  # the final chunk/tail is already in flight
        # Rebuild the state a chunked run would have after ``committed``
        # chunks: same additions, same order — exact, not approximate.
        new_done = start
        busy = self._co_busy0
        for _ in range(committed):
            new_done += chunk_time
            busy += chunk_time
        srv._free_at = new_done
        srv.busy_time = busy
        srv.ops -= total_chunks - committed
        return nbytes - committed * chunk

    def _revoke(self) -> None:
        """A second transfer arrived mid-coalesce: truncate and re-wake."""
        gate = self._co_gate
        unsent = self._rollback_tail()
        if unsent == 0:
            return  # reservation is effectively all in flight; leave it
        env = self.env
        self._co_unsent = unsent
        self._co_gate = None
        self.revoked_ops += 1
        # Re-wake the owner at its in-flight chunk's completion instead of
        # the original (now rolled-back) completion time.  The old gate
        # stays in the event heap and fires inert (callbacks emptied); the
        # waiter — including its Process._target bookkeeping, so interrupts
        # keep working — moves to a fresh gate.
        wt = env._wait_tracer
        if wt is not None:
            # Tracer installed mid-coalesce: the re-wake is bookkeeping for
            # an already-recorded reservation, not a new wait.
            wt._claimed = True
        new_gate = env.timeout(self._server._free_at - env.now)
        callbacks = gate.callbacks
        gate.callbacks = []
        if callbacks:
            new_gate.callbacks.extend(callbacks)
            for cb in callbacks:
                owner = getattr(cb, "__self__", None)
                if isinstance(owner, Process) and owner._target is gate:
                    owner._target = new_gate

    def _abort_coalesced(self) -> None:
        """The coalescing owner died mid-wait: return the unsent tail."""
        gate = self._co_gate
        self._co_gate = None
        self._rollback_tail()
        if gate is not None and gate.callbacks is not None:
            gate.callbacks = []  # fires inert

    def transfer_time_estimate(self, nbytes: int) -> float:
        """Uncontended time to move ``nbytes`` (latency + serialization)."""
        return self.latency + nbytes / self.bandwidth

    def n_chunks(self, nbytes: int) -> int:
        """Number of chunks a transfer of ``nbytes`` is split into."""
        return max(1, ceil(nbytes / self.chunk_bytes)) if nbytes else 0
