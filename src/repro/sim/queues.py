"""Fast queueing primitives used by the hardware models.

The generic :class:`~repro.sim.resources.Resource` costs three events per
acquire/hold/release cycle.  The models in :mod:`repro.hw` push enough
operations that this matters, so this module provides *reservation-based*
servers that need only **one** event per operation:

* :class:`FifoServer` — a single FIFO server.  ``serve(duration)`` computes
  the completion time analytically (``max(now, free_at) + duration``) and
  returns a single timeout event.  Exactly models a non-preemptive FIFO
  queue with deterministic service, which is how we model NVMe channels and
  serial links.
* :class:`PooledServer` — ``n`` identical FIFO servers sharing one queue
  (an M/G/n-style station).  Completion times are computed with a heap of
  per-server free times.  Models CPU core pools.
* :class:`BandwidthPipe` — a duplex-less byte pipe: transfers are chopped
  into chunks that interleave fairly through a :class:`FifoServer`, so a
  small message never waits behind more than the in-flight chunks of large
  transfers.  Models NIC links and PCIe lanes.

All of them track cumulative busy time so utilization can be reported.
"""

from __future__ import annotations

import heapq
from math import ceil
from typing import Generator, Optional

from repro.sim.core import Environment, Event, Timeout

__all__ = ["FifoServer", "PooledServer", "BandwidthPipe"]


class FifoServer:
    """A single non-preemptive FIFO server with deterministic service times.

    ``serve()`` *reserves* the server immediately: the caller is queued at
    its current position and receives an event that fires when its service
    completes.  This collapses queueing to O(1) state (the time the server
    next becomes free).
    """

    __slots__ = ("env", "rate", "_free_at", "busy_time", "ops", "_stats")

    def __init__(self, env: Environment, rate: Optional[float] = None) -> None:
        self.env = env
        #: Optional service rate in units/second for :meth:`serve_units`.
        self.rate = rate
        self._free_at = 0.0
        #: Cumulative seconds of service performed (for utilization).
        self.busy_time = 0.0
        #: Number of operations served.
        self.ops = 0
        #: Optional telemetry station (attached only while sampling).
        self._stats = None

    def attach_stats(self, stats) -> None:
        """Attach a :class:`~repro.sim.timeseries.StationStats` recorder.

        The hot loop pays one ``is not None`` test when detached; with a
        recorder attached every reservation reports its arrival and
        (analytically known) completion time, feeding the in-flight gauge
        and the Little's-law self-check.
        """
        self._stats = stats

    @property
    def free_at(self) -> float:
        """Earliest time the server becomes idle."""
        return self._free_at

    @property
    def backlog(self) -> float:
        """Seconds of already-reserved work ahead of a new arrival."""
        return max(0.0, self._free_at - self.env.now)

    def serve(self, duration: float) -> Timeout:
        """Reserve ``duration`` seconds of service; event fires at completion."""
        if duration < 0:
            raise ValueError(f"negative service duration {duration}")
        now = self.env.now
        start = self._free_at if self._free_at > now else now
        done = start + duration
        self._free_at = done
        self.busy_time += duration
        self.ops += 1
        if self._stats is not None:
            self._stats.record(now, done)
        return self.env.timeout(done - now)

    def serve_units(self, units: float) -> Timeout:
        """Serve ``units`` of work at the configured ``rate``."""
        if self.rate is None:
            raise ValueError("server has no rate configured; use serve(duration)")
        return self.serve(units / self.rate)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time busy over ``elapsed`` (default: since t=0)."""
        span = self.env.now if elapsed is None else elapsed
        return 0.0 if span <= 0 else min(1.0, self.busy_time / span)


class PooledServer:
    """``n`` identical FIFO servers fed from a single queue.

    Like :class:`FifoServer` but with a heap of per-server free times: a new
    operation is assigned to the earliest-free server.  This is the
    standard work-conserving multi-server station and models a CPU core
    pool under non-preemptive dispatch.
    """

    __slots__ = ("env", "n", "_free", "busy_time", "ops", "_stats")

    def __init__(self, env: Environment, n: int) -> None:
        if n <= 0:
            raise ValueError(f"need at least one server, got {n}")
        self.env = env
        self.n = int(n)
        self._free = [0.0] * self.n
        heapq.heapify(self._free)
        self.busy_time = 0.0
        self.ops = 0
        #: Optional telemetry station (attached only while sampling).
        self._stats = None

    def attach_stats(self, stats) -> None:
        """Attach a :class:`~repro.sim.timeseries.StationStats` recorder."""
        self._stats = stats

    @property
    def earliest_free(self) -> float:
        """Time the least-loaded server becomes idle."""
        return self._free[0]

    def execute(self, duration: float) -> Timeout:
        """Reserve ``duration`` seconds on the earliest-free server."""
        if duration < 0:
            raise ValueError(f"negative service duration {duration}")
        now = self.env.now
        free = heapq.heappop(self._free)
        start = free if free > now else now
        done = start + duration
        heapq.heappush(self._free, done)
        self.busy_time += duration
        self.ops += 1
        if self._stats is not None:
            self._stats.record(now, done)
        return self.env.timeout(done - now)

    def backlog(self) -> float:
        """Seconds until the earliest server frees up (0 if any is idle)."""
        return max(0.0, self._free[0] - self.env.now)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean per-server busy fraction over ``elapsed`` (default since 0)."""
        span = self.env.now if elapsed is None else elapsed
        return 0.0 if span <= 0 else min(1.0, self.busy_time / (span * self.n))


class BandwidthPipe:
    """A shared serial byte pipe with chunk-level fair interleaving.

    A transfer of ``nbytes`` is broken into ``chunk_bytes`` pieces; each
    piece reserves the underlying :class:`FifoServer` only when the
    previous piece finishes, so concurrent transfers interleave at chunk
    granularity (approximating per-packet fair sharing).  A fixed
    ``latency`` is added once per transfer.

    Use from a process as ``yield from pipe.transfer(nbytes)``.
    """

    __slots__ = ("env", "bandwidth", "latency", "chunk_bytes", "_server", "bytes_moved")

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        chunk_bytes: int = 64 * 1024,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.env = env
        #: Bytes per second.
        self.bandwidth = float(bandwidth)
        #: One-way propagation + fixed per-message latency in seconds.
        self.latency = float(latency)
        self.chunk_bytes = int(chunk_bytes)
        self._server = FifoServer(env)
        #: Total payload bytes moved (for reports).
        self.bytes_moved = 0

    @property
    def busy_time(self) -> float:
        """Cumulative seconds the pipe spent transmitting."""
        return self._server.busy_time

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the pipe was transmitting."""
        return self._server.utilization(elapsed)

    def transfer(self, nbytes: int) -> Generator[Event, None, None]:
        """Move ``nbytes`` through the pipe; completes after the last chunk.

        This is a plain generator intended for ``yield from`` inside a
        simulation process (no extra :class:`Process` is spawned).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        self.bytes_moved += nbytes
        if self.latency:
            yield self.env.timeout(self.latency)
        if nbytes == 0:
            return
        bw = self.bandwidth
        chunk = self.chunk_bytes
        full, tail = divmod(nbytes, chunk)
        chunk_time = chunk / bw
        for _ in range(full):
            yield self._server.serve(chunk_time)
        if tail:
            yield self._server.serve(tail / bw)

    def transfer_time_estimate(self, nbytes: int) -> float:
        """Uncontended time to move ``nbytes`` (latency + serialization)."""
        return self.latency + nbytes / self.bandwidth

    def n_chunks(self, nbytes: int) -> int:
        """Number of chunks a transfer of ``nbytes`` is split into."""
        return max(1, ceil(nbytes / self.chunk_bytes)) if nbytes else 0
