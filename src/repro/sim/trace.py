"""Event-trace recording for simulation debugging.

Calibrating a queueing model means asking "what actually happened between
t=1.2ms and t=1.3ms?".  :class:`Tracer` wraps an Environment's ``step``
and records each processed event into a bounded ring buffer — event type,
simulated time, and (for process events) the process name — with
predicate filtering so a trace of a multi-million-event run stays
readable.

Usage::

    tracer = Tracer(env, capacity=1000,
                    predicate=lambda rec: "fio" in (rec.name or ""))
    ...
    env.run(until=...)
    print(tracer.render(last=50))
    tracer.detach()
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim.core import Environment, Process

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One processed event."""

    t: float
    kind: str  # event class name
    name: Optional[str]  # process name, when the event is a Process
    ok: bool

    def __str__(self) -> str:
        label = f" {self.name}" if self.name else ""
        status = "" if self.ok else " FAILED"
        return f"{self.t * 1e6:12.3f}us  {self.kind}{label}{status}"


class Tracer:
    """Bounded, filtered recorder of every event the environment processes."""

    def __init__(
        self,
        env: Environment,
        capacity: int = 10_000,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.records: deque = deque(maxlen=capacity)
        self.predicate = predicate
        self.events_seen = 0
        self._attached = True
        env.add_trace_subscriber(self._on_event)

    def _on_event(self, event) -> None:
        self.events_seen += 1
        record = TraceRecord(
            t=self.env.now,
            kind=type(event).__name__,
            name=event.name if isinstance(event, Process) else None,
            ok=event.ok,
        )
        if self.predicate is None or self.predicate(record):
            self.records.append(record)

    def detach(self) -> None:
        """Stop tracing and release the environment's hook."""
        if self._attached:
            self.env.remove_trace_subscriber(self._on_event)
            self._attached = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    def clear(self) -> None:
        """Drop recorded events (counters keep running)."""
        self.records.clear()

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        """Records with ``t0 <= t < t1``."""
        return [r for r in self.records if t0 <= r.t < t1]

    def render(self, last: Optional[int] = None) -> str:
        """A printable slice of the trace (most recent ``last`` records)."""
        records = list(self.records)
        if last is not None:
            records = records[-last:]
        header = (
            f"trace: {len(self.records)} kept / {self.events_seen} events seen"
        )
        return "\n".join([header, *(str(r) for r in records)])
