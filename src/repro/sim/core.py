"""Core discrete-event simulation primitives.

The kernel follows the classic event-list design: a binary heap keyed by
``(time, priority, sequence)`` holds scheduled events; :meth:`Environment.step`
pops one event, advances the clock and runs its callbacks.  Processes are
plain Python generators that ``yield`` events; the kernel resumes a process
when the yielded event is processed, sending the event's value back into the
generator (or throwing its exception).

The implementation is deliberately small and allocation-conscious — the
hardware models in :mod:`repro.hw` push hundreds of thousands of events per
simulated run, and the guides for this domain stress keeping the interpreter
out of hot loops wherever possible (``__slots__`` everywhere, no closures in
the dispatch path).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "SimulationError",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "Environment",
]

#: Sentinel for an event that has not yet been triggered.
PENDING = object()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yield of foreign events...)."""


class StopProcess(Exception):
    """Raised internally to abort a process from outside (rarely needed)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; the event it was
    waiting on stays valid and may be re-yielded.
    """

    @property
    def cause(self) -> Any:
        """The ``cause`` object passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """An outcome that will happen at some point in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them,
    and once the environment processes them every callback in
    :attr:`callbacks` runs exactly once.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks ``fn(event)`` invoked when the event is processed.
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or will be) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have ``exception`` thrown into
        it.  If nobody waits, the exception surfaces from
        :meth:`Environment.step` unless :meth:`defused` was set.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._value is PENDING else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay, NORMAL)


class Initialize(Event):
    """Urgent event used to start a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, 0.0, URGENT)


class _InterruptEvent(Event):
    """Urgent event delivering an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        env.schedule(self, 0.0, URGENT)

    def _deliver(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:  # process already finished; drop the interrupt
            return
        # Detach the process from whatever it is waiting on, then resume it
        # with the Interrupt exception.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._resume)
            except ValueError:
                pass
        proc._target = None
        proc._resume(self)


class Process(Event):
    """A running generator; itself an event that fires when the generator ends.

    The value of the process-event is the generator's return value; if the
    generator raises, the process fails with that exception.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- dispatch ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active = self
        while True:
            try:
                if event._ok:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self.generator.throw(exc)
            except StopIteration as stop:
                env._active = None
                self._ok = True
                self._value = stop.value
                env.schedule(self, 0.0, URGENT)
                return
            except StopProcess:
                env._active = None
                self._ok = True
                self._value = None
                env.schedule(self, 0.0, URGENT)
                return
            except BaseException as exc:  # noqa: BLE001 - failure propagates
                env._active = None
                self._ok = False
                self._value = exc
                env.schedule(self, 0.0, URGENT)
                return

            if not isinstance(next_event, Event):
                env._active = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
            if next_event.env is not env:
                env._active = None
                raise SimulationError(
                    f"process {self.name!r} yielded an event from another environment"
                )
            if next_event.callbacks is not None:
                # Still pending or scheduled: park until it is processed.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop immediately with its value.
            event = next_event
        env._active = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class ConditionEvent(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        # An event has *fired* once its callbacks ran (Timeouts carry their
        # value from construction, so testing the value would be wrong).
        return {ev: ev._value for ev in self.events if ev.callbacks is None and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires once *all* constituent events have fired.

    Value is a ``{event: value}`` mapping.  Fails fast if any constituent
    fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Fires as soon as *any* constituent event fires.

    Value is a ``{event: value}`` mapping of the events fired so far.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event loop.

    Typical use::

        env = Environment()

        def producer(env, store):
            while True:
                yield env.timeout(1.0)
                yield store.put("item")

        env.process(producer(env, store))
        env.run(until=100.0)
    """

    __slots__ = ("_now", "_queue", "_eid", "_active", "_trace_hook",
                 "_trace_subscribers")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active: Optional[Process] = None
        #: Post-step dispatch target.  ``None`` when nobody listens (the hot
        #: loop pays a single ``is not None`` test), the lone subscriber when
        #: exactly one is attached, or :meth:`_dispatch_trace` for fan-out.
        self._trace_hook: Optional[Callable[[Event], None]] = None
        self._trace_subscribers: list = []

    # -- trace subscription -------------------------------------------------
    def add_trace_subscriber(self, fn: Callable[[Event], None]) -> None:
        """Register ``fn(event)`` to run after every processed event.

        Multiple subscribers may coexist (e.g. an event :class:`Tracer` and a
        span collector); they are invoked in registration order.
        """
        self._trace_subscribers.append(fn)
        self._refresh_trace_hook()

    def remove_trace_subscriber(self, fn: Callable[[Event], None]) -> None:
        """Unregister a subscriber added with :meth:`add_trace_subscriber`."""
        try:
            self._trace_subscribers.remove(fn)
        except ValueError:
            pass
        self._refresh_trace_hook()

    def _refresh_trace_hook(self) -> None:
        subs = self._trace_subscribers
        if not subs:
            self._trace_hook = None
        elif len(subs) == 1:
            # Single subscriber: dispatch directly, no fan-out frame.
            self._trace_hook = subs[0]
        else:
            self._trace_hook = self._dispatch_trace

    def _dispatch_trace(self, event: Event) -> None:
        for fn in tuple(self._trace_subscribers):
            fn(event)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None outside process context)."""
        return self._active

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first event in ``events``."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert ``event`` into the event list ``delay`` seconds from now."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _eid, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if self._trace_hook is not None:
            self._trace_hook(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        * ``until`` is ``None`` — run until the event list drains.
        * ``until`` is a number — run all events scheduled up to and
          including that time, then set the clock to it.
        * ``until`` is an :class:`Event` — run until that event is processed
          and return its value (raising if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.callbacks is None:  # already processed
                if not sentinel._ok:
                    raise sentinel._value
                return sentinel._value
            flag = [False]
            sentinel.callbacks.append(lambda ev: flag.__setitem__(0, True))
            while not flag[0]:
                if not self._queue:
                    raise SimulationError(
                        "event list empty but the awaited event never fired"
                    )
                self.step()
            if not sentinel._ok:
                sentinel._defused = True
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
