"""Core discrete-event simulation primitives.

The kernel follows the classic event-list design: a binary heap keyed by
``(time, priority, sequence)`` holds scheduled events; :meth:`Environment.step`
pops one event, advances the clock and runs its callbacks.  Processes are
plain Python generators that ``yield`` events; the kernel resumes a process
when the yielded event is processed, sending the event's value back into the
generator (or throwing its exception).

The implementation is deliberately small and allocation-conscious — the
hardware models in :mod:`repro.hw` push hundreds of thousands of events per
simulated run, and the guides for this domain stress keeping the interpreter
out of hot loops wherever possible (``__slots__`` everywhere, no closures in
the dispatch path).

Hot-loop design notes (see DESIGN.md §9 for the event-cost budget):

* :meth:`Environment.run` fuses the pop/dispatch body inline rather than
  calling :meth:`Environment.step` per event, eliminating one Python frame
  and one ``try/except`` per event.  :meth:`step` remains for single-step
  debugging and keeps identical semantics.
* Processed :class:`Timeout` objects that provably have no remaining
  references (checked with ``sys.getrefcount``) are parked on a bounded
  free-list and recycled by :meth:`Environment.timeout`, cutting the
  dominant allocation of the simulation (one Timeout per service
  reservation).  An event that *anything* still references — a condition,
  a tracer, user code — is never recycled, so the optimisation is
  invisible to correctness.
* :attr:`Environment.events_processed` counts every dispatched event so
  telemetry and the perf harness (:mod:`repro.bench.perfbench`) can report
  events-per-IO, the simulator's native cost metric.
"""

from __future__ import annotations

from gc import disable as gc_disable, enable as gc_enable, isenabled as gc_isenabled
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "SimulationError",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "Environment",
    "tie_scramble",
]

#: Sentinel for an event that has not yet been triggered.
PENDING = object()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Upper bound on the Timeout free-list (plenty for the deepest pipelines
#: while keeping a dormant Environment's footprint trivial).
_FREELIST_MAX = 128

_TIE_MASK = (1 << 64) - 1


def tie_scramble(seed: int) -> Callable[[int], int]:
    """A seeded bijection on 64-bit ints, used as the heap tie-break key.

    The event heap orders entries by ``(time, priority, key)`` where
    ``key`` is normally the monotone event sequence number — FIFO among
    same-time, same-priority events.  The race sanitizer
    (:mod:`repro.analysis.sanitizer`) replaces ``key`` with this scramble
    of the sequence number: a pseudo-random *permutation* of the
    tie-break order, different per seed, with no possibility of key
    collisions (odd-multiplier modular multiplication is bijective, so
    heap tuples never fall through to comparing Event objects).  Events
    at distinct times or priorities are completely unaffected.
    """
    salt = (int(seed) * 0x9E3779B1) & _TIE_MASK
    mult = ((2 * int(seed) + 1) * 0x9E3779B97F4A7C15 | 1) & _TIE_MASK

    def scramble(eid: int, _salt: int = salt, _mult: int = mult) -> int:
        return ((eid ^ _salt) * _mult) & _TIE_MASK

    return scramble


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yield of foreign events...)."""


class StopProcess(Exception):
    """Raised internally to abort a process from outside (rarely needed)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; the event it was
    waiting on stays valid and may be re-yielded.
    """

    @property
    def cause(self) -> Any:
        """The ``cause`` object passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Event:
    """An outcome that will happen at some point in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them,
    and once the environment processes them every callback in
    :attr:`callbacks` runs exactly once.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks ``fn(event)`` invoked when the event is processed.
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or will be) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined ``env.schedule(self, 0.0, priority)`` — succeed() is on
        # the wake-up path of every store/resource grant.
        env = self.env
        env._eid += 1
        ts = env._tie_scramble
        heappush(env._queue,
                 (env._now, priority,
                  env._eid if ts is None else ts(env._eid), self))
        return self

    def _succeed_inline(self, value: Any = None) -> "Event":
        """Succeed *and* mark processed without scheduling a kernel event.

        Only valid while no callback has been attached (i.e. straight from
        the event's constructor, before it is handed to the caller): a
        process that later yields the event takes the already-processed
        fast path in :meth:`Process._resume` and continues at the same
        simulated instant the scheduled event would have delivered — one
        heap operation and one dispatch cheaper.  Used by the resource
        layer for requests/puts/gets that are satisfiable immediately
        (see DESIGN.md §9).

        When a kernel :class:`~repro.sim.trace.Tracer` is subscribed, the
        fast path is disabled and the event is scheduled normally so the
        observed event stream stays complete.
        """
        if self.env._trace_hook is not None:
            return self.succeed(value)
        self._ok = True
        self._value = value
        self.callbacks = None
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have ``exception`` thrown into
        it.  If nobody waits, the exception surfaces from
        :meth:`Environment.step` unless :meth:`defused` was set.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._value is PENDING else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._eid += 1
        ts = env._tie_scramble
        heappush(env._queue,
                 (env._now + delay, NORMAL,
                  env._eid if ts is None else ts(env._eid), self))


class Initialize(Event):
    """Urgent event used to start a freshly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._rcb)
        env._eid += 1
        ts = env._tie_scramble
        heappush(env._queue,
                 (env._now, URGENT,
                  env._eid if ts is None else ts(env._eid), self))


class _InterruptEvent(Event):
    """Urgent event delivering an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        env.schedule(self, 0.0, URGENT)

    def _deliver(self, event: "Event") -> None:
        proc = self.process
        if proc.triggered:  # process already finished; drop the interrupt
            return
        # Detach the process from whatever it is waiting on, then resume it
        # with the Interrupt exception.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._rcb)
            except ValueError:
                pass
        proc._target = None
        proc._resume(self)


class Process(Event):
    """A running generator; itself an event that fires when the generator ends.

    The value of the process-event is the generator's return value; if the
    generator raises, the process fails with that exception.
    """

    __slots__ = ("generator", "_target", "name", "_rcb")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        #: The bound ``_resume`` method, materialised once: every suspension
        #: appends it to the awaited event's callback list, and building a
        #: fresh bound method per suspension is a measurable allocation in
        #: long runs.
        self._rcb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- dispatch ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active = self
        generator = self.generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as stop:
                env._active = None
                self._ok = True
                self._value = stop.value
                if self.callbacks or env._trace_hook is not None:
                    env.schedule(self, 0.0, URGENT)
                else:
                    # Nobody is waiting on this process (and no tracer is
                    # attached): mark it processed inline instead of
                    # scheduling a no-op event.  A later ``yield proc``
                    # takes the already-processed fast path with the same
                    # value at the same simulated time.
                    self.callbacks = None
                return
            except StopProcess:
                env._active = None
                self._ok = True
                self._value = None
                if self.callbacks or env._trace_hook is not None:
                    env.schedule(self, 0.0, URGENT)
                else:
                    self.callbacks = None
                return
            except BaseException as exc:  # noqa: BLE001 - failure propagates
                env._active = None
                self._ok = False
                self._value = exc
                env.schedule(self, 0.0, URGENT)
                return

            try:
                cbs = next_event.callbacks
            except AttributeError:
                env._active = None
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                ) from None
            if cbs is not None:
                # Still pending or scheduled: park until it is processed.
                # (The cross-environment guard lives on this branch only —
                # an already-processed event carries no scheduling state, so
                # the hot inline path skips both checks.)
                if next_event.env is not env:
                    env._active = None
                    raise SimulationError(
                        f"process {self.name!r} yielded an event "
                        f"from another environment"
                    )
                cbs.append(self._rcb)
                self._target = next_event
                break
            # Already processed: loop immediately with its value.
            event = next_event
        env._active = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class ConditionEvent(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        # An event has *fired* once its callbacks ran (Timeouts carry their
        # value from construction, so testing the value would be wrong).
        return {ev: ev._value for ev in self.events if ev.callbacks is None and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Fires once *all* constituent events have fired.

    Value is a ``{event: value}`` mapping.  Fails fast if any constituent
    fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Fires as soon as *any* constituent event fires.

    Value is a ``{event: value}`` mapping of the events fired so far.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event loop.

    Typical use::

        env = Environment()

        def producer(env, store):
            while True:
                yield env.timeout(1.0)
                yield store.put("item")

        env.process(producer(env, store))
        env.run(until=100.0)
    """

    __slots__ = ("_now", "_queue", "_eid", "_active", "_trace_hook",
                 "_trace_subscribers", "_trace_snapshot",
                 "_events_processed", "_tfree", "_timeouts_recycled",
                 "_wait_tracer", "_tie_scramble", "_faults")

    def __init__(self, initial_time: float = 0.0,
                 tie_seed: Optional[int] = None) -> None:
        self._now = float(initial_time)
        #: Tie-break scrambler (race-sanitizer mode) or None.  When set,
        #: every heap push keys same-time, same-priority events by a
        #: seeded permutation of the sequence number instead of FIFO —
        #: the same zero-cost-when-off idiom as ``_trace_hook``.
        self._tie_scramble: Optional[Callable[[int], int]] = (
            None if tie_seed is None else tie_scramble(tie_seed))
        self._queue: list = []
        self._eid = 0
        self._active: Optional[Process] = None
        #: Post-step dispatch target.  ``None`` when nobody listens (the hot
        #: loop pays a single ``is not None`` test), the lone subscriber when
        #: exactly one is attached, or :meth:`_dispatch_trace` for fan-out.
        self._trace_hook: Optional[Callable[[Event], None]] = None
        self._trace_subscribers: list = []
        #: Immutable snapshot of the subscriber list, refreshed on
        #: add/remove so fan-out dispatch never allocates per event.
        self._trace_snapshot: tuple = ()
        #: Total events dispatched by this environment (step + run loops).
        self._events_processed = 0
        #: Free-list of recyclable Timeout objects (bounded).
        self._tfree: list = []
        #: How many Timeout allocations the free-list saved (for perfbench).
        self._timeouts_recycled = 0
        #: Wait-cause tracer (:class:`repro.sim.waits.WaitTracer`) or None.
        #: Hot paths pay one ``is not None`` test when no tracer is
        #: installed, mirroring ``_trace_hook`` and station ``_stats``.
        self._wait_tracer = None
        #: Fault injector (:class:`repro.faults.plan.FaultInjector`) or
        #: None.  Injection points and recovery loops pay one ``is not
        #: None`` test when chaos is off — same contract as the tracer.
        self._faults = None

    # -- trace subscription -------------------------------------------------
    def add_trace_subscriber(self, fn: Callable[[Event], None]) -> None:
        """Register ``fn(event)`` to run after every processed event.

        Multiple subscribers may coexist (e.g. an event :class:`Tracer` and a
        span collector); they are invoked in registration order.
        """
        self._trace_subscribers.append(fn)
        self._refresh_trace_hook()

    def remove_trace_subscriber(self, fn: Callable[[Event], None]) -> None:
        """Unregister a subscriber added with :meth:`add_trace_subscriber`."""
        try:
            self._trace_subscribers.remove(fn)
        except ValueError:
            pass
        self._refresh_trace_hook()

    def _refresh_trace_hook(self) -> None:
        subs = self._trace_subscribers
        # Snapshot once here instead of building a tuple per processed
        # event in the fan-out path; add/remove invalidate the snapshot.
        self._trace_snapshot = tuple(subs)
        if not subs:
            self._trace_hook = None
        elif len(subs) == 1:
            # Single subscriber: dispatch directly, no fan-out frame.
            self._trace_hook = subs[0]
        else:
            self._trace_hook = self._dispatch_trace

    def _dispatch_trace(self, event: Event) -> None:
        # The snapshot is immutable: a subscriber that unsubscribes mid-
        # dispatch still sees the current event (same semantics as the old
        # per-event tuple() copy), and the next event uses the new snapshot.
        for fn in self._trace_snapshot:
            fn(event)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None outside process context)."""
        return self._active

    @property
    def events_processed(self) -> int:
        """Total events dispatched so far (consistent at step/run boundaries).

        Telemetry divides this by completed IOs to report *events/IO*, the
        simulator's native cost metric (see DESIGN.md §9).
        """
        return self._events_processed

    @property
    def timeouts_recycled(self) -> int:
        """Timeout allocations avoided via the free-list (perf accounting)."""
        return self._timeouts_recycled

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay`` seconds.

        Recycles a processed Timeout from the free-list when one is
        available — the dominant allocation of a simulated run is one
        Timeout per service reservation, and the run loop only parks an
        event here once ``sys.getrefcount`` proves nothing else can
        observe it.
        """
        wt = self._wait_tracer
        if wt is not None:
            wt.on_timeout(delay)
        tfree = self._tfree
        if tfree:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            # A recycled Timeout is always a cleanly-fired one (Timeouts
            # cannot fail and are only parked after a clean dispatch), so
            # ``_ok``/``_defused`` still hold their required values.
            t = tfree.pop()
            t.callbacks = []
            t._value = value
            t.delay = delay
            self._eid += 1
            ts = self._tie_scramble
            heappush(self._queue,
                     (self._now + delay, NORMAL,
                      self._eid if ts is None else ts(self._eid), t))
            self._timeouts_recycled += 1
            return t
        return Timeout(self, delay, value)

    def timeout_until(self, when: float, value: Any = None) -> Timeout:
        """Create an event firing at *absolute* simulated time ``when``.

        Unlike ``timeout(when - now)`` this is exact: the event fires at
        the float ``when`` itself, with no re-rounding through a delay.
        Transport layers use it to merge consecutive pure-delay sleeps
        (e.g. stack latency + switch propagation) into a single kernel
        event whose fire time is bit-identical to the chained sleeps.
        """
        now = self._now
        if when < now:
            raise ValueError(f"timeout_until({when}) lies in the past (now={now})")
        wt = self._wait_tracer
        if wt is not None:
            wt.on_timeout(when - now)
        tfree = self._tfree
        if tfree:
            t = tfree.pop()
            t.callbacks = []
            self._timeouts_recycled += 1
        else:
            t = Timeout.__new__(Timeout)
            t.env = self
            t.callbacks = []
            t._defused = False
            t._ok = True
        t._value = value
        t.delay = when - now
        self._eid += 1
        ts = self._tie_scramble
        heappush(self._queue,
                 (when, NORMAL,
                  self._eid if ts is None else ts(self._eid), t))
        return t

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first event in ``events``."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert ``event`` into the event list ``delay`` seconds from now."""
        self._eid += 1
        ts = self._tie_scramble
        heappush(self._queue,
                 (self._now + delay, priority,
                  self._eid if ts is None else ts(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Kept for single-stepping and debugging; :meth:`run` inlines this
        body (minus the empty-queue probe) to avoid a frame per event.
        """
        try:
            when, _prio, _eid, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = when
        self._events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if self._trace_hook is not None:
            self._trace_hook(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
        if (type(event) is Timeout and len(self._tfree) < _FREELIST_MAX
                and getrefcount(event) == 2):
            self._tfree.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        * ``until`` is ``None`` — run until the event list drains.
        * ``until`` is a number — run all events scheduled up to and
          including that time, then set the clock to it.
        * ``until`` is an :class:`Event` — run until that event is processed
          and return its value (raising if it failed).

        All three modes run a *fused* dispatch loop: heap pop, callback
        fan-out, trace hook and Timeout recycling happen inline with the
        loop-invariant lookups (queue, free-list, ``heappop``) hoisted into
        locals.  Semantics are identical to calling :meth:`step` in a loop;
        only the per-event interpreter overhead differs.

        The cyclic garbage collector is paused for the duration of the
        loop (and restored on exit, including on error): a simulation turn
        allocates heavily — events, heap tuples, generator frames — and
        CPython's generation-0 collections otherwise trigger every ~700
        allocations, costing ~10% of wall time.  Reference cycles
        (process → generator → frame) are rare and small; they are
        reclaimed by the next enabled collection after the run returns.
        """
        queue = self._queue
        tfree = self._tfree
        pop = heappop
        n = 0
        gc_was_enabled = gc_isenabled()
        if gc_was_enabled:
            gc_disable()
        try:
            if until is None:
                while queue:
                    when, _prio, _eid, event = pop(queue)
                    self._now = when
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    trace_hook = self._trace_hook
                    if trace_hook is not None:
                        trace_hook(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc if isinstance(exc, BaseException) \
                            else SimulationError(repr(exc))
                    if (type(event) is Timeout and len(tfree) < _FREELIST_MAX
                            and getrefcount(event) == 2):
                        tfree.append(event)
                return None

            if isinstance(until, Event):
                sentinel = until
                if sentinel.callbacks is None:  # already processed
                    if not sentinel._ok:
                        raise sentinel._value
                    return sentinel._value
                flag = [False]
                sentinel.callbacks.append(lambda ev: flag.__setitem__(0, True))
                fired = flag.__getitem__
                while not fired(0):
                    if not queue:
                        raise SimulationError(
                            "event list empty but the awaited event never fired"
                        )
                    when, _prio, _eid, event = pop(queue)
                    self._now = when
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    trace_hook = self._trace_hook
                    if trace_hook is not None:
                        trace_hook(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc if isinstance(exc, BaseException) \
                            else SimulationError(repr(exc))
                    if (type(event) is Timeout and len(tfree) < _FREELIST_MAX
                            and getrefcount(event) == 2):
                        tfree.append(event)
                if not sentinel._ok:
                    sentinel._defused = True
                    raise sentinel._value
                return sentinel._value

            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} lies in the past (now={self._now})")
            while queue and queue[0][0] <= horizon:
                when, _prio, _eid, event = pop(queue)
                self._now = when
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                trace_hook = self._trace_hook
                if trace_hook is not None:
                    trace_hook(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) \
                        else SimulationError(repr(exc))
                if (type(event) is Timeout and len(tfree) < _FREELIST_MAX
                        and getrefcount(event) == 2):
                    tfree.append(event)
            self._now = horizon
            return None
        finally:
            self._events_processed += n
            if gc_was_enabled:
                gc_enable()
