"""Request-scoped distributed tracing for the simulator.

Real DAOS carries an HLC timestamp and trace metadata in every CaRT RPC
capsule; the reproduction does the analog: a :class:`Span` is created at the
workload layer, threaded (explicitly, or inside ``Message.meta["trace"]``
across RPC hops) through client → transport → engine → VOS → media, and every
stage opens a child span around its own work.  Because the simulator is one
process, the "wire format" is simply the live parent span object.

Design rules that keep tracing honest and cheap:

* **Zero kernel coupling** — spans never schedule events or touch the event
  loop; timestamps are plain reads of ``env.now``.  A traced run therefore
  produces *bit-identical* simulated results to an untraced one.
* **Zero cost when off** — every instrumented call site guards with
  ``if trace is not None``; with no collector attached nothing is allocated.
* **Sampling** — :meth:`SpanCollector.trace` returns ``None`` for
  ``sample_every - 1`` out of every ``sample_every`` requests, bounding both
  host memory and host CPU for long runs.

On top of the raw spans sit three analyses:

* :class:`LatencyBreakdown` — per-stage *self time* (span duration minus its
  children's durations) aggregated across traces; renders the paper-style
  attribution table behind Figs. 4-5 ("DPU-TCP 4 KiB randread: most of the
  time is the Arm RX path").
* :func:`critical_path` — the chain of spans that determined one request's
  end-to-end latency.
* ``to_dict`` hooks feeding the exporters in :mod:`repro.sim.export`.
"""

from __future__ import annotations

import itertools
from math import fsum
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = [
    "Span",
    "Trace",
    "SpanCollector",
    "LatencyBreakdown",
    "critical_path",
]

_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)


class Span:
    """One timed stage of one request.

    ``t_end`` is ``None`` until :meth:`finish` is called.  Spans form a tree
    via ``parent_id``; the root span covers the whole request.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "node",
                 "t_start", "t_end", "nbytes", "attrs")

    def __init__(
        self,
        trace: "Trace",
        name: str,
        parent_id: Optional[int],
        node: Optional[str] = None,
        nbytes: int = 0,
        **attrs: object,
    ) -> None:
        self.trace = trace
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.name = name
        self.node = node
        env = trace.env
        self.t_start = env.now
        self.t_end: Optional[float] = None
        self.nbytes = nbytes
        self.attrs = attrs or None
        wt = env._wait_tracer
        if wt is not None:
            # Register as the active span of the opening process so wait
            # events recorded while it is open are attributed to it.
            wt.push_span(env._active, self)

    # -- lifecycle ---------------------------------------------------------

    def child(self, name: str, node: Optional[str] = None,
              nbytes: int = 0, **attrs: object) -> "Span":
        """Open a child span starting now."""
        return Span(self.trace, name, self.span_id, node=node,
                    nbytes=nbytes, **attrs)

    def finish(self) -> "Span":
        """Close the span at the current simulated time and record it."""
        if self.t_end is None:
            env = self.trace.env
            self.t_end = env.now
            wt = env._wait_tracer
            if wt is not None:
                wt.pop_span(env._active, self)
            self.trace.collector._record(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    # -- queries -----------------------------------------------------------

    @property
    def trace_id(self) -> int:
        return self.trace.trace_id

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds (0.0 while still open)."""
        return 0.0 if self.t_end is None else self.t_end - self.t_start

    @property
    def stage(self) -> str:
        """Aggregation key: ``node.name`` when the node is known."""
        return f"{self.node}.{self.name}" if self.node else self.name

    def to_dict(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "nbytes": self.nbytes,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.t_end is None else f"{self.duration * 1e6:.2f}us"
        return f"<Span {self.stage} trace={self.trace_id} {state}>"


class Trace:
    """One sampled request: a trace id plus the root span."""

    __slots__ = ("trace_id", "env", "collector", "root")

    def __init__(self, collector: "SpanCollector", name: str,
                 node: Optional[str] = None, nbytes: int = 0) -> None:
        self.trace_id = next(_trace_ids)
        self.env = collector.env
        self.collector = collector
        self.root = Span(self, name, None, node=node, nbytes=nbytes)

    def finish(self) -> Span:
        """Close the root span."""
        return self.root.finish()


class SpanCollector:
    """Collects finished spans for one environment.

    Parameters
    ----------
    sample_every:
        Keep 1 in N requests (``trace()`` returns ``None`` for the rest).
    max_traces:
        Stop sampling new traces past this many (spans of already-started
        traces are still recorded so no trace is left half-captured).
    """

    def __init__(self, env: "Environment", sample_every: int = 1,
                 max_traces: int = 100_000) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.env = env
        self.sample_every = int(sample_every)
        self.max_traces = int(max_traces)
        self.spans: List[Span] = []
        self.requests_seen = 0
        self.traces_started = 0

    # -- sampling ----------------------------------------------------------

    def trace(self, name: str, node: Optional[str] = None,
              nbytes: int = 0) -> Optional[Trace]:
        """Maybe start a trace for a new request (honours sampling)."""
        self.requests_seen += 1
        if (self.requests_seen - 1) % self.sample_every != 0:
            return None
        if self.traces_started >= self.max_traces:
            return None
        self.traces_started += 1
        return Trace(self, name, node=node, nbytes=nbytes)

    def _record(self, span: Span) -> None:
        self.spans.append(span)

    # -- views -------------------------------------------------------------

    def by_trace(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id."""
        out: Dict[int, List[Span]] = {}
        for s in self.spans:
            out.setdefault(s.trace_id, []).append(s)
        return out

    def roots(self) -> List[Span]:
        """All finished root spans, in completion order."""
        return [s for s in self.spans if s.parent_id is None]

    def clear(self) -> None:
        self.spans.clear()

    def to_dict(self) -> dict:
        return {
            "requests_seen": self.requests_seen,
            "traces_started": self.traces_started,
            "sample_every": self.sample_every,
            "spans": [s.to_dict() for s in self.spans],
        }


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------

class LatencyBreakdown:
    """Per-stage attribution of end-to-end latency across traces.

    Each span contributes its **self time** — duration minus the summed
    durations of its direct children — to its stage bucket, so overlapping
    parent/child intervals are not double counted and (for sequential
    request shapes) the buckets sum exactly to the root durations.

    ``stage_waits`` (from :meth:`repro.sim.waits.WaitTracer.stage_waits`)
    optionally adds a per-resource blame column: for each stage, the
    resource that accounts for the most attributed wait time.
    """

    def __init__(self, spans: Iterable[Span],
                 stage_waits: Optional[Dict[str, Dict[str, float]]] = None) -> None:
        self.stage_waits = stage_waits
        spans = list(spans)
        child_time: Dict[int, float] = {}
        for s in spans:
            if s.parent_id is not None:
                child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration

        self.stage_totals: Dict[str, float] = {}
        self.stage_counts: Dict[str, int] = {}
        self.total_root_time = 0.0
        self.n_traces = 0
        for s in spans:
            self_time = s.duration - child_time.get(s.span_id, 0.0)
            if self_time < 0.0:  # overlapping children (parallel fan-out)
                self_time = 0.0
            key = s.stage
            self.stage_totals[key] = self.stage_totals.get(key, 0.0) + self_time
            self.stage_counts[key] = self.stage_counts.get(key, 0) + 1
            if s.parent_id is None:
                self.total_root_time += s.duration
                self.n_traces += 1

    @property
    def attributed_time(self) -> float:
        """Total self time across all stages."""
        return sum(self.stage_totals.values())

    def coverage(self) -> float:
        """Fraction of end-to-end time the stages account for (0..1)."""
        if self.total_root_time <= 0.0:
            return 0.0
        return min(self.attributed_time / self.total_root_time, 1.0)

    def shares(self) -> List[tuple]:
        """``(stage, total_self_time, share_of_root)`` sorted descending."""
        root = self.total_root_time or 1.0
        rows = [(k, v, v / root) for k, v in self.stage_totals.items()]
        rows.sort(key=lambda r: r[1], reverse=True)
        return rows

    def top_stage(self) -> Optional[str]:
        """Stage with the largest attributed time (ignoring the root bucket)."""
        best = None
        best_t = -1.0
        for k, v, _share in self.shares():
            if v > best_t:
                best, best_t = k, v
        return best

    def top_wait_cause(self, stage: str) -> Optional[tuple]:
        """``(resource, seconds, fraction_of_stage_waits)`` for a stage.

        Requires ``stage_waits``; ties broken by resource name so the
        report is byte-stable across runs.
        """
        if not self.stage_waits:
            return None
        waits = self.stage_waits.get(stage)
        if not waits:
            return None
        total = fsum(waits.values())
        if total <= 0.0:
            return None
        res, secs = min(waits.items(), key=lambda kv: (-kv[1], kv[0]))
        return res, secs, secs / total

    def table(self, title: str = "Latency breakdown") -> str:
        """Render the paper-style attribution table."""
        from repro.bench.report import Table

        n = max(self.n_traces, 1)
        cols = ["self us/op", "share", "spans"]
        blame = self.stage_waits is not None
        if blame:
            cols.append("waiting on")
        t = Table(title, cols, row_header="stage")
        for stage, total, share in self.shares():
            row = [
                f"{total / n * 1e6:9.3f}",
                f"{share * 100:5.1f}%",
                str(self.stage_counts[stage]),
            ]
            if blame:
                top = self.top_wait_cause(stage)
                row.append(f"{top[0]} ({top[2] * 100:.0f}%)" if top else "-")
            t.add_row(stage, row)
        tail = [
            f"{self.total_root_time / n * 1e6:9.3f}",
            f"{self.coverage() * 100:5.1f}% attributed",
            str(self.n_traces),
        ]
        if blame:
            tail.append("-")
        t.add_row("(end-to-end)", tail)
        return t.render()

    def to_dict(self) -> dict:
        n = max(self.n_traces, 1)
        stages = {}
        for stage, total, share in self.shares():
            row = {
                "self_sec_total": total,
                "self_sec_per_op": total / n,
                "share": share,
                "spans": self.stage_counts[stage],
            }
            if self.stage_waits is not None:
                row["waits"] = dict(sorted(
                    (self.stage_waits.get(stage) or {}).items()))
            stages[stage] = row
        return {
            "n_traces": self.n_traces,
            "end_to_end_sec_per_op": self.total_root_time / n,
            "coverage": self.coverage(),
            "stages": stages,
        }


def critical_path(spans: Iterable[Span]) -> List[Span]:
    """The chain of spans that determined one request's completion time.

    At each level the children that gate the parent's completion are
    reconstructed back-to-front: start from the child finishing last, then
    repeatedly hop to the latest-ending child that finished before the
    current one started (the stage the current one waited behind).  Each
    chain element is expanded recursively, so for sequential shapes the
    result is the full stage sequence, and for parallel fan-out
    (multi-chunk DFS I/O, multi-QP) each level follows the straggler.
    Parents precede their children in the returned list.  ``spans`` must
    belong to a single trace.
    """

    spans = list(spans)
    if not spans:
        return []
    tids = {s.trace_id for s in spans}
    if len(tids) > 1:
        raise ValueError(f"spans from {len(tids)} traces; pass exactly one")
    children: Dict[int, List[Span]] = {}
    root = None
    for s in spans:
        if s.parent_id is None:
            root = s
        else:
            children.setdefault(s.parent_id, []).append(s)
    if root is None:
        # No root captured (e.g. trace truncated); start from earliest span.
        root = min(spans, key=lambda s: s.t_start)

    def expand(parent: Span) -> List[Span]:
        kids = [k for k in children.get(parent.span_id, ())
                if k.t_end is not None]
        out = [parent]
        if not kids:
            return out
        cur = max(kids, key=lambda s: s.t_end)
        seq = [cur]
        chosen = {id(cur)}
        while True:
            prev = [k for k in kids
                    if id(k) not in chosen and k.t_end <= cur.t_start]
            if not prev:
                break
            cur = max(prev, key=lambda s: s.t_end)
            seq.append(cur)
            chosen.add(id(cur))
        for s in reversed(seq):
            out.extend(expand(s))
        return out

    return expand(root)
