"""Wait-cause attribution: *why* was each process blocked, and on what?

Spans (:mod:`repro.sim.spans`) say **where** in the request path simulated
time went; this module says **what each stage was waiting on**.  While a
:class:`WaitTracer` is installed on an :class:`~repro.sim.core.Environment`,
every primitive that makes a process give up the CPU reports a wait event:

* **reserve** — a :class:`~repro.sim.queues.FifoServer` /
  :class:`~repro.sim.queues.PooledServer` /
  :class:`~repro.sim.queues.BandwidthPipe` reservation.  The split into
  queueing delay (``wait``), occupancy (``service``) and post-service sleep
  (``latency``) is analytically exact — reservation servers compute all
  three before scheduling the single wake-up event.
* **block** — a parked :class:`~repro.sim.resources.Resource` /
  ``PriorityResource`` request, :class:`~repro.sim.resources.Store`
  put/get or :class:`~repro.sim.resources.Container` put/get, measured
  from park to grant.
* **sleep** — a plain ``env.timeout`` not claimed by any primitive (pure
  delays: switch propagation, polling intervals, think time).

Each event is tagged with the *active span* of the process that waited (the
innermost open span the current process pushed), so every span decomposes as
``duration = service + Σ wait(resource_i)`` and the latency breakdown gains
a per-resource blame column.

Design rules (shared with spans and station stats):

* **Zero cost when off** — every hook site guards with one
  ``env._wait_tracer is not None`` attribute test; nothing is allocated
  and no branch beyond the test is taken when no tracer is installed.
* **Pure observation** — the tracer never schedules events or perturbs
  wake-up order; a traced run is bit-identical to an untraced one.  (The
  only interaction is that :class:`~repro.sim.queues.BandwidthPipe`
  disables its coalescing fast path while a tracer is installed so that
  per-chunk reservations are observed individually — the pipe's chunked
  path is exactly equivalent by construction, see DESIGN.md §9.)
* **Bounded memory** — the flat record list stops growing at
  ``max_records`` (the drop count is reported), per-resource aggregate
  scalars are O(#resources), and the per-resource cumulative-wait
  counters are bounded :class:`~repro.sim.timeseries.TimeSeries` rings.

Two accounting streams come out:

* :attr:`WaitTracer.aggregates` — per-resource scalar totals over *all*
  operations since install (prefill included).  These pair with each
  station's own ``busy_time`` for the doctor's utilization-law check.
* :attr:`WaitTracer.records` — span-attributed events (only recorded when
  the waiting process has an open span, i.e. for sampled requests).
  These feed the blame ranking, the per-span decomposition and the
  wait-weighted flamegraphs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.timeseries import GAUGE, TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.sim.spans import Span

__all__ = ["WaitTracer", "WaitRecord", "ResourceWait",
           "RESERVE", "BLOCK", "SLEEP", "SLEEP_RESOURCE", "ANON_RESOURCE"]

#: Record kinds.
RESERVE = "reserve"
BLOCK = "block"
SLEEP = "sleep"

#: Pseudo-resource for unclaimed timeouts (pure delays).
SLEEP_RESOURCE = "(sleep)"
#: Fallback for primitives constructed without a name.
ANON_RESOURCE = "(anon)"


class WaitRecord:
    """One span-attributed wait event.

    ``wait`` is time spent queued (or parked, for blocks), ``service`` is
    time occupying the resource, ``latency`` is a post-service fixed delay
    (device access latency, pipe propagation, pure sleeps).  ``total``
    is the simulated time the waiting process gave up for this event.
    """

    __slots__ = ("span", "resource", "kind", "wait", "service", "latency", "t")

    def __init__(self, span: "Span", resource: str, kind: str,
                 wait: float, service: float, latency: float, t: float) -> None:
        self.span = span
        self.resource = resource
        self.kind = kind
        self.wait = wait
        self.service = service
        self.latency = latency
        #: Simulated time the event was recorded (reserve: at reservation;
        #: block: at grant).
        self.t = t

    @property
    def total(self) -> float:
        return self.wait + self.service + self.latency

    def to_dict(self) -> dict:
        return {
            "span_id": self.span.span_id,
            "trace_id": self.span.trace_id,
            "stage": self.span.stage,
            "resource": self.resource,
            "kind": self.kind,
            "wait": self.wait,
            "service": self.service,
            "latency": self.latency,
            "t": self.t,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WaitRecord {self.kind} {self.resource} "
                f"w={self.wait * 1e6:.2f}us s={self.service * 1e6:.2f}us "
                f"l={self.latency * 1e6:.2f}us>")


class ResourceWait:
    """Per-resource scalar aggregates over every operation since install."""

    __slots__ = ("name", "count", "wait", "service", "latency", "block")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wait = 0.0
        self.service = 0.0
        self.latency = 0.0
        self.block = 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "wait_sec": self.wait,
            "service_sec": self.service,
            "latency_sec": self.latency,
            "block_sec": self.block,
        }


class WaitTracer:
    """Records wait causes for one environment while installed.

    Usage::

        tracer = WaitTracer(env)
        tracer.install()        # or: with WaitTracer(env) as tracer: ...
        ... run the scenario ...
        tracer.uninstall()
        blame = tracer.blame()
    """

    def __init__(self, env: "Environment", max_records: int = 1_000_000,
                 series_capacity: int = 512) -> None:
        self.env = env
        self.max_records = int(max_records)
        #: Span-attributed wait events (sampled requests only).
        self.records: List[WaitRecord] = []
        #: Events not recorded because ``max_records`` was reached.
        self.records_dropped = 0
        #: Per-resource totals over all operations since install.
        self.aggregates: Dict[str, ResourceWait] = {}
        # Per-process open-span stacks, keyed by the Process object that
        # pushed the span (None for module-level pushes).
        self._stacks: Dict[object, List["Span"]] = {}
        # Reservation primitives set this right before creating their
        # wake-up timeout so Environment.timeout does not double-count
        # the same sim-time passage as a sleep.
        self._claimed = False
        # Parked request/put/get events -> (resource, park time, span).
        # Keyed by the event object itself (strong ref, removed at grant
        # or withdrawal) so id() reuse cannot mix up two waits.
        self._blocked: Dict[object, Tuple[str, float, "Span"]] = {}
        # Per-resource cumulative wait counters (Chrome-trace tracks).
        self._series_capacity = int(series_capacity)
        self._series: Dict[str, TimeSeries] = {}
        self._series_last_t: Dict[str, float] = {}
        self.t_installed: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "WaitTracer":
        """Attach to the environment (at most one tracer at a time)."""
        current = self.env._wait_tracer
        if current is not None and current is not self:
            raise RuntimeError("another WaitTracer is already installed")
        self.env._wait_tracer = self
        if self.t_installed is None:
            self.t_installed = self.env.now
        return self

    def uninstall(self) -> None:
        """Detach; hooks revert to the zero-cost no-tracer path."""
        if self.env._wait_tracer is self:
            self.env._wait_tracer = None

    def __enter__(self) -> "WaitTracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- span stack (called from Span.__init__/finish) ----------------------

    def push_span(self, proc, span: "Span") -> None:
        self._stacks.setdefault(proc, []).append(span)

    def pop_span(self, proc, span: "Span") -> None:
        stack = self._stacks.get(proc)
        if stack and stack[-1] is span:
            stack.pop()
            if not stack:
                del self._stacks[proc]
            return
        # Tolerate out-of-order/cross-process finishes: remove the span
        # wherever it was pushed (linear, but this is the cold path).
        for key, st in list(self._stacks.items()):
            try:
                st.remove(span)
            except ValueError:
                continue
            if not st:
                del self._stacks[key]
            return

    def active_span(self) -> Optional["Span"]:
        """Innermost open span of the currently-running process."""
        stack = self._stacks.get(self.env._active)
        return stack[-1] if stack else None

    # -- hooks (called from kernel/primitives; tracer installed) ------------

    def reserve(self, name: Optional[str], wait: float, service: float,
                latency: float = 0.0) -> None:
        """A reservation server computed its analytic wait/service split.

        Claims the primitive's immediately-following wake-up timeout so it
        is not double-counted as a sleep.
        """
        self._claimed = True
        if name is None:
            name = ANON_RESOURCE
        agg = self.aggregates.get(name)
        if agg is None:
            agg = self.aggregates[name] = ResourceWait(name)
        agg.count += 1
        agg.wait += wait
        agg.service += service
        agg.latency += latency
        now = self.env._now
        if wait > 0.0:
            self._bump_series(name, now, agg.wait + agg.block)
        stack = self._stacks.get(self.env._active)
        if stack:
            self._append(WaitRecord(stack[-1], name, RESERVE,
                                    wait, service, latency, now))

    def on_timeout(self, delay: float) -> None:
        """``env.timeout``/``timeout_until`` was called.

        Consumed silently when a reservation just claimed it; otherwise
        this is a pure delay, attributed to the ``(sleep)`` pseudo-resource
        of the active span (unattributed sleeps — samplers, idle loops —
        are not recorded at all).
        """
        if self._claimed:
            self._claimed = False
            return
        stack = self._stacks.get(self.env._active)
        if not stack:
            return
        agg = self.aggregates.get(SLEEP_RESOURCE)
        if agg is None:
            agg = self.aggregates[SLEEP_RESOURCE] = ResourceWait(SLEEP_RESOURCE)
        agg.count += 1
        agg.latency += delay
        self._append(WaitRecord(stack[-1], SLEEP_RESOURCE, SLEEP,
                                0.0, 0.0, delay, self.env._now))

    def begin_block(self, event, name: Optional[str]) -> None:
        """A request/put/get parked in a waiter queue."""
        stack = self._stacks.get(self.env._active)
        if not stack:
            return
        self._blocked[event] = (name or ANON_RESOURCE, self.env._now, stack[-1])

    def end_block(self, event) -> None:
        """A parked event is being granted/woken (same-instant resume)."""
        info = self._blocked.pop(event, None)
        if info is None:
            return
        name, t0, span = info
        now = self.env._now
        dur = now - t0
        agg = self.aggregates.get(name)
        if agg is None:
            agg = self.aggregates[name] = ResourceWait(name)
        agg.count += 1
        agg.block += dur
        if dur > 0.0:
            self._bump_series(name, now, agg.wait + agg.block)
        self._append(WaitRecord(span, name, BLOCK, dur, 0.0, 0.0, now))

    def cancel_block(self, event) -> None:
        """A parked event was withdrawn before being granted."""
        self._blocked.pop(event, None)

    def _append(self, record: WaitRecord) -> None:
        if len(self.records) >= self.max_records:
            self.records_dropped += 1
            return
        self.records.append(record)

    def _bump_series(self, name: str, now: float, cum_wait: float) -> None:
        ts = self._series.get(name)
        if ts is None:
            ts = self._series[name] = TimeSeries(
                f"wait.{name}", capacity=self._series_capacity,
                unit="s", kind=GAUGE)
            self._series_last_t[name] = self.t_installed or 0.0
        last = self._series_last_t[name]
        ts.append(now, now - last, cum_wait)
        if now > last:
            self._series_last_t[name] = now

    # -- analyses -----------------------------------------------------------

    def blame(self) -> Dict[str, float]:
        """Resource -> attributed seconds over all sampled spans.

        Occupancy records only (reserve + sleep): block records mean
        "waiting for another process's work downstream" and would double
        count the downstream resource's own records.
        """
        out: Dict[str, float] = {}
        for r in self.records:
            if r.kind == BLOCK:
                continue
            out[r.resource] = out.get(r.resource, 0.0) + r.total
        return out

    def blame_components(self) -> Dict[str, Dict[str, float]]:
        """Resource -> ``{wait, service, latency, total}`` over sampled spans.

        Same record set as :meth:`blame` (occupancy records only), but the
        per-event split is preserved so a differential doctor can say
        whether a regression is *queueing* (wait grew) or *service*
        (the resource itself got slower).
        """
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records:
            if r.kind == BLOCK:
                continue
            d = out.get(r.resource)
            if d is None:
                d = out[r.resource] = {"wait": 0.0, "service": 0.0,
                                       "latency": 0.0, "total": 0.0}
            d["wait"] += r.wait
            d["service"] += r.service
            d["latency"] += r.latency
            d["total"] += r.total
        return out

    def blocked_on(self) -> Dict[str, float]:
        """Resource -> seconds sampled spans spent parked on it."""
        out: Dict[str, float] = {}
        for r in self.records:
            if r.kind == BLOCK:
                out[r.resource] = out.get(r.resource, 0.0) + r.wait
        return out

    def span_waits(self) -> Dict[int, Dict[str, float]]:
        """span_id -> resource -> attributed seconds (blocks included)."""
        out: Dict[int, Dict[str, float]] = {}
        for r in self.records:
            d = out.setdefault(r.span.span_id, {})
            d[r.resource] = d.get(r.resource, 0.0) + r.total
        return out

    def stage_waits(self) -> Dict[str, Dict[str, float]]:
        """Span stage -> resource -> attributed seconds (blocks included).

        This is the per-resource blame column for
        :class:`~repro.sim.spans.LatencyBreakdown`.
        """
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records:
            d = out.setdefault(r.span.stage, {})
            d[r.resource] = d.get(r.resource, 0.0) + r.total
        return out

    def records_for_span(self, span_id: int) -> List[WaitRecord]:
        return [r for r in self.records if r.span.span_id == span_id]

    def wait_series(self) -> List[TimeSeries]:
        """Cumulative blamed-wait counters, one per resource, name-sorted."""
        return [self._series[k] for k in sorted(self._series)]

    def to_dict(self) -> dict:
        return {
            "t_installed": self.t_installed,
            "records": len(self.records),
            "records_dropped": self.records_dropped,
            "aggregates": {k: v.to_dict()
                           for k, v in sorted(self.aggregates.items())},
            "blame_sec": dict(sorted(self.blame().items())),
            "blocked_on_sec": dict(sorted(self.blocked_on().items())),
        }
