"""Metric export: Prometheus text exposition + JSON.

Turns a :class:`~repro.sim.monitor.Monitor` (and optionally a
:class:`~repro.core.telemetry.SystemReport` and a
:class:`~repro.sim.spans.LatencyBreakdown`) into machine-readable form:

* :func:`to_prometheus` — the Prometheus text exposition format (``# TYPE``
  lines, ``_sum``/``_count``/``_bucket`` conventions), suitable for a
  file-based textfile collector or scraping endpoint.
* :func:`to_json_dict` / :func:`to_json` — a stable JSON document used by
  the bench ``BENCH_*.json`` results format.
* :func:`parse_prometheus` — a small parser used by the round-trip tests.

Everything here is pure post-processing: no event-loop coupling, safe to
call after (or during) a run.
"""

from __future__ import annotations

import json
import math
import re
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.monitor import Monitor
    from repro.sim.spans import LatencyBreakdown

__all__ = [
    "metric_name",
    "escape_label_value",
    "unescape_label_value",
    "monitor_to_dict",
    "to_prometheus",
    "to_json_dict",
    "to_json",
    "parse_prometheus",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize an instrument name into a legal Prometheus metric name."""
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return f"{prefix}_{clean}" if prefix else clean


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF.

    Stage names flow into ``stage="..."`` labels verbatim, and nothing
    upstream forbids quotes or newlines in them — unescaped they would
    truncate the label (or split the line) and corrupt the scrape.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


_UNESCAPE_RE = re.compile(r"\\(.)")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (unknown escapes pass through)."""
    return _UNESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


# ---------------------------------------------------------------------------
# Monitor -> dict
# ---------------------------------------------------------------------------

def monitor_to_dict(monitor: "Monitor") -> dict:
    """All instruments of a :class:`Monitor` as one plain dict."""
    return {
        "counters": {n: c.value for n, c in monitor.counters.items()},
        "gauges": {
            n: {"level": g.level, "peak": g.peak, "mean": g.mean()}
            for n, g in monitor.gauges.items()
        },
        "rates": {
            n: {
                "ops": r.ops,
                "bytes": r.bytes,
                "elapsed": r.elapsed(),
                "ops_per_sec": r.ops_per_sec(),
                "bytes_per_sec": r.bytes_per_sec(),
            }
            for n, r in monitor.rates.items()
        },
        "latencies": {n: rec.summary() for n, rec in monitor.latencies.items()},
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def to_prometheus(
    monitor: "Monitor",
    prefix: str = "repro",
    breakdown: Optional["LatencyBreakdown"] = None,
) -> str:
    """Render every instrument in the Prometheus text format.

    * counters → ``counter``
    * gauges → ``gauge`` (current level) plus ``_peak`` / ``_mean`` gauges
    * rate meters → ``_ops_total`` / ``_bytes_total`` counters and
      per-second gauges
    * latency recorders → ``summary`` (quantile series + ``_sum`` /
      ``_count``); recorders that spilled to a streaming histogram also
      emit cumulative ``_bucket{le=...}`` series
    * breakdown stages (optional) → ``_stage_seconds_total`` counters
    """
    lines: list = []

    for name, c in monitor.counters.items():
        m = metric_name(name, prefix)
        lines.append(f"# TYPE {m} counter")
        lines.append(f"{m} {_fmt(c.value)}")

    for name, g in monitor.gauges.items():
        m = metric_name(name, prefix)
        lines.append(f"# TYPE {m} gauge")
        lines.append(f"{m} {_fmt(g.level)}")
        lines.append(f"# TYPE {m}_peak gauge")
        lines.append(f"{m}_peak {_fmt(g.peak)}")
        lines.append(f"# TYPE {m}_mean gauge")
        lines.append(f"{m}_mean {_fmt(g.mean())}")

    for name, r in monitor.rates.items():
        m = metric_name(name, prefix)
        lines.append(f"# TYPE {m}_ops_total counter")
        lines.append(f"{m}_ops_total {_fmt(r.ops)}")
        lines.append(f"# TYPE {m}_bytes_total counter")
        lines.append(f"{m}_bytes_total {_fmt(r.bytes)}")
        lines.append(f"# TYPE {m}_ops_per_second gauge")
        lines.append(f"{m}_ops_per_second {_fmt(r.ops_per_sec())}")
        lines.append(f"# TYPE {m}_bytes_per_second gauge")
        lines.append(f"{m}_bytes_per_second {_fmt(r.bytes_per_sec())}")

    for name, rec in monitor.latencies.items():
        m = metric_name(name, prefix) + "_seconds"
        s = rec.summary()
        lines.append(f"# TYPE {m} summary")
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"), (0.999, "p999")):
            lines.append(f'{m}{{quantile="{q}"}} {_fmt(s[key])}')
        lines.append(f"{m}_sum {_fmt(s['mean'] * s['count'])}")
        lines.append(f"{m}_count {s['count']}")
        if rec.spilled:
            h = rec.histogram()
            hb = m + "_hist"
            lines.append(f"# TYPE {hb} histogram")
            for upper, cum in h.cumulative_buckets():
                lines.append(f'{hb}_bucket{{le="{_fmt(upper)}"}} {cum}')
            lines.append(f'{hb}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{hb}_sum {_fmt(h.sum)}")
            lines.append(f"{hb}_count {h.count}")

    if breakdown is not None:
        m = metric_name("trace_stage_self_seconds_total", prefix)
        lines.append(f"# TYPE {m} counter")
        for stage, total, _share in breakdown.shares():
            lines.append(
                f'{m}{{stage="{escape_label_value(stage)}"}} {_fmt(total)}')

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def to_json_dict(
    monitor: Optional["Monitor"] = None,
    breakdown: Optional["LatencyBreakdown"] = None,
    **extra: object,
) -> dict:
    """Assemble the JSON export document (pure dict; see :func:`to_json`)."""
    doc: dict = {"format": "repro-metrics-v1"}
    if monitor is not None:
        doc["monitor"] = monitor_to_dict(monitor)
    if breakdown is not None:
        doc["breakdown"] = breakdown.to_dict()
    doc.update(extra)
    return doc


def to_json(
    monitor: Optional["Monitor"] = None,
    breakdown: Optional["LatencyBreakdown"] = None,
    indent: int = 2,
    **extra: object,
) -> str:
    """JSON text for the same document as :func:`to_json_dict`."""
    return json.dumps(to_json_dict(monitor, breakdown, **extra),
                      indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Round-trip parsing (tests, tooling)
# ---------------------------------------------------------------------------

# Label values are quoted strings with backslash escapes, so a `}` or `"`
# *inside* a value must not end the label set — match quote-aware instead
# of the naive `[^}]*`.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?\s*)*)\})?'
    r"\s+(?P<value>\S+)\s*$"
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus(text: str) -> Dict[Tuple[str, str], float]:
    """Parse exposition text into ``{(metric_name, labels): value}``.

    ``labels`` is the raw label string (``""`` when absent) so tests can
    match exact series like ``('repro_lat_seconds', 'quantile="0.99"')``.
    """
    out: Dict[Tuple[str, str], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        out[(m.group("name"), m.group("labels") or "")] = _parse_value(
            m.group("value"))
    return out
