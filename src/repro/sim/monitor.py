"""Lightweight instrumentation for simulation runs.

Benchmarks need throughput/IOPS/latency summaries without perturbing the
event loop.  Everything here is plain accumulation; percentile math is
vectorized with NumPy only at report time, as the optimization guides
recommend (measure first, never in the hot loop).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.sim.core import Environment

__all__ = ["Counter", "Gauge", "RateMeter", "LatencyRecorder", "Monitor"]


class Counter:
    """A monotonically increasing event/byte counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount``."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A time-weighted level (queue depth, buffer occupancy).

    :meth:`set` records the new level; :meth:`mean` integrates the level
    over time; :meth:`max` is the resettable high-watermark used for
    staged-buffer peak tracking (no ad-hoc peak fields elsewhere).
    """

    __slots__ = ("name", "env", "_level", "_t0", "_last_t", "_area", "_max")

    def __init__(self, env: Environment, name: str, initial: float = 0.0) -> None:
        self.env = env
        self.name = name
        self._level = float(initial)
        #: Creation time — the start of the integration window.
        self._t0 = env.now
        self._last_t = env.now
        self._area = 0.0
        self._max = float(initial)

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    @property
    def peak(self) -> float:
        """Maximum level observed (alias of :meth:`max`)."""
        return self._max

    def set(self, level: float) -> None:
        """Record a new level at the current simulated time."""
        now = self.env.now
        self._area += self._level * (now - self._last_t)
        self._last_t = now
        self._level = float(level)
        if level > self._max:
            self._max = float(level)

    def add(self, delta: float) -> None:
        """Adjust the level by ``delta``."""
        self.set(self._level + delta)

    def max(self) -> float:
        """High-watermark: the largest level seen since the last reset."""
        return self._max

    def reset_max(self) -> float:
        """Restart watermark tracking from the current level; returns the old."""
        old = self._max
        self._max = self._level
        return old

    def mean(self, since: Optional[float] = None) -> float:
        """Time-weighted mean level over ``[since, now]``.

        ``since`` defaults to the gauge's creation time (integration never
        covers time the gauge did not exist; earlier values are clamped,
        and values after creation shorten the divisor but keep the full
        accumulated area — use :class:`~repro.sim.timeseries.TimeSeries`
        for true windowed means).  A zero-elapsed window is well-defined:
        it returns the current level — the only value the gauge has held
        "so far".
        """
        now = self.env.now
        t0 = self._t0 if since is None else max(since, self._t0)
        span = now - t0
        if span <= 0:
            return self._level
        area = self._area + self._level * (now - self._last_t)
        return area / span


class RateMeter:
    """Counts operations and bytes over a measurement window.

    :meth:`reset` marks the window start (used to drop warm-up);
    :meth:`ops_per_sec` / :meth:`bytes_per_sec` report steady-state rates.
    """

    __slots__ = ("env", "name", "ops", "bytes", "_t0")

    def __init__(self, env: Environment, name: str) -> None:
        self.env = env
        self.name = name
        self.ops = 0
        self.bytes = 0
        self._t0 = env.now

    @property
    def window_start(self) -> float:
        return self._t0

    def record(self, nbytes: int = 0) -> None:
        """Record one completed operation of ``nbytes``."""
        self.ops += 1
        self.bytes += nbytes

    def reset(self) -> None:
        """Restart the measurement window at the current time."""
        self.ops = 0
        self.bytes = 0
        self._t0 = self.env.now

    def elapsed(self) -> float:
        """Length of the current window."""
        return self.env.now - self._t0

    def ops_per_sec(self) -> float:
        """Operations per second over the window."""
        dt = self.elapsed()
        return self.ops / dt if dt > 0 else 0.0

    def bytes_per_sec(self) -> float:
        """Payload bytes per second over the window."""
        dt = self.elapsed()
        return self.bytes / dt if dt > 0 else 0.0


class LatencyRecorder:
    """Accumulates per-operation latencies; summarizes at the end.

    Short runs keep exact samples (NumPy percentiles at report time, as
    before).  Past ``spill_threshold`` samples the recorder folds everything
    into a bounded :class:`~repro.sim.hist.LogHistogram` and keeps streaming
    into it, so memory stays O(buckets) for arbitrarily long runs while
    percentiles stay within the histogram's ~2% relative bucket error.
    """

    __slots__ = ("name", "_samples", "enabled", "spill_threshold", "_hist")

    #: Default sample count at which exact storage spills to the histogram.
    SPILL_THRESHOLD = 65_536

    def __init__(self, name: str, enabled: bool = True,
                 spill_threshold: int = SPILL_THRESHOLD) -> None:
        if spill_threshold < 1:
            raise ValueError(f"spill_threshold must be >= 1, got {spill_threshold}")
        self.name = name
        self._samples: List[float] = []
        #: When False, :meth:`record` is a no-op (cheap to leave in place).
        self.enabled = enabled
        self.spill_threshold = spill_threshold
        self._hist = None  # type: ignore[var-annotated]

    def __len__(self) -> int:
        if self._hist is not None:
            return self._hist.count
        return len(self._samples)

    @property
    def spilled(self) -> bool:
        """True once samples have been folded into the streaming histogram."""
        return self._hist is not None

    def _spill(self) -> None:
        from repro.sim.hist import LogHistogram

        hist = LogHistogram()
        hist.record_many(self._samples)
        self._samples = []
        self._hist = hist

    def record(self, latency: float) -> None:
        """Record one latency sample in seconds."""
        if not self.enabled:
            return
        if self._hist is not None:
            self._hist.record(latency)
            return
        self._samples.append(latency)
        if len(self._samples) >= self.spill_threshold:
            self._spill()

    def clear(self) -> None:
        """Drop all samples (e.g. at the end of warm-up)."""
        self._samples.clear()
        self._hist = None

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other``'s distribution into this recorder; returns self.

        The merge is **exact in counts**: while both sides hold raw
        samples the lists concatenate (identical to having recorded every
        sample into one recorder); once either side has spilled, counts
        are added bucket-by-bucket into this recorder's log histogram —
        same bucket geometry, no re-sampling.  ``other`` is not modified.
        """
        if self._hist is None and other._hist is None:
            self._samples.extend(other._samples)
            if len(self._samples) >= self.spill_threshold:
                self._spill()
            return self
        if self._hist is None:
            self._spill()
        if other._hist is not None:
            self._hist.merge(other._hist)
        elif other._samples:
            self._hist.record_many(other._samples)
        return self

    def histogram(self):
        """The streaming histogram view (spilling exact samples if needed)."""
        if self._hist is None:
            self._spill()
        return self._hist

    def summary(self) -> Dict[str, float]:
        """Return count/mean/p50/p95/p99/p999/max in seconds (zeros if empty)."""
        if self._hist is not None:
            h = self._hist
            return {
                "count": h.count,
                "mean": h.mean,
                "p50": h.percentile(50),
                "p95": h.percentile(95),
                "p99": h.percentile(99),
                "p999": h.percentile(99.9),
                "max": h.max if h.count else 0.0,
            }
        if not self._samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "p999": 0.0, "max": 0.0}
        arr = np.asarray(self._samples, dtype=np.float64)
        p50, p95, p99, p999 = np.percentile(arr, (50, 95, 99, 99.9))
        return {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "p999": float(p999),
            "max": float(arr.max()),
        }


class Monitor:
    """A named registry of instruments for one simulation run."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.rates: Dict[str, RateMeter] = {}
        self.latencies: Dict[str, LatencyRecorder] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        """Get or create the gauge ``name``."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(self.env, name, initial)
        return g

    def rate(self, name: str) -> RateMeter:
        """Get or create the rate meter ``name``."""
        r = self.rates.get(name)
        if r is None:
            r = self.rates[name] = RateMeter(self.env, name)
        return r

    def latency(self, name: str, enabled: bool = True) -> LatencyRecorder:
        """Get or create the latency recorder ``name``."""
        rec = self.latencies.get(name)
        if rec is None:
            rec = self.latencies[name] = LatencyRecorder(name, enabled)
        return rec

    def reset_rates(self) -> None:
        """Restart every rate meter's window (end of warm-up)."""
        for r in self.rates.values():
            r.reset()
        for rec in self.latencies.values():
            rec.clear()
