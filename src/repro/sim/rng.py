"""Deterministic, named random-number streams.

Every stochastic element of the simulation (offset patterns, jitter,
arrival processes) pulls from its own named stream derived from a single
root seed, so results are reproducible regardless of the order in which
components initialize — the standard trick for parallel/HPC Monte-Carlo
codes.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "seed_from_key"]


def seed_from_key(key: str, salt: int = 0) -> int:
    """A stable 32-bit seed derived from a string key.

    The campaign executor seeds each cell from its *cell key* (config
    slug + config hash), so a cell's random streams are a pure function
    of its configuration — identical whether the cell runs serially, on
    worker 3 of 8, or in a different campaign entirely.
    """
    digest = hashlib.sha256(f"{salt}:{key}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; the same ``(root_seed, name)`` pair always
    produces an identical stream.
    """

    def __init__(self, root_seed: int = 0xDA05) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(self.root_seed, spawn_key=self._key(name))
            gen = self._streams[name] = np.random.default_rng(seq)
        return gen

    @staticmethod
    def _key(name: str) -> tuple:
        # Stable mapping of a stream name to a SeedSequence spawn key.
        return tuple(name.encode("utf-8"))

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family of streams (per-run seeding)."""
        return RngStreams(self.root_seed ^ (salt * 0x9E3779B1 & 0xFFFFFFFF))
