"""The differential doctor: explain *why* run B beats (or loses to) run A.

:mod:`repro.sim.doctor` diagnoses one run; this module diagnoses the
*difference* between two ledger records (:mod:`repro.bench.ledger`).
Every headline claim in the paper is a comparison — DPU-offloaded DFS
vs host client, RDMA vs TCP — and the interesting question is never
"what is the bottleneck" but "where did the milliseconds go".

The decomposition works on per-request means over the sampled spans.
With :math:`m = \\text{total root time}/\\text{traces}` and the wait
tracer's per-resource blame :math:`B(r)` normalised the same way, each
run satisfies :math:`m = \\sum_r B(r) + u` where :math:`u` is the
unattributed remainder (time in stages that touched no traced
resource).  Subtracting the two runs gives the exact identity

.. math:: \\Delta m = \\sum_r \\Delta B(r) + \\Delta u

so the per-resource attributed deltas — each further split into a
*wait* (queueing) part and a *service* (occupancy + access latency)
part — sum to the observed end-to-end delta **by construction**, and
the ``checks.attribution`` cross-check only fails when instrumentation
drifted (dropped records, mismatched sampling).  Contributors are
ranked by ``(|delta| desc, name asc)`` — the same deterministic
tie-break the single-run doctor uses — so reports are byte-stable.

Output is the ``repro-diff-v1`` JSON document plus a rendered verdict,
e.g.::

    rdma vs tcp: mean sampled latency -0.65 ms/req (-51%);
    top contributor: dpu.arm_rx -1.07 ms/req (wait)
"""

from __future__ import annotations

from math import fsum

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["UNATTRIBUTED", "DiffDiagnosis", "diff_runs", "diff_flames"]

#: Pseudo-resource for the per-request time no traced resource explains.
UNATTRIBUTED = "(unattributed)"

#: Relative tolerance for the attribution identity check.
DEFAULT_TOLERANCE = 0.01

#: Latency-delta floor (seconds): below this the two runs are considered
#: equal and the relative attribution error is measured against the floor
#: instead of dividing by ~0.
_DELTA_FLOOR = 1e-12


def _per_request_blame(record: dict) -> Tuple[Dict[str, Dict[str, float]], float]:
    """Per-request blame components and the unattributed remainder."""
    traces = record.get("traces", {})
    n = max(1, int(traces.get("count", 0)))
    mean = float(traces.get("mean_latency", 0.0))
    rows: Dict[str, Dict[str, float]] = {}
    attributed = 0.0
    for name, comp in record.get("blame", {}).items():
        total = float(comp.get("total", 0.0)) / n
        wait = float(comp.get("wait", 0.0)) / n
        service = (float(comp.get("service", 0.0))
                   + float(comp.get("latency", 0.0))) / n
        rows[name] = {"total": total, "wait": wait, "service": service}
        attributed += total
    return rows, mean - attributed


def _observed_metric(record: dict, key: str) -> Optional[float]:
    value = record.get("metrics", {}).get(key)
    return float(value) if value is not None else None


def _metric_delta(base: dict, cur: dict, key: str) -> Optional[dict]:
    a, b = _observed_metric(base, key), _observed_metric(cur, key)
    if a is None or b is None:
        return None
    rel = (b - a) / abs(a) if a else 0.0
    return {"base": a, "current": b, "delta": b - a, "rel": rel}


@dataclass(slots=True)
class DiffDiagnosis:
    """The differential doctor's full output (``repro-diff-v1``)."""

    label: str
    base: dict
    current: dict
    config_delta: Dict[str, list]
    observed: dict
    contributors: List[dict]
    checks: dict
    verdict: str = ""
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Instrumentation health gate: every cross-check must pass."""
        return all(bool(c.get("ok", True)) for c in self.checks.values())

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    @property
    def top_contributor(self) -> Optional[dict]:
        return self.contributors[0] if self.contributors else None

    def to_dict(self) -> dict:
        return {
            "format": "repro-diff-v1",
            "label": self.label,
            "verdict": self.verdict,
            "ok": self.ok,
            "base": self.base,
            "current": self.current,
            "config_delta": self.config_delta,
            "observed": self.observed,
            "contributors": self.contributors,
            "checks": self.checks,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """The human-readable differential report."""
        from repro.bench.report import Table

        out: List[str] = [f"diff-doctor: {self.label}",
                          f"verdict: {self.verdict}"]
        for key, (a, b) in sorted(self.config_delta.items()):
            out.append(f"config {key}: {a!r} -> {b!r}")
        lat = self.observed.get("latency", {})
        if lat:
            out.append(
                f"sampled mean latency: {lat['base'] * 1e6:.1f} us -> "
                f"{lat['current'] * 1e6:.1f} us "
                f"({lat['delta'] * 1e6:+.1f} us, {lat['rel'] * 100:+.1f}%)")
        iops = self.observed.get("iops")
        if iops:
            out.append(f"iops: {iops['base']:,.0f} -> {iops['current']:,.0f} "
                       f"({iops['rel'] * 100:+.1f}%)")
        t = Table("Attributed latency delta (per request)",
                  ["base us", "cur us", "delta us", "wait", "service",
                   "share"], row_header="resource")
        for row in self.contributors[:12]:
            t.add_row(row["resource"], [
                f"{row['base'] * 1e6:10.3f}",
                f"{row['current'] * 1e6:10.3f}",
                f"{row['delta'] * 1e6:+10.3f}",
                f"{row['delta_wait'] * 1e6:+10.3f}",
                f"{row['delta_service'] * 1e6:+10.3f}",
                f"{row['share'] * 100:+7.1f}%",
            ])
        out.append(t.render())
        att = self.checks.get("attribution", {})
        if att:
            status = "ok" if att.get("ok") else "FAILED"
            out.append(
                f"attribution check {status}: attributed "
                f"{att['sum_attributed'] * 1e6:+.3f} us of observed "
                f"{att['observed_delta'] * 1e6:+.3f} us "
                f"(rel err {att['rel_err'] * 100:.3f}%, "
                f"tolerance {att['tolerance'] * 100:.0f}%)")
        for name, check in sorted(self.checks.items()):
            if name.startswith("consistency_") and not check.get("ok", True):
                out.append(
                    f"consistency check FAILED ({name.split('_', 1)[1]}): "
                    f"stored mean {check['mean_latency'] * 1e6:.3f} us vs "
                    f"implied {check['implied_mean'] * 1e6:.3f} us")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def diff_runs(
    base: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    label: str = "",
) -> DiffDiagnosis:
    """Decompose the end-to-end delta between two ledger records.

    ``base`` and ``current`` are ``repro-run-v1`` dicts (see
    :mod:`repro.bench.ledger`); the delta reads as "what changed going
    *from base to current*".
    """
    base_rows, base_unattr = _per_request_blame(base)
    cur_rows, cur_unattr = _per_request_blame(current)

    ma = float(base.get("traces", {}).get("mean_latency", 0.0))
    mb = float(current.get("traces", {}).get("mean_latency", 0.0))
    observed_delta = mb - ma

    contributors: List[dict] = []
    for name in base_rows.keys() | cur_rows.keys():
        a = base_rows.get(name, {"total": 0.0, "wait": 0.0, "service": 0.0})
        b = cur_rows.get(name, {"total": 0.0, "wait": 0.0, "service": 0.0})
        contributors.append({
            "resource": name,
            "base": a["total"],
            "current": b["total"],
            "delta": b["total"] - a["total"],
            "delta_wait": b["wait"] - a["wait"],
            "delta_service": b["service"] - a["service"],
        })
    delta_unattr = cur_unattr - base_unattr
    contributors.append({
        "resource": UNATTRIBUTED,
        "base": base_unattr,
        "current": cur_unattr,
        "delta": delta_unattr,
        "delta_wait": 0.0,
        "delta_service": delta_unattr,
    })
    scale = max(abs(observed_delta), _DELTA_FLOOR)
    for row in contributors:
        row["share"] = row["delta"] / scale if observed_delta else 0.0
    contributors.sort(key=lambda r: (-abs(r["delta"]), r["resource"]))

    sum_attributed = fsum(r["delta"] for r in contributors)
    abs_err = abs(sum_attributed - observed_delta)
    # The error scale must reflect what was summed: when the observed
    # delta is ~0 but the cancelling per-resource deltas are large, the
    # identity's float roundoff is proportional to their magnitude, not
    # to the near-zero delta — without this, two equal runs over big
    # blame totals can "fail" on ~1e-14 of cancellation noise.
    magnitude = fsum(abs(r["delta"]) for r in contributors)
    rel_err = abs_err / max(scale, 1e-9 * magnitude)
    checks = {
        "attribution": {
            "sum_attributed": sum_attributed,
            "observed_delta": observed_delta,
            "abs_err": abs_err,
            "rel_err": rel_err,
            "tolerance": tolerance,
            "ok": rel_err <= tolerance,
        },
    }
    # The sum identity is exact by construction, so on top of it each
    # record must be *internally* consistent: the stored per-request mean
    # has to match total_root_time / count.  Dropped span records or a
    # tampered ledger file show up here, not in the sum.
    for side, record in (("base", base), ("current", current)):
        traces = record.get("traces", {})
        total = traces.get("total_root_time")
        if total is None:
            continue
        n = max(1, int(traces.get("count", 0)))
        implied = float(total) / n
        mean = float(traces.get("mean_latency", 0.0))
        err = abs(mean - implied) / max(abs(implied), _DELTA_FLOOR)
        checks[f"consistency_{side}"] = {
            "mean_latency": mean,
            "implied_mean": implied,
            "rel_err": err,
            "tolerance": tolerance,
            "ok": err <= tolerance,
        }

    config_a = base.get("config", {})
    config_b = current.get("config", {})
    config_delta = {
        k: [config_a.get(k), config_b.get(k)]
        for k in sorted(set(config_a) | set(config_b))
        if config_a.get(k) != config_b.get(k)
    }

    observed = {
        "latency": {"base": ma, "current": mb, "delta": observed_delta,
                    "rel": observed_delta / ma if ma else 0.0},
    }
    for key, short in (("result.iops", "iops"),
                       ("result.bandwidth", "bandwidth"),
                       ("result.latency.p50", "p50"),
                       ("result.latency.p99", "p99")):
        d = _metric_delta(base, current, key)
        if d is not None:
            observed[short] = d

    notes: List[str] = []
    if base_unattr < 0 or cur_unattr < 0:
        notes.append("negative (unattributed): summed blame exceeds root "
                     "wall-clock because sub-operations overlap (pipelined "
                     "fan-out); the delta identity still holds exactly")
    if not base_rows and not cur_rows:
        notes.append("neither run carries blame data; delta is all "
                     "unattributed")
    if base.get("traces", {}).get("sample_every") != \
            current.get("traces", {}).get("sample_every"):
        notes.append("runs used different span sampling rates; per-request "
                     "means still comparable, absolute blame totals are not")

    top = next((r for r in contributors if r["resource"] != UNATTRIBUTED),
               None)
    # Name each side by the identity knobs that actually differ, so the
    # verdict reads "rdma vs tcp" for a transport sweep but "dpu vs host"
    # for a client sweep on the same transport.
    id_keys = [k for k in ("transport", "client", "rw", "bs", "numjobs")
               if k in config_delta]
    if id_keys:
        name_a = "/".join(str(config_a.get(k)) for k in id_keys)
        name_b = "/".join(str(config_b.get(k)) for k in id_keys)
    else:
        name_a = base.get("run_id", "A")
        name_b = current.get("run_id", "B")
    if abs(observed_delta) <= _DELTA_FLOOR:
        verdict = f"{name_b} vs {name_a}: runs are equivalent (no delta)"
    elif top is None:
        verdict = (f"{name_b} vs {name_a}: "
                   f"{observed_delta * 1e6:+.1f} us/req, unattributed")
    else:
        kind = ("wait" if abs(top["delta_wait"]) >= abs(top["delta_service"])
                else "service")
        verdict = (
            f"{name_b} vs {name_a}: mean sampled latency "
            f"{observed_delta * 1e6:+.1f} us/req "
            f"({observed['latency']['rel'] * 100:+.0f}%); "
            f"top contributor: {top['resource']} "
            f"{top['delta'] * 1e6:+.1f} us/req ({kind})")
    if not all(c["ok"] for c in checks.values()):
        verdict += " [attribution check FAILED]"

    return DiffDiagnosis(
        label=label or f"{current.get('run_id', 'B')} vs "
                       f"{base.get('run_id', 'A')}",
        base={"run_id": base.get("run_id"), "label": base.get("label"),
              "config": config_a},
        current={"run_id": current.get("run_id"),
                 "label": current.get("label"), "config": config_b},
        config_delta=config_delta,
        observed=observed,
        contributors=contributors,
        checks=checks,
        verdict=verdict,
        notes=notes,
    )


def write_overlay_trace(path: str, base: dict, current: dict,
                        label: str = "overlay") -> dict:
    """One Chrome trace with *both* runs' wait counter tracks.

    Each run's per-resource cumulative-wait series land on a process
    track prefixed ``A:``/``B:`` (plus the run's transport for
    readability), so Perfetto shows the two runs' counters side by side
    on a shared time axis.  Records without stored ``wait_series`` —
    ledgers written with series disabled — contribute no tracks.
    """
    from repro.bench.ledger import series_from_record
    from repro.sim.chrometrace import write_chrome_trace

    def tag(prefix: str, record: dict) -> str:
        name = (record.get("config", {}).get("transport")
                or record.get("run_id") or prefix)
        return f"{prefix}:{name}"

    series = (series_from_record(base, node=tag("A", base))
              + series_from_record(current, node=tag("B", current)))
    return write_chrome_trace(path, extra_series=series, label=label)


def diff_flames(base: dict, current: dict) -> Dict[str, Dict[str, tuple]]:
    """Differential folded stacks between two ledger records.

    Returns ``{"spans": diff, "waits": diff}`` — each a
    :func:`repro.sim.flame.diff_folded` result over the records' stored
    collapsed stacks, ready for :func:`~repro.sim.flame.write_diff_collapsed`.
    """
    from repro.sim.flame import diff_folded

    out: Dict[str, Dict[str, tuple]] = {}
    for view in ("spans", "waits"):
        a = base.get("flame", {}).get(view, {})
        b = current.get("flame", {}).get(view, {})
        out[view] = diff_folded(a, b)
    return out
