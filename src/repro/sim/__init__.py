"""Discrete-event simulation kernel.

A small, fast, SimPy-flavoured DES written from scratch (SimPy is not a
dependency of this project).  It provides:

* :class:`~repro.sim.core.Environment` — the event loop and virtual clock.
* :class:`~repro.sim.core.Event`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.Process` — the primitive coordination objects.
* :mod:`repro.sim.resources` — capacity-limited resources, stores and
  containers used to model CPUs, device queues and links.
* :mod:`repro.sim.queues` — serializers and bandwidth pipes used by the
  hardware models.
* :mod:`repro.sim.monitor` — lightweight instrumentation (counters,
  time-weighted gauges, latency recorders).
* :mod:`repro.sim.spans` — request-scoped distributed tracing (spans,
  latency breakdowns, critical paths).
* :mod:`repro.sim.hist` — bounded-memory log-bucketed latency histograms.
* :mod:`repro.sim.export` — Prometheus-text and JSON metric exporters.
* :mod:`repro.sim.timeseries` — the continuous telemetry bus (probes,
  bounded downsampling ring buffers, Little's-law self-check).
* :mod:`repro.sim.chrometrace` — Chrome trace-event / Perfetto export.
* :mod:`repro.sim.waits` — wait-cause attribution: why each process was
  blocked, per-resource, tagged with the active span.
* :mod:`repro.sim.flame` — sim-time and wait-time collapsed-stack
  flamegraphs (speedscope / flamegraph.pl).
* :mod:`repro.sim.doctor` — the automated bottleneck doctor: blame
  ranking, utilization/Little's-law cross-checks, SLO gates.

Time is a ``float`` in **seconds**.  All hardware models in
:mod:`repro.hw` build directly on these primitives.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.hist import LogHistogram
from repro.sim.monitor import Counter, Gauge, LatencyRecorder, Monitor, RateMeter
from repro.sim.queues import BandwidthPipe, FifoServer
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RngStreams, seed_from_key
from repro.sim.spans import (
    LatencyBreakdown,
    Span,
    SpanCollector,
    Trace,
    critical_path,
)
from repro.sim.doctor import Diagnosis, SloRule, diagnose, parse_slo
from repro.sim.flame import fold_spans, fold_waits, render_collapsed
from repro.sim.timeseries import Probe, Sampler, StationStats, TimeSeries
from repro.sim.trace import Tracer, TraceRecord
from repro.sim.waits import WaitRecord, WaitTracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthPipe",
    "Container",
    "Counter",
    "Diagnosis",
    "Environment",
    "Event",
    "FifoServer",
    "Gauge",
    "Interrupt",
    "LatencyBreakdown",
    "LatencyRecorder",
    "LogHistogram",
    "Monitor",
    "PriorityResource",
    "Probe",
    "Process",
    "RateMeter",
    "Resource",
    "RngStreams",
    "seed_from_key",
    "Sampler",
    "SimulationError",
    "SloRule",
    "Span",
    "SpanCollector",
    "StationStats",
    "Store",
    "TimeSeries",
    "Timeout",
    "Trace",
    "TraceRecord",
    "Tracer",
    "WaitRecord",
    "WaitTracer",
    "critical_path",
    "diagnose",
    "fold_spans",
    "fold_waits",
    "parse_slo",
    "render_collapsed",
]
