"""The bottleneck doctor: automated queueing-theory diagnosis of a run.

PRs 1-2 built the instruments (spans, latency breakdown, time-series);
the wait tracer added causes.  This module turns all of it into the
machine-generated answer a human used to read off the tables:

* **Blame ranking** — resources ordered by their share of sampled
  request time (:meth:`~repro.sim.waits.WaitTracer.blame`), ties broken
  by name so reports are byte-stable across runs.
* **Utilization-law cross-check** — for every registered station,
  measured utilization ``busy_time / (elapsed * capacity)`` must equal
  the law's ``X · D`` computed from the tracer's independently-recorded
  per-operation service demand (U = throughput x service time; see
  DESIGN.md §10).  A violation means instrumentation drift, not a slow
  run — it gates the *observability* stack, so CI catches a hook that
  stops reporting.
* **Little's-law check** — queue growth vs ``L = λW`` from the sampler's
  station series (when a sampler was attached).
* **p99 critical path** — the chain of spans that determined the p99
  request's latency, with each hop's blamed resources.
* **SLO gates** — ``p99<=500us``-style rules evaluated against the run's
  measured metrics; violations flip the exit code for CI.

The output is the ``repro-doctor-v1`` JSON document plus a rendered
human verdict, e.g.::

    bottleneck: dpu.arm_rx, 88% of 4KiB randread p99, next: nvme.ssd0 at 6%
"""

from __future__ import annotations

import re
from math import fsum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.spans import SpanCollector, critical_path
from repro.sim.waits import WaitTracer

__all__ = [
    "SloRule",
    "parse_slo",
    "Station",
    "Diagnosis",
    "diagnose",
    "blame_ranking",
]


# ---------------------------------------------------------------------------
# SLO rules
# ---------------------------------------------------------------------------

#: Metrics an SLO rule may target.  Latency metrics read from
#: ``result.latency`` (seconds); throughput metrics from the result itself.
_LATENCY_METRICS = ("p50", "p95", "p99", "p999", "mean", "max")
_THROUGHPUT_METRICS = ("iops", "kiops", "bandwidth", "bandwidth_gib")

_SLO_RE = re.compile(
    r"^\s*(?P<metric>[a-z_0-9]+)\s*(?P<op><=|>=|<|>)\s*"
    r"(?P<value>[0-9.eE+-]+)\s*(?P<unit>us|ms|s)?\s*$"
)

_UNIT_SCALE = {None: 1.0, "s": 1.0, "ms": 1e-3, "us": 1e-6}


@dataclass(frozen=True, slots=True)
class SloRule:
    """One parsed SLO gate, e.g. ``p99 <= 500us``."""

    metric: str
    op: str
    threshold: float  # latency thresholds normalized to seconds
    raw: str

    def check(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.threshold
        if self.op == "<":
            return value < self.threshold
        if self.op == ">=":
            return value >= self.threshold
        return value > self.threshold


def parse_slo(text: str) -> SloRule:
    """Parse ``metric(<=|<|>=|>)value[unit]`` (unit only for latency)."""
    m = _SLO_RE.match(text)
    if not m:
        raise ValueError(
            f"bad SLO {text!r}; expected e.g. 'p99<=500us' or 'iops>=100000'")
    metric, op, unit = m.group("metric"), m.group("op"), m.group("unit")
    value = float(m.group("value"))
    if metric in _LATENCY_METRICS:
        value *= _UNIT_SCALE[unit]
    elif metric in _THROUGHPUT_METRICS:
        if unit:
            raise ValueError(f"unit {unit!r} is invalid for {metric} in {text!r}")
    else:
        known = ", ".join(sorted(_LATENCY_METRICS + _THROUGHPUT_METRICS))
        raise ValueError(f"unknown SLO metric {metric!r} (known: {known})")
    return SloRule(metric=metric, op=op, threshold=value, raw=text.strip())


# ---------------------------------------------------------------------------
# Stations (for the utilization-law check)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Station:
    """One service station's independently-measured occupancy.

    ``busy_time`` comes from the server's own accounting; ``capacity``
    is its number of parallel servers.  The doctor compares
    ``busy_time/(elapsed*capacity)`` against the utilization law's
    ``X·D`` built from the wait tracer's per-operation records.
    """

    name: str
    busy_time: float
    capacity: int = 1


# ---------------------------------------------------------------------------
# Diagnosis
# ---------------------------------------------------------------------------

def blame_ranking(tracer: WaitTracer, total_root_time: float) -> List[dict]:
    """``[{resource, seconds, share}]`` sorted by ``(share desc, name asc)``.

    The deterministic tie-break keeps reports byte-stable across runs
    even when two resources end up with identical blame.
    """
    total = total_root_time or 1.0
    rows = [
        {"resource": name, "seconds": secs, "share": secs / total}
        for name, secs in tracer.blame().items()
    ]
    rows.sort(key=lambda r: (-r["share"], r["resource"]))
    return rows


def _human_bs(bs: int) -> str:
    if bs >= 1 << 20 and bs % (1 << 20) == 0:
        return f"{bs >> 20}MiB"
    if bs >= 1 << 10 and bs % (1 << 10) == 0:
        return f"{bs >> 10}KiB"
    return f"{bs}B"


def _p99_root(collector: SpanCollector):
    """The root span at the p99 boundary of the sampled latency order."""
    roots = sorted(collector.roots(), key=lambda s: s.duration)
    if not roots:
        return None
    idx = min(len(roots) - 1, max(0, int(0.99 * len(roots) + 0.5) - 1))
    return roots[idx]


@dataclass(slots=True)
class Diagnosis:
    """The doctor's full output; ``to_dict`` is the repro-doctor-v1 record."""

    label: str
    workload: dict
    throughput: dict
    latency: dict
    blame: List[dict]
    p99: dict
    checks: dict
    slo: dict
    wait_records: dict
    verdict: str = ""
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """SLO verdict only (law-check failures are reported, not fatal)."""
        return bool(self.slo.get("ok", True))

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    @property
    def bottleneck(self) -> Optional[str]:
        return self.blame[0]["resource"] if self.blame else None

    def to_dict(self) -> dict:
        return {
            "format": "repro-doctor-v1",
            "label": self.label,
            "verdict": self.verdict,
            "ok": self.ok,
            "workload": self.workload,
            "throughput": self.throughput,
            "latency": self.latency,
            "blame": self.blame,
            "p99": self.p99,
            "checks": self.checks,
            "slo": self.slo,
            "wait_records": self.wait_records,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """The human-readable doctor report."""
        from repro.bench.report import Table

        out: List[str] = [f"doctor: {self.label}", f"verdict: {self.verdict}"]
        t = Table("Blame (share of sampled request time)",
                  ["seconds", "share"], row_header="resource")
        for row in self.blame[:10]:
            t.add_row(row["resource"],
                      [f"{row['seconds']:.6f}", f"{row['share'] * 100:6.2f}%"])
        out.append(t.render())
        if self.p99.get("critical_path"):
            hops = " -> ".join(self.p99["critical_path"])
            out.append(f"p99 critical path ({self.p99['latency'] * 1e6:.1f} us): {hops}")
        cu = self.checks.get("utilization_law", [])
        n_bad = sum(1 for c in cu if not c["ok"])
        out.append(f"utilization law: {len(cu) - n_bad}/{len(cu)} stations consistent")
        cl = self.checks.get("littles_law", [])
        if cl:
            n_bad_l = sum(1 for c in cl if c.get("checked") and not c["ok"])
            out.append(f"little's law: {len(cl) - n_bad_l}/{len(cl)} stations consistent")
        for rule in self.slo.get("rules", []):
            status = "PASS" if rule["ok"] else "FAIL"
            out.append(f"slo {status}: {rule['raw']} (measured {rule['measured']:.6g})")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def diagnose(
    result,
    collector: SpanCollector,
    tracer: WaitTracer,
    stations: Sequence[Station] = (),
    littles_rows: Optional[Dict[str, dict]] = None,
    slos: Iterable[str] = (),
    label: str = "",
    elapsed: Optional[float] = None,
    utilization_tolerance: float = 0.01,
) -> Diagnosis:
    """Cross-check a finished run and rank its bottlenecks.

    ``result`` is a :class:`~repro.workload.fio.FioResult`; ``stations``
    carry each server's own ``busy_time``; ``littles_rows`` is the output
    of :meth:`~repro.sim.timeseries.Sampler.littles_law` when a sampler
    observed the run.  ``elapsed`` is the wall of simulated time covered
    by both the tracer aggregates and the station busy counters (defaults
    to ``tracer.env.now - tracer.t_installed``).
    """
    spec = result.spec
    roots = collector.roots()
    total_root = fsum(s.duration for s in roots)

    # -- blame ranking ------------------------------------------------------
    blame = blame_ranking(tracer, total_root)
    top = blame[0] if blame else None
    nxt = blame[1] if len(blame) > 1 else None

    # -- p99 critical path --------------------------------------------------
    p99_root = _p99_root(collector)
    p99: dict = {}
    if p99_root is not None:
        trace_spans = [s for s in collector.spans
                       if s.trace_id == p99_root.trace_id]
        path = critical_path(trace_spans)
        span_waits = tracer.span_waits()
        hop_blame: Dict[str, float] = {}
        for s in path:
            for res, secs in span_waits.get(s.span_id, {}).items():
                hop_blame[res] = hop_blame.get(res, 0.0) + secs
        p99 = {
            "latency": p99_root.duration,
            "trace_id": p99_root.trace_id,
            "critical_path": [s.stage for s in path],
            "blame": [
                {"resource": k, "seconds": v}
                for k, v in sorted(hop_blame.items(),
                                   key=lambda kv: (-kv[1], kv[0]))
            ],
        }

    # -- utilization law ----------------------------------------------------
    if elapsed is None:
        elapsed = tracer.env.now - (tracer.t_installed or 0.0)
    util_rows: List[dict] = []
    for st in stations:
        agg = tracer.aggregates.get(st.name)
        service = agg.service if agg is not None else 0.0
        denom = elapsed * max(1, st.capacity)
        u_measured = st.busy_time / denom if denom > 0 else 0.0
        u_law = service / denom if denom > 0 else 0.0
        scale = max(u_measured, u_law, 1e-12)
        rel_err = abs(u_measured - u_law) / scale
        util_rows.append({
            "station": st.name,
            "capacity": st.capacity,
            "utilization": u_measured,
            "x_times_d": u_law,
            "ops": agg.count if agg is not None else 0,
            "rel_err": rel_err,
            "ok": rel_err <= utilization_tolerance,
        })
    util_rows.sort(key=lambda r: (-r["utilization"], r["station"]))

    little_rows: List[dict] = []
    if littles_rows:
        for name in sorted(littles_rows):
            row = dict(littles_rows[name])
            row["station"] = name
            little_rows.append(row)

    checks = {
        "utilization_law": util_rows,
        "littles_law": little_rows,
        "ok": (all(r["ok"] for r in util_rows)
               and all(r["ok"] for r in little_rows if r.get("checked"))),
    }

    # -- SLO gates ----------------------------------------------------------
    rules = [parse_slo(s) if isinstance(s, str) else s for s in slos]
    slo_rows: List[dict] = []
    notes: List[str] = []
    for rule in rules:
        if rule.metric in _LATENCY_METRICS:
            measured = result.latency.get(rule.metric)
            if measured is None:
                notes.append(f"SLO {rule.raw!r}: no latency data recorded")
                slo_rows.append({"raw": rule.raw, "metric": rule.metric,
                                 "measured": float("nan"), "ok": False})
                continue
        else:
            measured = getattr(result, rule.metric)
        slo_rows.append({
            "raw": rule.raw,
            "metric": rule.metric,
            "measured": float(measured),
            "threshold": rule.threshold,
            "op": rule.op,
            "ok": rule.check(measured),
        })
    slo = {"rules": slo_rows, "ok": all(r["ok"] for r in slo_rows)}

    # -- verdict ------------------------------------------------------------
    bs_h = _human_bs(spec.bs)
    if top is not None:
        verdict = (f"bottleneck: {top['resource']}, "
                   f"{top['share'] * 100:.0f}% of {bs_h} {spec.rw} p99")
        if nxt is not None:
            verdict += f", next: {nxt['resource']} at {nxt['share'] * 100:.0f}%"
    else:
        verdict = "no sampled wait records; nothing to blame"
    if not checks["ok"]:
        verdict += " [law-check FAILED]"

    if tracer.records_dropped:
        notes.append(f"{tracer.records_dropped} wait records dropped "
                     f"(max_records={tracer.max_records}); blame shares "
                     "cover the recorded prefix only")

    return Diagnosis(
        label=label or f"{spec.rw} bs={spec.bs} jobs={spec.numjobs}",
        workload={
            "rw": spec.rw, "bs": spec.bs, "numjobs": spec.numjobs,
            "iodepth": spec.iodepth, "runtime": spec.runtime,
        },
        throughput={"iops": result.iops, "bandwidth": result.bandwidth,
                    "total_ios": result.total_ios},
        latency=dict(result.latency),
        blame=blame,
        p99=p99,
        checks=checks,
        slo=slo,
        wait_records={
            "count": len(tracer.records),
            "dropped": tracer.records_dropped,
            "traces": len(roots),
            "total_root_time": total_root,
        },
        verdict=verdict,
        notes=notes,
    )
