"""Sim-time flamegraphs: fold span stacks into collapsed-stack output.

The collapsed ("folded") stack format is one line per unique stack::

    root;child;grandchild 4212

with an integer weight — here **nanoseconds of simulated time** — which
both Brendan Gregg's ``flamegraph.pl`` and https://speedscope.app consume
directly.  Two views are produced:

* :func:`fold_spans` — frames are span *stages* (``node.name``), weights
  are each span's **self time** (duration minus direct children), so the
  flame shows where end-to-end latency is spent across the request tree.
* :func:`fold_waits` — same stacks, but each wait event recorded by a
  :class:`~repro.sim.waits.WaitTracer` appends a ``wait:<resource>`` leaf
  frame weighted by the event's **queueing wait** — the flame shows which
  resource each stage queued behind, not just where time was spent.

Weights are rounded to integer nanoseconds (sub-nanosecond stacks drop
out) and lines are emitted sorted, so output is byte-stable for identical
runs — the property the golden-file test pins.

For *comparing* two runs, :func:`diff_folded` produces Brendan Gregg's
differential ("red/blue") folded format — ``stack before after`` per
line, only for stacks whose weight changed — which ``difffolded.pl`` /
``flamegraph.pl --negate`` render with growth in red and shrinkage in
blue.  ``diff_folded(x, x)`` is empty by construction.
"""

from __future__ import annotations

from typing import IO, Dict, Iterable, List, Optional, Tuple, Union

from repro.sim.spans import Span
from repro.sim.waits import WaitRecord

__all__ = ["fold_spans", "fold_waits", "render_collapsed", "write_collapsed",
           "top_frames", "diff_folded", "render_diff_collapsed",
           "write_diff_collapsed", "diff_totals"]

#: Seconds -> integer nanoseconds (collapsed-stack weights).
NS = 1e9


def _stack_paths(spans: Iterable[Span]) -> Dict[int, str]:
    """span_id -> ``;``-joined stage path from its root down to it.

    Orphan spans (parent not captured, e.g. trace truncated by sampling
    caps) root their own partial stack.
    """
    spans = list(spans)
    by_id = {s.span_id: s for s in spans}
    paths: Dict[int, str] = {}

    def path(s: Span) -> str:
        got = paths.get(s.span_id)
        if got is not None:
            return got
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        p = s.stage if parent is None else f"{path(parent)};{s.stage}"
        paths[s.span_id] = p
        return p

    for s in spans:
        path(s)
    return paths


def fold_spans(spans: Iterable[Span]) -> Dict[str, int]:
    """Fold finished spans into ``{stack: self_time_ns}``.

    Each span contributes its self time (duration minus direct children,
    clamped at zero for overlapping fan-out) at its own stack path, so
    column widths read as "simulated time spent *in* this stage".
    """
    spans = [s for s in spans if s.t_end is not None]
    child_time: Dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration
    paths = _stack_paths(spans)
    folded: Dict[str, int] = {}
    for s in spans:
        self_time = s.duration - child_time.get(s.span_id, 0.0)
        if self_time <= 0.0:
            continue
        ns = round(self_time * NS)
        if ns <= 0:
            continue
        key = paths[s.span_id]
        folded[key] = folded.get(key, 0) + ns
    return folded


def fold_waits(spans: Iterable[Span],
               records: Iterable[WaitRecord]) -> Dict[str, int]:
    """Fold wait events into ``{stack;wait:resource: wait_ns}``.

    Every record's queueing wait (``wait`` for reserves and blocks —
    service/latency are occupancy, not queueing) lands under the stack of
    the span it was attributed to, with a ``wait:<resource>`` leaf frame.
    Spans with no queueing drop out entirely, so the flame is exactly the
    "time lost to contention, by resource" picture.
    """
    paths = _stack_paths(s for s in spans if s.t_end is not None)
    folded: Dict[str, int] = {}
    for r in records:
        ns = round(r.wait * NS)
        if ns <= 0:
            continue
        base = paths.get(r.span.span_id, r.span.stage)
        key = f"{base};wait:{r.resource}"
        folded[key] = folded.get(key, 0) + ns
    return folded


def render_collapsed(folded: Dict[str, int]) -> str:
    """Render folded stacks as sorted collapsed-stack lines."""
    return "".join(f"{stack} {weight}\n"
                   for stack, weight in sorted(folded.items()))


def write_collapsed(path_or_file: Union[str, IO[str]],
                    folded: Dict[str, int]) -> Optional[str]:
    """Write collapsed stacks for flamegraph.pl / speedscope."""
    text = render_collapsed(folded)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
        return None
    with open(path_or_file, "w") as fh:
        fh.write(text)
    return path_or_file


def diff_folded(base: Dict[str, int],
                cur: Dict[str, int]) -> Dict[str, Tuple[int, int]]:
    """Differential fold: ``{stack: (base_ns, cur_ns)}`` for changed stacks.

    Stacks present in only one run carry a zero on the other side; stacks
    with identical weights drop out entirely, so the diff of a run with
    itself is empty and the output size tracks how much actually moved.
    """
    diff: Dict[str, Tuple[int, int]] = {}
    for stack in base.keys() | cur.keys():
        a = base.get(stack, 0)
        b = cur.get(stack, 0)
        if a != b:
            diff[stack] = (a, b)
    return diff


def render_diff_collapsed(diff: Dict[str, Tuple[int, int]]) -> str:
    """Sorted ``stack before after`` lines (difffolded.pl's output format).

    ``flamegraph.pl`` colours each frame by ``after - before`` when fed
    two-count lines: red for growth, blue for shrinkage.
    """
    return "".join(f"{stack} {a} {b}\n"
                   for stack, (a, b) in sorted(diff.items()))


def write_diff_collapsed(path_or_file: Union[str, IO[str]],
                         diff: Dict[str, Tuple[int, int]]) -> Optional[str]:
    """Write a differential folded-stack file for flamegraph.pl --negate."""
    text = render_diff_collapsed(diff)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
        return None
    with open(path_or_file, "w") as fh:
        fh.write(text)
    return path_or_file


def diff_totals(diff: Dict[str, Tuple[int, int]],
                n: int = 10) -> List[tuple]:
    """``(leaf_frame, delta_ns)`` largest absolute movers, for reports."""
    totals: Dict[str, int] = {}
    for stack, (a, b) in diff.items():
        leaf = stack.rsplit(";", 1)[-1]
        totals[leaf] = totals.get(leaf, 0) + (b - a)
    rows = sorted(totals.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
    return rows[:n]


def top_frames(folded: Dict[str, int], n: int = 10) -> List[tuple]:
    """``(leaf_frame, total_ns)`` heaviest leaf frames, for quick reports."""
    totals: Dict[str, int] = {}
    for stack, weight in folded.items():
        leaf = stack.rsplit(";", 1)[-1]
        totals[leaf] = totals.get(leaf, 0) + weight
    rows = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return rows[:n]
