"""Chrome trace-event (Perfetto-loadable) export.

Turns PR 1's request spans and this PR's time series into one JSON
document in the Trace Event Format, the lingua franca of ``chrome://
tracing`` and https://ui.perfetto.dev:

* every :class:`~repro.sim.spans.Span` becomes a complete (``"ph": "X"``)
  duration event on a per-node process track, one thread track per
  sampled request (children nest inside parents visually);
* every :class:`~repro.sim.timeseries.TimeSeries` becomes a counter
  (``"ph": "C"``) track on its owning node's process, so CPU-busy, NVMe
  queue depth, NIC occupancy, Arm-core load and in-flight RPC curves sit
  time-aligned under the request spans that caused them.

Timestamps are simulated seconds scaled to microseconds (the format's
unit).  Everything here is pure post-processing — build the document
after the run, or write it straight to disk with
:func:`write_chrome_trace`.  :func:`validate_chrome_trace` is the schema
checker the tests (and doubting users) can run on any produced file.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Union

from repro.sim.spans import Span
from repro.sim.timeseries import Sampler, TimeSeries

__all__ = [
    "span_events",
    "counter_events",
    "build_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Seconds -> trace-event microseconds.
US = 1e6

#: pid used for spans/series not attributable to a single node.
CLUSTER = "cluster"


def _pid_map(names: Iterable[Optional[str]]) -> Dict[str, int]:
    """Stable node-name -> pid assignment (sorted, 1-based; cluster first)."""
    uniq = sorted({n if n else CLUSTER for n in names})
    if CLUSTER in uniq:  # keep the catch-all track at the top
        uniq.remove(CLUSTER)
        uniq.insert(0, CLUSTER)
    return {name: i + 1 for i, name in enumerate(uniq)}


def _process_metadata(pids: Dict[str, int]) -> List[dict]:
    return [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": name}}
        for name, pid in sorted(pids.items(), key=lambda kv: kv[1])
    ]


def span_events(spans: Iterable[Span],
                pids: Optional[Dict[str, int]] = None) -> List[dict]:
    """Complete (``X``) events for finished spans, plus thread metadata.

    Tracks: ``pid`` = the span's node, ``tid`` = its trace id, so one
    sampled request reads as one swim-lane per node it touched, children
    nested inside parents.  Open spans are skipped.
    """
    spans = [s for s in spans if s.t_end is not None]
    if pids is None:
        pids = _pid_map(s.node for s in spans)
    events: List[dict] = []
    named_threads = set()
    for s in spans:
        pid = pids[s.node if s.node else CLUSTER]
        tid = s.trace_id
        if (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": f"trace {tid}"},
            })
        ev = {
            "name": s.name,
            "cat": "span",
            "ph": "X",
            "ts": s.t_start * US,
            "dur": s.duration * US,
            "pid": pid,
            "tid": tid,
            "args": {
                "trace_id": s.trace_id,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "nbytes": s.nbytes,
            },
        }
        if s.attrs:
            ev["args"].update({k: v for k, v in s.attrs.items()
                               if isinstance(v, (int, float, str, bool))})
        events.append(ev)
    return events


def counter_events(series: Iterable[TimeSeries],
                   pids: Optional[Dict[str, int]] = None) -> List[dict]:
    """Counter (``C``) events — one track per series, one event per window.

    The event timestamp is the window *start* (counters step forward in
    Perfetto), and the value rides under the series name so each counter
    renders as its own labelled track.
    """
    series = list(series)
    if pids is None:
        pids = _pid_map(s.node for s in series)
    events: List[dict] = []
    for s in series:
        pid = pids[s.node if s.node else CLUSTER]
        for t_end, dt, value in s.points():
            events.append({
                "name": s.name,
                "cat": "timeseries",
                "ph": "C",
                # max() absorbs ~1e-9 us float-rounding negatives at t=0.
                "ts": max(0.0, (t_end - dt) * US),
                "pid": pid,
                "args": {s.name: value},
            })
        if s.points():
            # Terminal event so the last window renders with its width.
            events.append({
                "name": s.name,
                "cat": "timeseries",
                "ph": "C",
                "ts": s.t_last * US,
                "pid": pid,
                "args": {s.name: s.values()[-1]},
            })
    return events


def build_chrome_trace(
    spans: Iterable[Span] = (),
    sampler: Optional[Sampler] = None,
    label: str = "repro",
    extra_series: Iterable[TimeSeries] = (),
) -> dict:
    """Assemble the full trace document (JSON-serialisable dict).

    ``extra_series`` adds counter tracks beyond the sampler's probes —
    e.g. :meth:`repro.sim.waits.WaitTracer.wait_series`, one cumulative
    blamed-wait counter per resource.
    """
    spans = [s for s in spans if s.t_end is not None]
    series = list(sampler.series.values()) if sampler is not None else []
    series.extend(extra_series)
    # Counter tracks sort by (node, name), never by probe registration
    # order — two runs exported separately must produce tracks in the
    # same order for a side-by-side overlay to line up.
    series.sort(key=lambda s: (s.node if s.node else CLUSTER, s.name))
    pids = _pid_map([s.node for s in spans] + [s.node for s in series])
    events: List[dict] = []
    events.extend(_process_metadata(pids))
    events.extend(span_events(spans, pids))
    events.extend(counter_events(series, pids))
    events.sort(key=lambda e: (e.get("ts", -1.0), e.get("pid", 0),
                               e.get("name", "")))
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-chrometrace-v1",
            "label": label,
            "n_spans": len(spans),
            "n_counter_tracks": len(series),
        },
        "traceEvents": events,
    }


def write_chrome_trace(
    path_or_file: Union[str, IO[str]],
    spans: Iterable[Span] = (),
    sampler: Optional[Sampler] = None,
    label: str = "repro",
    extra_series: Iterable[TimeSeries] = (),
) -> dict:
    """Build and write the trace; returns the document that was written."""
    doc = build_chrome_trace(spans, sampler, label=label,
                             extra_series=extra_series)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(doc, fh)
    return doc


# ---------------------------------------------------------------------------
# Validation (used by the tests; handy for any produced file)
# ---------------------------------------------------------------------------

_PHASES_REQUIRING_DUR = {"X"}
_KNOWN_PHASES = {"X", "B", "E", "C", "M", "I", "i"}


def validate_chrome_trace(doc: dict) -> List[str]:
    """Check trace-event schema invariants; returns a list of problems.

    Verified: the ``traceEvents`` envelope, per-event required keys,
    non-negative numeric timestamps/durations, matched ``B``/``E`` pairs
    per ``(pid, tid)``, counter events carrying numeric ``args``, and
    globally monotonic (sorted) timestamps — the order Perfetto's JSON
    importer is fastest on and the tests assert.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_stacks: Dict[tuple, int] = {}
    last_ts: Optional[float] = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            if "name" not in ev or "args" not in ev:
                problems.append(f"event {i}: metadata without name/args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} < previous {last_ts} "
                            "(events must be time-sorted)")
        last_ts = ts
        if "pid" not in ev:
            problems.append(f"event {i}: missing pid")
        if ph in _PHASES_REQUIRING_DUR:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event with bad dur {dur!r}")
        if ph == "B":
            key = (ev.get("pid"), ev.get("tid"))
            open_stacks[key] = open_stacks.get(key, 0) + 1
        elif ph == "E":
            key = (ev.get("pid"), ev.get("tid"))
            depth = open_stacks.get(key, 0)
            if depth <= 0:
                problems.append(f"event {i}: E without matching B on {key}")
            else:
                open_stacks[key] = depth - 1
        elif ph == "C":
            args = ev.get("args")
            if (not isinstance(args, dict) or not args
                    or not all(isinstance(v, (int, float))
                               for v in args.values())):
                problems.append(f"event {i}: counter without numeric args")
    for key, depth in open_stacks.items():
        if depth:
            problems.append(f"{depth} unclosed B event(s) on track {key}")
    return problems
