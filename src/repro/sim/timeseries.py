"""Continuous time-series telemetry on the DES kernel.

PR 1's :class:`~repro.sim.spans.Span` answers *where one request's time
went*; this module answers *how the system's load evolved* — the
utilization-over-time curves the DPU-characterization literature uses to
diagnose offload wins and losses (the Arm TCP/RX bottleneck of Fig. 5
emerges only at high ``numjobs`` and is invisible in point-in-time
snapshots).

Three pieces:

* :class:`TimeSeries` — a bounded buffer of *time-weighted* samples.
  Each point covers a window ``(t_end - dt, t_end]`` with the window's
  mean value.  When the buffer reaches capacity, adjacent windows are
  merged pairwise (halving the point count, doubling the resolution), so
  memory stays O(capacity) for arbitrarily long runs while the overall
  time-weighted mean is preserved *exactly*.
* :class:`Probe` + :class:`Sampler` — a sampling process that wakes every
  ``interval`` simulated seconds and polls registered probes into their
  series.  Gauge probes record instantaneous levels; cumulative probes
  (busy-seconds, byte counters) are differenced so every sample is the
  exact windowed utilization/rate over that interval.  The sampler only
  reads state — it never occupies a resource — so an instrumented run
  produces bit-identical simulated results to a bare one, and when it is
  never started the kernel schedules nothing at all (zero cost when off).
* :class:`StationStats` + :meth:`Sampler.littles_law` — per-station
  arrival/sojourn accounting and the ``L = λW`` self-check that keeps the
  whole observability pipeline honest: the *sampled* mean in-flight count
  must match arrival-rate × mean-sojourn computed from exact counters.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = [
    "TimeSeries",
    "Probe",
    "StationStats",
    "Sampler",
]

#: Probe kinds (how raw readings become series values).
GAUGE = "gauge"          # fn() is an instantaneous level
RATE = "rate"            # fn() is a cumulative total; store delta / dt
UTILIZATION = "utilization"  # like RATE but the total is busy-seconds


class TimeSeries:
    """Bounded time-weighted series with automatic pairwise downsampling.

    Points are ``(t_end, dt, value)``: ``value`` is the mean of the
    underlying signal over ``(t_end - dt, t_end]``.  Appending past
    ``capacity`` merges adjacent pairs — the merged window's value is the
    duration-weighted mean of its halves — so the series keeps covering
    the full run at progressively coarser resolution.

    ``capacity`` must be even (pairwise merging halves it cleanly).
    """

    __slots__ = ("name", "unit", "kind", "node", "capacity", "merges",
                 "_t", "_dt", "_v")

    def __init__(self, name: str, capacity: int = 512, unit: str = "",
                 kind: str = GAUGE, node: Optional[str] = None) -> None:
        if capacity < 4 or capacity % 2:
            raise ValueError(f"capacity must be an even number >= 4, got {capacity}")
        self.name = name
        self.unit = unit
        self.kind = kind
        #: Owning node (picks the Perfetto process track); None = cluster.
        self.node = node
        self.capacity = int(capacity)
        #: Number of pairwise downsampling passes performed so far.
        self.merges = 0
        self._t: List[float] = []
        self._dt: List[float] = []
        self._v: List[float] = []

    def __len__(self) -> int:
        return len(self._t)

    def append(self, t_end: float, dt: float, value: float) -> None:
        """Add one window sample ending at ``t_end`` of width ``dt``."""
        if dt <= 0.0:
            return  # zero-width windows carry no information
        self._t.append(t_end)
        self._dt.append(dt)
        self._v.append(value)
        if len(self._t) >= self.capacity:
            self._downsample()

    def _downsample(self) -> None:
        """Merge adjacent windows pairwise (exact time-weighted means)."""
        t, dt, v = self._t, self._dt, self._v
        n = len(t) // 2 * 2
        nt: List[float] = []
        ndt: List[float] = []
        nv: List[float] = []
        for i in range(0, n, 2):
            w = dt[i] + dt[i + 1]
            nt.append(t[i + 1])
            ndt.append(w)
            nv.append((v[i] * dt[i] + v[i + 1] * dt[i + 1]) / w)
        if n < len(t):  # odd leftover point survives unmerged
            nt.append(t[-1])
            ndt.append(dt[-1])
            nv.append(v[-1])
        self._t, self._dt, self._v = nt, ndt, nv
        self.merges += 1

    # -- views --------------------------------------------------------------

    def points(self) -> List[Tuple[float, float, float]]:
        """``(t_end, dt, value)`` triples in time order."""
        return list(zip(self._t, self._dt, self._v))

    def times(self) -> List[float]:
        """Window end times."""
        return list(self._t)

    def values(self) -> List[float]:
        """Window mean values."""
        return list(self._v)

    @property
    def t_first(self) -> float:
        """Start of the first window (``inf`` when empty)."""
        return self._t[0] - self._dt[0] if self._t else float("inf")

    @property
    def t_last(self) -> float:
        """End of the last window (``-inf`` when empty)."""
        return self._t[-1] if self._t else float("-inf")

    def max(self) -> float:
        """Largest window mean (0.0 when empty)."""
        return max(self._v) if self._v else 0.0

    def min(self) -> float:
        """Smallest window mean (0.0 when empty)."""
        return min(self._v) if self._v else 0.0

    def time_weighted_mean(self, t0: Optional[float] = None,
                           t1: Optional[float] = None) -> float:
        """Duration-weighted mean over ``[t0, t1]`` (whole series default).

        Windows straddling the boundary contribute pro-rata, treating each
        window's signal as constant at its mean — exact for signals
        sampled at window granularity, within one window's width otherwise.
        """
        if not self._t:
            return 0.0
        lo = self.t_first if t0 is None else t0
        hi = self.t_last if t1 is None else t1
        area = 0.0
        span = 0.0
        for t_end, dt, v in zip(self._t, self._dt, self._v):
            a = t_end - dt
            start = a if a > lo else lo
            end = t_end if t_end < hi else hi
            if end <= start:
                continue
            w = end - start
            area += v * w
            span += w
        return area / span if span > 0.0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "unit": self.unit,
            "kind": self.kind,
            "node": self.node,
            "merges": self.merges,
            "t": list(self._t),
            "dt": list(self._dt),
            "v": list(self._v),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TimeSeries {self.name} n={len(self)} "
                f"kind={self.kind} merges={self.merges}>")


class Probe:
    """One pollable signal: a name, a reader, and a conversion kind.

    ``fn()`` must be side-effect-free.  For :data:`GAUGE` probes the
    reading is stored as-is; for :data:`RATE` / :data:`UTILIZATION` probes
    the reading is a cumulative total and the sampler stores
    ``(reading - previous) / dt`` — the exact mean rate (or busy fraction,
    when the total is busy-seconds normalised by the server count) over
    the sampling window.
    """

    __slots__ = ("name", "fn", "kind", "unit", "node", "_prev")

    def __init__(self, name: str, fn: Callable[[], float], kind: str = GAUGE,
                 unit: str = "", node: Optional[str] = None) -> None:
        if kind not in (GAUGE, RATE, UTILIZATION):
            raise ValueError(f"unknown probe kind {kind!r}")
        self.name = name
        self.fn = fn
        self.kind = kind
        self.unit = unit
        self.node = node
        self._prev: Optional[float] = None


class StationStats:
    """Arrival/sojourn accounting for one queueing station.

    Feeds both the in-flight gauge (instantaneous number in system,
    queued + in service) and the exact side of the Little's-law check:
    ``arrivals`` and ``sojourn_sum`` are updated with O(1) float work per
    operation, so λ and W are exact while ``L`` comes from the sampler.

    Two usage styles:

    * **reservation** — completion time is known at arrival
      (:class:`~repro.sim.queues.FifoServer` analytics):
      ``record(t_arrive, t_done)``; in-flight is reconstructed lazily from
      a min-heap of outstanding completion times.
    * **event** — completion is a separate program point
      (RPC dispatch): ``arrive()`` then later ``depart(sojourn)``.
    """

    __slots__ = ("name", "arrivals", "sojourn_sum", "_done", "_current")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Operations that entered the station.
        self.arrivals = 0
        #: Summed time-in-system (queue wait + service) in seconds.
        self.sojourn_sum = 0.0
        self._done: List[float] = []  # outstanding completion times (heap)
        self._current = 0             # event-style in-flight count

    # -- reservation style ---------------------------------------------------

    def record(self, t_arrive: float, t_done: float) -> None:
        """Account one operation arriving now and completing at ``t_done``."""
        self.arrivals += 1
        self.sojourn_sum += t_done - t_arrive
        heapq.heappush(self._done, t_done)

    # -- event style ---------------------------------------------------------

    def arrive(self) -> None:
        """One operation entered the station (completion not yet known)."""
        self.arrivals += 1
        self._current += 1

    def depart(self, sojourn: float) -> None:
        """The operation that arrived earliest-unmatched left after ``sojourn``."""
        self.sojourn_sum += sojourn
        self._current -= 1

    # -- queries -------------------------------------------------------------

    def in_flight(self, now: float) -> int:
        """Number in system at ``now`` (pops expired reservations)."""
        done = self._done
        while done and done[0] <= now:
            heapq.heappop(done)
        return len(done) + self._current

    def mean_sojourn(self) -> float:
        """W — mean time in system per arrival (0 when idle)."""
        return self.sojourn_sum / self.arrivals if self.arrivals else 0.0

    def arrival_rate(self, elapsed: float) -> float:
        """λ — arrivals per second over ``elapsed``."""
        return self.arrivals / elapsed if elapsed > 0.0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "arrivals": self.arrivals,
            "sojourn_sum": self.sojourn_sum,
            "mean_sojourn": self.mean_sojourn(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StationStats {self.name} arrivals={self.arrivals}>"


class Sampler:
    """The system-wide telemetry bus: polls probes into bounded series.

    Life cycle::

        sampler = Sampler(env, interval=5e-5)
        sampler.add_probe("dpu.cpu.busy", fn, kind=UTILIZATION, node="dpu")
        sampler.start()      # spawns the sampling process
        ...  # run the simulation
        sampler.stop()       # optional; the process parks itself when told

    Until :meth:`start` is called nothing is scheduled on the kernel, so a
    sampler that is merely constructed (or never constructed) costs zero.
    The sampling process only *reads* component state; it never acquires a
    resource or serves a queue, so sampled runs stay bit-identical to
    unsampled ones.
    """

    def __init__(self, env: "Environment", interval: float = 1e-4,
                 capacity: int = 512) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.series: Dict[str, TimeSeries] = {}
        self.stations: Dict[str, StationStats] = {}
        self._probes: List[Probe] = []
        self._proc = None
        self._stopped = False
        #: Simulated time sampling began (NaN until started).
        self.t_start = float("nan")
        #: Samples taken (ticks of the sampling process).
        self.ticks = 0

    # -- registration --------------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float], kind: str = GAUGE,
                  unit: str = "", node: Optional[str] = None) -> Probe:
        """Register a signal; returns the :class:`Probe` handle."""
        if name in self.series:
            raise ValueError(f"duplicate probe name {name!r}")
        probe = Probe(name, fn, kind=kind, unit=unit, node=node)
        self._probes.append(probe)
        unit = unit or ({UTILIZATION: "busy", RATE: "/s"}.get(kind, ""))
        self.series[name] = TimeSeries(name, capacity=self.capacity,
                                       unit=unit, kind=kind, node=node)
        return probe

    def add_station(self, name: str, stats: StationStats,
                    node: Optional[str] = None) -> StationStats:
        """Register a queueing station: in-flight gauge + Little's-law check."""
        if name in self.stations:
            raise ValueError(f"duplicate station name {name!r}")
        self.stations[name] = stats
        env = self.env
        self.add_probe(f"{name}.in_flight",
                       lambda: float(stats.in_flight(env.now)),
                       kind=GAUGE, unit="ops", node=node)
        return stats

    # -- life cycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the sampling process is scheduled."""
        return self._proc is not None and not self._stopped

    def start(self) -> "Sampler":
        """Spawn the sampling process (idempotent)."""
        if self._proc is None:
            self.t_start = self.env.now
            self._prime()
            self._proc = self.env.process(self._run(), name="telemetry-sampler")
        return self

    def stop(self) -> None:
        """Ask the sampling process to park after its next tick."""
        self._stopped = True

    def _prime(self) -> None:
        """Record cumulative-probe baselines at the sampling start."""
        for p in self._probes:
            if p.kind != GAUGE:
                p._prev = float(p.fn())

    def sample_now(self, dt: Optional[float] = None) -> None:
        """Take one sample covering the last ``dt`` (default: interval)."""
        now = self.env.now
        window = self.interval if dt is None else dt
        self.ticks += 1
        for p in self._probes:
            raw = float(p.fn())
            if p.kind == GAUGE:
                value = raw
            else:
                prev = raw if p._prev is None else p._prev
                p._prev = raw
                value = (raw - prev) / window if window > 0.0 else 0.0
            self.series[p.name].append(now, window, value)

    def _run(self):
        env = self.env
        interval = self.interval
        while not self._stopped:
            yield env.timeout(interval)
            self.sample_now()

    # -- analyses ------------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds covered by sampling so far."""
        if self.t_start != self.t_start:  # NaN: never started
            return 0.0
        return self.env.now - self.t_start

    def littles_law(self, tolerance: float = 0.05,
                    min_arrivals: int = 50) -> Dict[str, dict]:
        """The ``L = λW`` self-check for every registered station.

        ``L`` is the *sampled* time-weighted mean of the in-flight series,
        ``λ`` and ``W`` come from the station's exact counters; a healthy
        telemetry pipeline keeps ``|L - λW| / λW`` within ``tolerance``.
        Stations with fewer than ``min_arrivals`` are reported but marked
        ``checked=False`` (the law is asymptotic).
        """
        out: Dict[str, dict] = {}
        elapsed = self.elapsed()
        for name in sorted(self.stations):
            st = self.stations[name]
            series = self.series[f"{name}.in_flight"]
            lam = st.arrival_rate(elapsed)
            w = st.mean_sojourn()
            rhs = lam * w
            sampled_l = series.time_weighted_mean()
            if rhs > 0.0:
                rel_err = abs(sampled_l - rhs) / rhs
            else:
                rel_err = abs(sampled_l)
            checked = st.arrivals >= min_arrivals
            out[name] = {
                "L_sampled": sampled_l,
                "lambda": lam,
                "W": w,
                "lambda_W": rhs,
                "rel_err": rel_err,
                "arrivals": st.arrivals,
                "checked": checked,
                "ok": (rel_err <= tolerance) if checked else True,
            }
        return out

    def busiest(self, t0: Optional[float] = None,
                t1: Optional[float] = None) -> Tuple[str, float]:
        """Most-utilized component over ``[t0, t1]``.

        Considers only :data:`UTILIZATION` series; ties break towards the
        lexicographically smallest name; all-idle windows return
        ``("idle", 0.0)``.
        """
        best_name = "idle"
        best_util = 0.0
        for name in sorted(self.series):
            s = self.series[name]
            if s.kind != UTILIZATION:
                continue
            u = s.time_weighted_mean(t0, t1)
            if u > best_util:
                best_name, best_util = name, u
        return best_name, best_util

    def to_dict(self) -> dict:
        return {
            "interval": self.interval,
            "t_start": self.t_start,
            "ticks": self.ticks,
            "series": {k: v.to_dict() for k, v in sorted(self.series.items())},
            "stations": {k: v.to_dict() for k, v in sorted(self.stations.items())},
        }
