"""ROS2 reproduction: an RDMA-first object storage system with SmartNIC
offload, rebuilt on a calibrated simulated testbed.

Public API tour
---------------

* :class:`repro.sim.Environment` — the simulation clock everything runs on.
* :func:`repro.hw.make_paper_testbed` — the paper's hardware (§4.1).
* :class:`repro.core.Ros2System` / :class:`repro.core.Ros2Config` — the
  assembled ROS2 deployment (Fig. 2): engine, control plane, offloaded
  client, tenancy.
* :mod:`repro.workload` — the FIO-equivalent driver and LLM phase models.
* :mod:`repro.bench` — one builder per paper figure plus the calibration
  bands that assert paper-vs-measured shape.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.core import Ros2Config, Ros2System
from repro.sim import Environment

__version__ = "0.1.0"

__all__ = ["Environment", "Ros2Config", "Ros2System", "__version__"]
