"""Fault plans, the injector, and its telemetry counters.

A :class:`FaultPlan` is data: a sorted schedule of :class:`FaultEvent`
entries plus the :class:`~repro.faults.retry.RetryPolicy` the client
should recover with.  ``plan.install(env)`` attaches a
:class:`FaultInjector` to the environment's ``_faults`` hook slot;
components self-register at construction time (channels, engines,
nodes) when the slot is non-``None`` and otherwise pay a single ``is
not None`` test — the same zero-cost-when-off contract the wait tracer
and trace hooks follow.

Fault *times* are relative to the workload's measured-window start:
the harness calls :meth:`FaultInjector.arm` with the absolute base
time once setup is done, which freezes every fault window and spawns
one driver process that fires the events in schedule order.

Targets reuse the WaitTracer resource naming scheme:

========================  =============================================
kind                      target
========================  =============================================
``qp_break``              ``{node}.qp``        (e.g. ``dpu.qp``)
``tcp_reset``             ``{node}.tcp``       (e.g. ``host.tcp``)
``nvme_media_error``      ``nvme.ssd{i}``
``nvme_latency_spike``    ``nvme.ssd{i}``
``engine_crash``          ``engine.target{i}``
``arm_stall``             ``{node}.{lock}``    (e.g. ``dpu.daos_progress``)
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.faults.retry import RetryPolicy
from repro.sim.rng import seed_from_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment, Event

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "parse_fault_spec",
]

#: The supported fault taxonomy (DESIGN.md §14).
FAULT_KINDS = (
    "qp_break",
    "tcp_reset",
    "nvme_media_error",
    "nvme_latency_spike",
    "engine_crash",
    "arm_stall",
)

#: Kinds whose effect is *pulled* (a window check at the injection
#: point) rather than *pushed* (an applier mutating component state).
_PULL_KINDS = frozenset({"nvme_media_error", "nvme_latency_spike"})


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is seconds after the measured window opens; ``duration`` is
    the fault window length (0 = instantaneous, e.g. a QP break whose
    reconnect is allowed immediately); ``factor`` scales service time
    for ``nvme_latency_spike`` and is ignored by other kinds.
    """

    kind: str
    target: str
    at: float
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")
        if self.factor <= 0:
            raise ValueError(f"fault factor must be > 0, got {self.factor}")

    def to_dict(self) -> dict:
        """Canonical dict form (stable key order for config hashing)."""
        return {
            "kind": self.kind,
            "target": self.target,
            "at": self.at,
            "duration": self.duration,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultEvent":
        return cls(
            kind=doc["kind"],
            target=doc["target"],
            at=float(doc["at"]),
            duration=float(doc.get("duration", 0.0)),
            factor=float(doc.get("factor", 1.0)),
        )


class FaultStats:
    """Recovery/injection counters, surfaced in ``SystemReport``."""

    __slots__ = (
        "injected",
        "retries",
        "reconnects",
        "timeouts",
        "replies_dropped",
        "submitted",
        "completed",
        "failed",
        "degraded_reads",
        "fault_downtime",
    )

    def __init__(self) -> None:
        #: Fired fault events, by kind.
        self.injected: Dict[str, int] = {}
        #: Client-side retry attempts after a retryable failure.
        self.retries = 0
        #: Successful QP/TCP reconnects.
        self.reconnects = 0
        #: Per-op deadline expiries.
        self.timeouts = 0
        #: RPC replies the server dropped because the transport was down.
        self.replies_dropped = 0
        #: Workload operations submitted / completed / failed-with-error
        #: (conservation: submitted == completed + failed after drain).
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        #: Fetches served from a non-primary replica or an EC rebuild
        #: (copied from the engine after the drain by the chaos runner).
        self.degraded_reads = 0
        #: Union of fault windows in seconds (set when the plan is armed).
        self.fault_downtime = 0.0

    def count_injected(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def to_dict(self) -> dict:
        return {
            "injected": dict(sorted(self.injected.items())),
            "retries": self.retries,
            "reconnects": self.reconnects,
            "timeouts": self.timeouts,
            "replies_dropped": self.replies_dropped,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "degraded_reads": self.degraded_reads,
            "fault_downtime": self.fault_downtime,
        }


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable fault schedule plus the recovery policy to use."""

    events: Tuple[FaultEvent, ...] = ()
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Seed key for the plan's deterministic jitter streams
    #: (:func:`~repro.sim.rng.seed_from_key` domain).
    seed_key: str = "chaos"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events,
                               key=lambda e: (e.at, e.kind, e.target)))
        object.__setattr__(self, "events", ordered)

    @property
    def seed(self) -> int:
        """Stable 32-bit seed derived from ``seed_key``."""
        return seed_from_key(self.seed_key)

    def to_config(self) -> dict:
        """Canonical config fragment (campaign ``faults:`` cell key)."""
        return {
            "events": [e.to_dict() for e in self.events],
            "policy": self.policy.to_dict(),
            "seed_key": self.seed_key,
        }

    @classmethod
    def from_config(cls, doc: dict) -> "FaultPlan":
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in doc.get("events", ())),
            policy=RetryPolicy.from_dict(doc["policy"]) if "policy" in doc
            else RetryPolicy(),
            seed_key=doc.get("seed_key", "chaos"),
        )

    def install(self, env: "Environment") -> "FaultInjector":
        """Attach an injector to ``env`` (at most one at a time)."""
        if env._faults is not None:
            raise RuntimeError("a FaultInjector is already installed")
        fx = FaultInjector(env, self)
        env._faults = fx
        return fx


class FaultInjector:
    """Runtime half of a :class:`FaultPlan`: registry, windows, driver.

    Components register themselves during construction (guarded by the
    ``env._faults is not None`` test); the harness calls :meth:`arm`
    once the measured window's start time is known.  Pull-style kinds
    (NVMe) are window queries via :meth:`active`; push-style kinds are
    applied by the driver process at their trigger times.
    """

    __slots__ = ("env", "plan", "stats", "_channels", "_engines", "_nodes",
                 "_windows", "_armed_at")

    def __init__(self, env: "Environment", plan: FaultPlan) -> None:
        self.env = env
        self.plan = plan
        self.stats = FaultStats()
        #: Transport channels by fault target name (``{node}.qp`` /
        #: ``{node}.tcp``); several sessions may share a target.
        self._channels: Dict[str, List[object]] = {}
        self._engines: List[object] = []
        self._nodes: Dict[str, object] = {}
        #: ``(kind, target) -> [(start, end, event), ...]`` absolute
        #: windows, frozen by :meth:`arm`.
        self._windows: Dict[Tuple[str, str], List[Tuple[float, float, FaultEvent]]] = {}
        self._armed_at: Optional[float] = None

    # -- component registry (called from __init__ when hooks are on) -----------
    def register_channel(self, target: str, channel: object) -> None:
        """A transport channel answering to fault target ``target``."""
        self._channels.setdefault(target, []).append(channel)

    def register_engine(self, engine: object) -> None:
        self._engines.append(engine)

    def register_node(self, node: object) -> None:
        self._nodes[getattr(node, "name")] = node

    # -- schedule ---------------------------------------------------------------
    @property
    def armed_at(self) -> Optional[float]:
        """Absolute base time the plan was armed at, or None."""
        return self._armed_at

    def arm(self, base: float) -> None:
        """Freeze fault windows relative to ``base`` and start the driver."""
        if self._armed_at is not None:
            raise RuntimeError("fault plan already armed")
        self._armed_at = base
        spans = []
        for ev in self.plan.events:
            start = base + ev.at
            self._windows.setdefault((ev.kind, ev.target), []).append(
                (start, start + ev.duration, ev)
            )
            if ev.duration > 0:
                spans.append((start, start + ev.duration))
        self.stats.fault_downtime = _union_length(spans)
        if self.plan.events:
            self.env.process(self._driver(base), name="faults.driver")

    def _driver(self, base: float) -> Generator["Event", None, None]:
        for ev in self.plan.events:
            when = base + ev.at
            if when > self.env.now:
                yield self.env.timeout_until(when)
            self._apply(ev)

    # -- queries (pull-style injection points) ---------------------------------
    def active(self, kind: str, target: str) -> Optional[FaultEvent]:
        """The fault event whose window covers ``now``, if any."""
        windows = self._windows.get((kind, target))
        if not windows:
            return None
        now = self.env.now
        for start, end, ev in windows:
            if start <= now < end:
                return ev
        return None

    def fault_resource(self) -> str:
        """Best-effort resource name to blame a recovery wait on.

        The target of the fault window covering ``now``, else the most
        recently triggered fault, else the plan's first target.
        """
        now = self.env.now
        best: Optional[FaultEvent] = None
        best_start = -1.0
        for windows in self._windows.values():
            for start, end, ev in windows:
                if start <= now < end:
                    return ev.target
                if start <= now and start > best_start:
                    best, best_start = ev, start
        if best is not None:
            return best.target
        return self.plan.events[0].target if self.plan.events else "injected"

    # -- push-style appliers ----------------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        self.stats.count_injected(ev.kind)
        if ev.kind in _PULL_KINDS:
            return  # effect is a window query at the device
        if ev.kind == "qp_break":
            for ch in self._channels.get(ev.target, ()):
                ch.break_qps(f"injected qp_break on {ev.target}")  # type: ignore[attr-defined]
        elif ev.kind == "tcp_reset":
            for ch in self._channels.get(ev.target, ()):
                ch.reset(ev.duration)  # type: ignore[attr-defined]
        elif ev.kind == "engine_crash":
            self._apply_engine_crash(ev)
        elif ev.kind == "arm_stall":
            self._apply_arm_stall(ev)

    def _apply_engine_crash(self, ev: FaultEvent) -> None:
        index = int(ev.target.rsplit("target", 1)[1])
        for engine in self._engines:
            engine.fail_target(index)  # type: ignore[attr-defined]
            if ev.duration > 0:
                self.env.process(self._restart_target(engine, index, ev.duration),
                                 name=f"faults.restart.{ev.target}")

    def _restart_target(self, engine: object, index: int,
                        duration: float) -> Generator["Event", None, None]:
        yield self.env.timeout(duration)
        yield from engine.rebuild_target(index)  # type: ignore[attr-defined]

    def _apply_arm_stall(self, ev: FaultEvent) -> None:
        node_name, _, lock_name = ev.target.partition(".")
        node = self._nodes.get(node_name)
        if node is None or not lock_name:
            raise ValueError(f"arm_stall target {ev.target!r} matches no "
                             f"registered node lock")
        self.env.process(self._stall(node, lock_name, ev.duration),
                         name=f"faults.stall.{ev.target}")

    def _stall(self, node: object, lock_name: str,
               duration: float) -> Generator["Event", None, None]:
        # Occupy the serialized section's server for exactly ``duration``
        # (``enter()`` would scale by the node's lock factor).
        section = node.lock(lock_name)  # type: ignore[attr-defined]
        yield section._server.serve(duration)


def _union_length(spans: List[Tuple[float, float]]) -> float:
    """Total length of the union of ``[start, end)`` intervals."""
    if not spans:
        return 0.0
    spans = sorted(spans)
    total = 0.0
    cur_start, cur_end = spans[0]
    for start, end in spans[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    return total + (cur_end - cur_start)


def parse_fault_spec(spec: str) -> FaultEvent:
    """Parse a CLI fault spec: ``KIND:TARGET:AT[:DURATION[:FACTOR]]``.

    Examples: ``qp_break:dpu.qp:0.01:0.005``,
    ``nvme_latency_spike:nvme.ssd0:0.0:0.01:8``.
    """
    parts = spec.split(":")
    if not 3 <= len(parts) <= 5:
        raise ValueError(
            f"bad fault spec {spec!r}; expected KIND:TARGET:AT[:DURATION[:FACTOR]]"
        )
    kind, target, at = parts[0], parts[1], float(parts[2])
    duration = float(parts[3]) if len(parts) > 3 else 0.0
    factor = float(parts[4]) if len(parts) > 4 else 1.0
    return FaultEvent(kind=kind, target=target, at=at,
                      duration=duration, factor=factor)
