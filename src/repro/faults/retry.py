"""Retry policy: deadlines, capped backoff, deterministic jitter.

The client retry loop (``daos/client.py``) consults this module; it is
deliberately pure — no environment access — so the same classification
is unit-testable without a simulation.

Determinism: jitter is derived from :func:`repro.sim.rng.seed_from_key`
over the *operation's* key (op sequence number + attempt), never from
wall-clock or a shared PRNG stream, so a retry schedule is a pure
function of the fault plan seed and replays byte-identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.sim.rng import seed_from_key

__all__ = ["RetryPolicy", "backoff_delay", "is_retryable"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Knobs for the client's recovery loop (times in sim seconds)."""

    #: Give up after this many attempts (first try included).
    max_attempts: int = 12
    #: First backoff delay; doubles per attempt.
    base_delay: float = 200e-6
    #: Ceiling on a single backoff delay.
    max_delay: float = 2e-3
    #: Per-attempt RPC deadline (0 disables the timeout).
    op_timeout: float = 5e-3
    #: Whole-operation budget across all attempts (0 = unbounded).
    deadline: float = 0.1
    #: Jitter fraction: a delay lands in ``[d*(1-jitter), d)``.
    jitter: float = 0.5

    def to_dict(self) -> dict:
        """Canonical dict form (campaign config / ledger records)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "RetryPolicy":
        return cls(**doc)


def backoff_delay(policy: RetryPolicy, attempt: int, key: str) -> float:
    """Backoff before retry number ``attempt`` (1-based), with jitter.

    ``key`` identifies the operation (e.g. ``"chaos:op17"``); together
    with ``attempt`` it fully determines the jitter draw.
    """
    raw = policy.base_delay * (2.0 ** (attempt - 1))
    if raw > policy.max_delay:
        raw = policy.max_delay
    u = seed_from_key(key, salt=attempt) / 2**32  # uniform [0, 1)
    return raw * (1.0 - policy.jitter + policy.jitter * u)


#: Remote-error substrings that indicate a transient, retryable failure
#: (the remote side saw an injected fault or a target that may rebuild).
_RETRYABLE_REMOTE = (
    "NvmeMediaError",
    "FaultInjectedError",
    "RdmaError",
    "ConnectionError",
    "is down",
    "are down",
)

#: Remote-error substrings that are always fatal regardless of faults.
_FATAL_REMOTE = (
    "unknown opcode",
    "degraded writes are not supported",
    "access violation",
)


def is_retryable(exc: BaseException, idempotent: bool = True) -> bool:
    """Classify an exception: worth retrying, or fatal?

    ``idempotent`` marks read-style operations that are safe to replay
    after an *ambiguous* failure (a deadline timeout, where the server
    may have applied the op).  Non-idempotent ops only retry failures
    known to have happened before delivery.
    """
    from repro.daos.rpc import RpcError, RpcTimeout
    from repro.faults.errors import FaultInjectedError
    from repro.net.rdma import RdmaError

    if isinstance(exc, RpcTimeout):
        # Ambiguous: the request may have been executed remotely.
        return idempotent
    if isinstance(exc, RpcError):
        remote = getattr(exc, "remote_error", None) or str(exc)
        if any(marker in remote for marker in _FATAL_REMOTE):
            return False
        return any(marker in remote for marker in _RETRYABLE_REMOTE)
    if isinstance(exc, FaultInjectedError):
        return True
    if isinstance(exc, RdmaError):
        return "access violation" not in str(exc).lower()
    if isinstance(exc, ConnectionError):
        return True
    return False


def classify(exc: BaseException, idempotent: bool = True) -> str:
    """Human-readable verdict used by chaos reports and tests."""
    return "retryable" if is_retryable(exc, idempotent) else "fatal"


def remaining_budget(policy: RetryPolicy, started: float, now: float) -> Optional[float]:
    """Seconds left of the whole-operation deadline (None = unbounded)."""
    if policy.deadline <= 0:
        return None
    return policy.deadline - (now - started)
