"""Leaf exception types for injected faults.

Kept free of imports so any layer (hw, net, daos) can raise or catch
them without creating an import cycle.
"""

from __future__ import annotations

__all__ = ["FaultInjectedError", "NvmeMediaError"]


class FaultInjectedError(Exception):
    """Base class for failures manufactured by the fault injector.

    Distinguishes deliberate chaos from genuine model bugs: recovery
    code retries these; test assertions that no *unexpected* exception
    escaped can filter on the type.
    """


class NvmeMediaError(FaultInjectedError):
    """An injected NVMe read/write media error (unrecoverable LBA)."""
