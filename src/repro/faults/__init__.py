"""Deterministic virtual-time fault injection (ISSUE 10).

A :class:`~repro.faults.plan.FaultPlan` is a schedule of typed fault
events — QP breaks, TCP resets, NVMe media errors and latency spikes,
engine crashes, DPU Arm-core stalls — installed into the simulation
:class:`~repro.sim.core.Environment` with the same zero-cost-when-off
hook pattern the tracers use: components test ``env._faults is not
None`` once on their hot path and pay nothing when chaos is off.

Recovery semantics (deadline timeouts, capped exponential backoff with
deterministic jitter, idempotent retries, QP reconnects, degraded
reads) live in the client/RPC layers and report their activity through
:class:`~repro.faults.plan.FaultStats`, surfaced in ``SystemReport``
and blamed by the doctor as ``fault:{resource}`` wait causes.
"""

from repro.faults.errors import FaultInjectedError, NvmeMediaError
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultStats,
)
from repro.faults.retry import RetryPolicy, backoff_delay, is_retryable

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjectedError",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "NvmeMediaError",
    "RetryPolicy",
    "backoff_delay",
    "is_retryable",
]
