"""LLM pipeline workload models (paper §2.1-2.2 and Fig. 1).

Two pieces:

* :class:`LlmIngestModel` — the paper's per-node ingest-rate estimate
  ``B_node ~ G * r * s`` (GPUs per node x per-GPU sample rate x bytes per
  sample), used to reproduce Table 1's "implications for LLM data
  ingestion" and Fig. 1's requirements chart.
* Phase specs — the three I/O phases Fig. 1 contrasts, each expressible
  as an :class:`~repro.workload.fio.FioJobSpec` so they can be *run*
  against the ROS2 stack, not just tabulated:

  - **dataloader**: high-concurrency random reads of samples (shuffle),
  - **parameter load**: large sequential reads at job start,
  - **checkpoint**: large sequential writes on a period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hw.specs import GIB, GPU_GENERATIONS, KIB, MIB, GpuSpec
from repro.workload.fio import FioJobSpec

__all__ = [
    "LlmIngestModel",
    "DataloaderSpec",
    "ParameterLoadSpec",
    "CheckpointSpec",
    "llm_phase_specs",
]


@dataclass(frozen=True)
class LlmIngestModel:
    """``B_node ~ G * r * s`` (paper §2.1).

    ``samples_per_gpu_per_sec`` (r) and ``bytes_per_sample`` (s) default
    to the conservative choices the paper gestures at ("even conservative
    choices yield multi-GiB/s per node"): tokenized multimodal batches of
    ~2 MiB consumed at ~200 samples/s/GPU.
    """

    gpus_per_node: int = 8
    samples_per_gpu_per_sec: float = 200.0
    bytes_per_sample: int = 2 * MIB

    def node_ingest_rate(self) -> float:
        """Required sustained bytes/second per node."""
        return self.gpus_per_node * self.samples_per_gpu_per_sec * self.bytes_per_sample

    def scaled_to_gpu(self, gpu: GpuSpec, baseline: GpuSpec) -> "LlmIngestModel":
        """Scale the sample rate with compute throughput across generations.

        Faster GPUs consume samples proportionally faster (the paper's
        trend argument: HBM and tensor throughput growth raises the data
        rate storage must deliver).
        """
        ratio = gpu.fp16_tflops / baseline.fp16_tflops
        return LlmIngestModel(
            self.gpus_per_node,
            self.samples_per_gpu_per_sec * ratio,
            self.bytes_per_sample,
        )

    @staticmethod
    def generation_sweep(
        gpus_per_node: int = 8,
        base_rate: float = 25.0,
        bytes_per_sample: int = 2 * MIB,
    ) -> List[Tuple[GpuSpec, float]]:
        """Per-node ingest requirement for every Table 1 GPU generation.

        ``base_rate`` is r for the P100 baseline; later generations scale
        with tensor throughput.
        """
        baseline = GPU_GENERATIONS[0]
        base = LlmIngestModel(gpus_per_node, base_rate, bytes_per_sample)
        return [
            (gpu, base.scaled_to_gpu(gpu, baseline).node_ingest_rate())
            for gpu in GPU_GENERATIONS
        ]


@dataclass(frozen=True)
class DataloaderSpec:
    """Shuffled sample fetches: high-concurrency random reads (Fig. 1)."""

    sample_bytes: int = 256 * KIB
    concurrency: int = 16  # prefetch workers
    dataset_bytes: int = 1 * GIB

    def fio_spec(self, runtime: float = 0.05) -> FioJobSpec:
        """As a runnable FIO job."""
        return FioJobSpec(
            rw="randread",
            bs=self.sample_bytes,
            numjobs=min(self.concurrency, 16),
            iodepth=max(1, self.concurrency // min(self.concurrency, 16)),
            runtime=runtime,
            size=self.dataset_bytes,
        )


@dataclass(frozen=True)
class ParameterLoadSpec:
    """Job-start parameter/optimizer-state loading: large sequential reads."""

    model_bytes: int = 80 * GIB  # a sharded H100-scale checkpoint
    readers: int = 8
    block: int = 1 * MIB

    def fio_spec(self, runtime: float = 0.05) -> FioJobSpec:
        """As a runnable FIO job."""
        return FioJobSpec(
            rw="read",
            bs=self.block,
            numjobs=self.readers,
            iodepth=8,
            runtime=runtime,
            size=min(self.model_bytes // self.readers, 2 * GIB),
        )


@dataclass(frozen=True)
class CheckpointSpec:
    """Periodic asynchronous checkpointing: large sequential writes."""

    state_bytes: int = 160 * GIB
    period_sec: float = 600.0
    writers: int = 8
    block: int = 1 * MIB

    @property
    def required_write_rate(self) -> float:
        """Bytes/s needed so a checkpoint drains within one period."""
        return self.state_bytes / self.period_sec

    def fio_spec(self, runtime: float = 0.05) -> FioJobSpec:
        """As a runnable FIO job."""
        return FioJobSpec(
            rw="write",
            bs=self.block,
            numjobs=self.writers,
            iodepth=8,
            runtime=runtime,
            size=min(self.state_bytes // self.writers, 2 * GIB),
        )


def llm_phase_specs() -> Dict[str, FioJobSpec]:
    """The three Fig. 1 phases as runnable FIO jobs."""
    return {
        "dataloader": DataloaderSpec().fio_spec(),
        "parameter_load": ParameterLoadSpec().fio_spec(),
        "checkpoint": CheckpointSpec().fio_spec(),
    }
