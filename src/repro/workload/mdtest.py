"""mdtest-style metadata workload.

DAOS's pitch includes "scalable metadata operations" (§2.4); HPC sites
measure that with mdtest: N concurrent ranks each create, stat and
unlink a private tree of small files.  This module reproduces that
driver against a mounted :class:`~repro.daos.dfs.DfsNamespace` — every
operation is a real DFS transaction through the RPC stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.daos.dfs import DfsNamespace
from repro.sim.core import Environment, Event

__all__ = ["MdtestSpec", "MdtestResult", "run_mdtest"]


@dataclass(frozen=True)
class MdtestSpec:
    """One mdtest run: ``ranks`` workers x ``files_per_rank`` files each."""

    ranks: int = 4
    files_per_rank: int = 32
    payload_bytes: int = 0  # 0 = empty files (pure metadata)

    def __post_init__(self) -> None:
        if self.ranks <= 0 or self.files_per_rank <= 0:
            raise ValueError("ranks and files_per_rank must be positive")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def total_files(self) -> int:
        return self.ranks * self.files_per_rank


@dataclass
class MdtestResult:
    """Operations per second for each phase."""

    spec: MdtestSpec
    create_per_sec: float
    stat_per_sec: float
    unlink_per_sec: float

    def __str__(self) -> str:
        return (
            f"mdtest ranks={self.spec.ranks} files={self.spec.total_files}: "
            f"create {self.create_per_sec:,.0f}/s, stat {self.stat_per_sec:,.0f}/s, "
            f"unlink {self.unlink_per_sec:,.0f}/s"
        )


def run_mdtest(
    env: Environment,
    ns: DfsNamespace,
    make_context,
    spec: MdtestSpec,
    root: str = "/mdtest",
) -> Generator[Event, None, MdtestResult]:
    """Run the three mdtest phases; use as a process (``yield from``).

    ``make_context`` is a callable returning a fresh job thread per rank
    (e.g. ``client.new_context`` or ``port.new_context``).
    """
    ctxs = [make_context() for _ in range(spec.ranks)]
    yield from ns.mkdir(ctxs[0], root)
    for r in range(spec.ranks):
        yield from ns.mkdir(ctxs[r], f"{root}/rank{r}")

    def paths(r: int) -> List[str]:
        return [f"{root}/rank{r}/f{i:05d}" for i in range(spec.files_per_rank)]

    def phase(op) -> Generator[Event, None, float]:
        t0 = env.now

        def rank_work(env, r):
            ctx = ctxs[r]
            for path in paths(r):
                yield from op(ctx, path)

        procs = [env.process(rank_work(env, r)) for r in range(spec.ranks)]
        yield env.all_of(procs)
        elapsed = env.now - t0
        return spec.total_files / elapsed if elapsed > 0 else 0.0

    def do_create(ctx, path):
        f = yield from ns.create(ctx, path)
        if spec.payload_bytes:
            yield from f.write(ctx, 0, nbytes=spec.payload_bytes)

    def do_stat(ctx, path):
        yield from ns.stat(ctx, path)

    def do_unlink(ctx, path):
        yield from ns.unlink(ctx, path)

    create_rate = yield from phase(do_create)
    stat_rate = yield from phase(do_stat)
    unlink_rate = yield from phase(do_unlink)
    return MdtestResult(spec, create_rate, stat_rate, unlink_rate)
