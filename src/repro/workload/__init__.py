"""Workload generation: the FIO-like driver and LLM pipeline models.

* :mod:`repro.workload.patterns` — offset streams (sequential per-job
  regions, aligned uniform random).
* :mod:`repro.workload.fio` — the FIO-equivalent job runner: numjobs x
  iodepth lanes against any engine adapter (io_uring, SPDK local, NVMe-oF
  initiator, DAOS client, ROS2 data port), with ramp-up exclusion and
  IOPS/bandwidth/latency reporting.
* :mod:`repro.workload.llm` — the paper's motivation (§2.1-2.2): the
  per-node ingest-rate model ``B ~ G * r * s``, and the three LLM I/O
  phases (dataloader shuffle reads, parameter loads, checkpoints) as
  runnable workload specs.
"""

from repro.workload.fio import FioJobSpec, FioResult, Ros2FioAdapter, run_fio
from repro.workload.mdtest import MdtestResult, MdtestSpec, run_mdtest
from repro.workload.llm import (
    CheckpointSpec,
    DataloaderSpec,
    LlmIngestModel,
    ParameterLoadSpec,
    llm_phase_specs,
)
from repro.workload.patterns import RandomPattern, SequentialPattern

__all__ = [
    "CheckpointSpec",
    "DataloaderSpec",
    "FioJobSpec",
    "FioResult",
    "LlmIngestModel",
    "MdtestResult",
    "MdtestSpec",
    "ParameterLoadSpec",
    "RandomPattern",
    "Ros2FioAdapter",
    "run_fio",
    "run_mdtest",
    "SequentialPattern",
    "llm_phase_specs",
]
