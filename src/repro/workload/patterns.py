"""Offset streams for the workload generator.

FIO's four POSIX workloads reduce to two access patterns: a sequential
cursor per job (``read``/``write``) and aligned uniform random offsets
(``randread``/``randwrite``).  Both live here so engines and tests share
one implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SequentialPattern", "RandomPattern"]


class SequentialPattern:
    """A wrapping sequential cursor over ``[start, start + span)``.

    Shared by all iodepth lanes of one job: each ``next()`` claims the
    next block, which is exactly FIO's per-job sequential semantics with
    queue depth.
    """

    __slots__ = ("start", "span", "block", "_cursor")

    def __init__(self, start: int, span: int, block: int) -> None:
        if span < block or block <= 0:
            raise ValueError(f"span {span} must hold at least one block of {block}")
        self.start = int(start)
        self.span = int(span) - int(span) % int(block)  # whole blocks only
        self.block = int(block)
        self._cursor = 0

    def next(self) -> int:
        """The next block-aligned offset (wraps at the end of the region)."""
        offset = self.start + self._cursor
        self._cursor += self.block
        if self._cursor >= self.span:
            self._cursor = 0
        return offset


class RandomPattern:
    """Aligned uniform random offsets over ``[start, start + span)``.

    Offsets are drawn in vectorized batches (one RNG call per 1024 I/Os),
    keeping the generator out of the simulator's hot loop.
    """

    __slots__ = ("start", "span", "block", "_rng", "_batch", "_idx")

    BATCH = 1024

    def __init__(self, start: int, span: int, block: int, rng: np.random.Generator) -> None:
        if span < block or block <= 0:
            raise ValueError(f"span {span} must hold at least one block of {block}")
        self.start = int(start)
        self.span = int(span)
        self.block = int(block)
        self._rng = rng
        self._batch = None
        self._idx = 0

    def _refill(self) -> None:
        n_blocks = self.span // self.block
        picks = self._rng.integers(0, n_blocks, size=self.BATCH, dtype=np.int64)
        self._batch = self.start + picks * self.block
        self._idx = 0

    def next(self) -> int:
        """The next random block-aligned offset."""
        if self._batch is None or self._idx >= self.BATCH:
            self._refill()
        offset = int(self._batch[self._idx])
        self._idx += 1
        return offset
