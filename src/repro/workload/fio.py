"""The FIO-equivalent workload driver.

One :class:`FioJobSpec` names everything the paper's sweeps vary — the
POSIX workload (``read``/``write``/``randread``/``randwrite``), block
size, ``numjobs``, ``iodepth``, runtime — and :func:`run_fio` drives any
engine *adapter* with it: ``numjobs`` job threads, each keeping
``iodepth`` operations in flight, with a ramp-up window excluded from the
measurement (FIO's ``ramp_time``).

An adapter is anything with::

    new_context(name=None) -> JobThread
    submit(ctx, offset, nbytes, is_write) -> generator

which :class:`~repro.storage.iouring.IoUringEngine`,
:class:`~repro.storage.spdk.SpdkLocalEngine` and
:class:`~repro.storage.spdk.NvmfInitiator` already satisfy;
:class:`Ros2FioAdapter` adds the ROS2 data port (FIO's DFS engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.core import Environment
from repro.sim.monitor import LatencyRecorder, RateMeter
from repro.sim.rng import RngStreams
from repro.workload.patterns import RandomPattern, SequentialPattern

__all__ = ["FioJobSpec", "FioResult", "Ros2FioAdapter", "run_fio", "WORKLOADS"]

#: The paper's four POSIX workloads (Fig. 3/4/5 row labels R, W, RR, RW).
WORKLOADS = ("read", "write", "randread", "randwrite")


@dataclass(frozen=True)
class FioJobSpec:
    """One FIO job file (the knobs the paper sweeps)."""

    rw: str = "read"
    bs: int = 4096
    numjobs: int = 1
    iodepth: int = 16
    runtime: float = 0.05  # measured window, simulated seconds
    ramp_time: float = 0.01  # warm-up excluded from the stats
    size: int = 256 * 1024 * 1024  # per-job region
    record_latency: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rw not in WORKLOADS:
            raise ValueError(f"rw must be one of {WORKLOADS}, got {self.rw!r}")
        if self.bs <= 0 or self.numjobs <= 0 or self.iodepth <= 0:
            raise ValueError("bs, numjobs and iodepth must be positive")
        if self.runtime <= 0 or self.ramp_time < 0:
            raise ValueError("runtime must be positive, ramp_time non-negative")
        if self.size < self.bs:
            raise ValueError(f"per-job size {self.size} smaller than bs {self.bs}")

    @property
    def is_write(self) -> bool:
        return self.rw in ("write", "randwrite")

    @property
    def is_random(self) -> bool:
        return self.rw in ("randread", "randwrite")


@dataclass
class FioResult:
    """What FIO prints at the end of a run."""

    spec: FioJobSpec
    total_ios: int
    elapsed: float
    iops: float
    bandwidth: float  # bytes/second
    latency: Dict[str, float] = field(default_factory=dict)
    #: Operations that failed with an error inside the measured window
    #: (nonzero only under fault injection).
    errors: int = 0

    @property
    def bandwidth_gib(self) -> float:
        """Bandwidth in GiB/s (the paper's large-block unit)."""
        return self.bandwidth / 2**30

    @property
    def kiops(self) -> float:
        """Thousands of IOPS (the paper's small-block unit)."""
        return self.iops / 1e3

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable result record (the JSON bench artefacts)."""
        return {
            "spec": {
                "rw": self.spec.rw,
                "bs": self.spec.bs,
                "numjobs": self.spec.numjobs,
                "iodepth": self.spec.iodepth,
                "runtime": self.spec.runtime,
                "ramp_time": self.spec.ramp_time,
                "size": self.spec.size,
            },
            "total_ios": self.total_ios,
            "elapsed": self.elapsed,
            "iops": self.iops,
            "bandwidth": self.bandwidth,
            "bandwidth_gib": self.bandwidth_gib,
            "kiops": self.kiops,
            "latency": dict(self.latency),
            # Conditional so no-fault artefacts stay byte-identical to the
            # records committed before fault injection existed.
            **({"errors": self.errors} if self.errors else {}),
        }

    def __str__(self) -> str:
        return (
            f"{self.spec.rw} bs={self.spec.bs} jobs={self.spec.numjobs} "
            f"qd={self.spec.iodepth}: {self.iops:,.0f} IOPS, "
            f"{self.bandwidth_gib:.2f} GiB/s"
        )


class Ros2FioAdapter:
    """FIO's DFS engine: drive one open ROS2 file through the data port."""

    def __init__(self, port, fh: int) -> None:
        self.port = port
        self.fh = fh

    def new_context(self, name: Optional[str] = None):
        return self.port.new_context(name)

    def submit(self, ctx, offset: int, nbytes: int, is_write: bool, trace=None):
        if is_write:
            return self.port.write(ctx, self.fh, offset, nbytes=nbytes, trace=trace)
        return self.port.read(ctx, self.fh, offset, nbytes, trace=trace)


def run_fio(
    env: Environment,
    adapter,
    spec: FioJobSpec,
    until_extra: float = 0.0,
    collector=None,
) -> FioResult:
    """Run one FIO job spec to completion and report the measured window.

    The caller must have finished all setup processes (engines started,
    files created and pre-filled); this call advances the simulation by
    ``ramp_time + runtime`` seconds.

    When ``collector`` (a :class:`~repro.sim.spans.SpanCollector`) is given,
    each measured operation may start a sampled trace whose root span covers
    submit-to-completion; the adapter and every layer below annotate it with
    per-stage child spans.  With ``collector=None`` the hot loop issues the
    exact same calls as before tracing existed.
    """
    rng = RngStreams(spec.seed)
    meter = RateMeter(env, "fio")
    # Per-job recorders, merged at report time — exactly how real FIO
    # accounts latency (one log per job, folded into the group report).
    job_lats = [LatencyRecorder(f"fio.lat.j{j}", enabled=spec.record_latency)
                for j in range(spec.numjobs)]
    t_start = env.now
    measure_from = t_start + spec.ramp_time
    t_end = measure_from + spec.runtime
    stop = [False]
    errors = [0]

    fx = env._faults
    if fx is not None:
        # Fault event times are relative to the measured window so a plan
        # written for one spec ports across ramp times unchanged.
        if fx.armed_at is None:
            fx.arm(measure_from)
        from repro.daos.types import DaosError
        from repro.faults.errors import FaultInjectedError
        from repro.net.rdma import RdmaError
        op_errors = (DaosError, FaultInjectedError, RdmaError, ConnectionError)
    else:
        op_errors = ()

    def lane(env, ctx, pattern, lat):
        while not stop[0]:
            offset = pattern.next()
            t0 = env.now
            if collector is not None and t0 >= measure_from:
                tr = collector.trace(f"fio.{spec.rw}", nbytes=spec.bs)
            else:
                tr = None
            if fx is None:
                # The exact pre-chaos hot loop: no counters, no try frame.
                if tr is not None:
                    yield from adapter.submit(ctx, offset, spec.bs,
                                              spec.is_write, trace=tr.root)
                    tr.finish()
                else:
                    yield from adapter.submit(ctx, offset, spec.bs,
                                              spec.is_write)
            else:
                fx.stats.submitted += 1
                try:
                    if tr is not None:
                        yield from adapter.submit(ctx, offset, spec.bs,
                                                  spec.is_write, trace=tr.root)
                    else:
                        yield from adapter.submit(ctx, offset, spec.bs,
                                                  spec.is_write)
                except op_errors:
                    fx.stats.failed += 1
                    if tr is not None:
                        tr.finish()
                    if env.now >= measure_from:
                        errors[0] += 1
                    continue
                fx.stats.completed += 1
                if tr is not None:
                    tr.finish()
            if env.now >= measure_from:
                meter.record(spec.bs)
                lat.record(env.now - t0)

    for j in range(spec.numjobs):
        ctx = adapter.new_context(f"fio.job{j}")
        region_start = j * spec.size
        if spec.is_random:
            pattern = RandomPattern(
                region_start, spec.size, spec.bs, rng.stream(f"job{j}")
            )
        else:
            pattern = SequentialPattern(region_start, spec.size, spec.bs)
        for _ in range(spec.iodepth):
            env.process(lane(env, ctx, pattern, job_lats[j]), name=f"fio.j{j}")

    # Let the ramp pass, reset the window, then measure.
    env.run(until=measure_from)
    meter.reset()
    for rec in job_lats:
        rec.clear()
    env.run(until=t_end + until_extra)
    stop[0] = True
    # Drain: in-flight operations complete but no new ones are issued.
    elapsed = meter.elapsed()
    lat = LatencyRecorder("fio.lat", enabled=spec.record_latency)
    for rec in job_lats:
        lat.merge(rec)
    return FioResult(
        spec=spec,
        total_ios=meter.ops,
        elapsed=elapsed,
        iops=meter.ops_per_sec(),
        bandwidth=meter.bytes_per_sec(),
        latency=lat.summary() if spec.record_latency else {},
        errors=errors[0],
    )
