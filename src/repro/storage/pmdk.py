"""PMDK storage-class-memory tier.

The DAOS engine keeps metadata and small records on SCM through PMDK and
bulk data on NVMe through SPDK (§3.3).  SCM is byte-addressable: loads and
stores cost a fixed media latency plus a per-byte streaming cost through
the DIMM's bandwidth, with no block/IOPS structure.  The functional store
is optional, as with the block device.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.specs import GIB, US
from repro.sim.core import Environment, Event
from repro.sim.monitor import RateMeter
from repro.sim.queues import FifoServer
from repro.storage.sparse import SparseBytes

__all__ = ["PmemPool"]

#: Optane-class DIMM set: streaming bandwidth and access latency.
PMEM_BANDWIDTH = 8.0 * GIB
PMEM_READ_LATENCY = 0.17 * US
PMEM_WRITE_LATENCY = 0.30 * US  # includes the flush/fence on the persist path


class PmemPool:
    """A persistent-memory pool (one DAOS SCM target)."""

    def __init__(
        self,
        env: Environment,
        capacity_bytes: int,
        data_mode: bool = False,
        bandwidth: float = PMEM_BANDWIDTH,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.env = env
        self.capacity_bytes = int(capacity_bytes)
        self.allocated = 0
        self._dimm = FifoServer(env, rate=bandwidth, name="scm.dimm")
        self._store: Optional[SparseBytes] = (
            SparseBytes(capacity_bytes) if data_mode else None
        )
        self.reads = RateMeter(env, "pmem.reads")
        self.writes = RateMeter(env, "pmem.writes")

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0:
            raise ValueError(f"bad pmem range ({offset}, {nbytes})")
        if offset + nbytes > self.capacity_bytes:
            raise ValueError(
                f"range [{offset}, +{nbytes}) beyond pmem capacity {self.capacity_bytes}"
            )

    def persist(
        self, offset: int, nbytes: Optional[int] = None, data: Optional[bytes] = None
    ) -> Generator[Event, None, None]:
        """Store + flush ``data`` (or a virtual ``nbytes``) durably."""
        if nbytes is None:
            if data is None:
                raise ValueError("persist needs data or an explicit nbytes")
            nbytes = len(data)
        self._check(offset, nbytes)
        yield self._dimm.serve_units(nbytes)
        yield self.env.timeout(PMEM_WRITE_LATENCY)
        if self._store is not None and data is not None:
            self._store.write(offset, data)
        self.writes.record(nbytes)

    def load(
        self, offset: int, nbytes: int
    ) -> Generator[Event, None, Optional[bytes]]:
        """Load ``nbytes``; returns bytes in data mode."""
        self._check(offset, nbytes)
        yield self._dimm.serve_units(nbytes)
        yield self.env.timeout(PMEM_READ_LATENCY)
        self.reads.record(nbytes)
        if self._store is not None:
            return self._store.read(offset, nbytes)
        return None

    def reserve(self, nbytes: int) -> int:
        """Bump-allocate ``nbytes``; returns the offset.

        The VOS allocator above manages real placement; this only enforces
        the capacity envelope.
        """
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if self.allocated + nbytes > self.capacity_bytes:
            raise MemoryError(
                f"pmem pool exhausted ({self.allocated}+{nbytes} > {self.capacity_bytes})"
            )
        offset = self.allocated
        self.allocated += nbytes
        return offset
