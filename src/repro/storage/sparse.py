"""A sparse byte store for functional (data-carrying) device modes.

Backs :class:`~repro.storage.block.BlockDevice` and the PMDK tier when
tests need real end-to-end data integrity.  Pages are materialized lazily
(4 KiB each); unwritten ranges read back as zeros, like a fresh SSD
namespace.  Page-level ``memoryview`` slicing keeps copies to the exact
byte ranges touched, per the HPC guide's "views, not copies" rule.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SparseBytes"]

PAGE_SIZE = 4096


class SparseBytes:
    """A sparse, zero-default byte array of arbitrary logical size."""

    __slots__ = ("size", "_pages")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = int(size)
        self._pages: Dict[int, bytearray] = {}

    def __len__(self) -> int:
        return self.size

    @property
    def pages_materialized(self) -> int:
        """Number of 4 KiB pages currently allocated."""
        return len(self._pages)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0:
            raise ValueError(f"negative offset/length ({offset}, {nbytes})")
        if offset + nbytes > self.size:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) exceeds store size {self.size}"
            )

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``."""
        self._check(offset, len(data))
        src = memoryview(data)
        pos = offset
        taken = 0
        remaining = len(data)
        while remaining > 0:
            page_no, page_off = divmod(pos, PAGE_SIZE)
            take = min(remaining, PAGE_SIZE - page_off)
            page = self._pages.get(page_no)
            if page is None:
                page = self._pages[page_no] = bytearray(PAGE_SIZE)
            page[page_off:page_off + take] = src[taken:taken + take]
            pos += take
            taken += take
            remaining -= take

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset`` (zeros where never written)."""
        self._check(offset, nbytes)
        out = bytearray(nbytes)
        pos = offset
        filled = 0
        remaining = nbytes
        while remaining > 0:
            page_no, page_off = divmod(pos, PAGE_SIZE)
            take = min(remaining, PAGE_SIZE - page_off)
            page = self._pages.get(page_no)
            if page is not None:
                out[filled:filled + take] = memoryview(page)[page_off:page_off + take]
            pos += take
            filled += take
            remaining -= take
        return bytes(out)

    def punch(self, offset: int, nbytes: int) -> None:
        """Zero a range, dropping fully-covered pages."""
        self._check(offset, nbytes)
        pos = offset
        remaining = nbytes
        while remaining > 0:
            page_no, page_off = divmod(pos, PAGE_SIZE)
            take = min(remaining, PAGE_SIZE - page_off)
            if page_off == 0 and take == PAGE_SIZE:
                self._pages.pop(page_no, None)
            else:
                page = self._pages.get(page_no)
                if page is not None:
                    page[page_off:page_off + take] = bytes(take)
            pos += take
            remaining -= take
