"""Serial execution contexts for submission paths.

An FIO job, an SPDK reactor, or a DAOS engine xstream is one thread: its
CPU work is inherently serial even when the node has idle cores, and that
serialism — not core count — is what bounds per-job IOPS in Fig. 3
(~80 K per job at ~11.5 us/op).  :class:`JobThread` captures exactly that:
a FIFO server the engine charges per-op CPU costs to, while device and
network phases overlap freely across in-flight operations.

All the paper's configurations run at most as many job threads as the
node has cores (16 jobs on the 16-core DPU, up to 16 on the 48-core
host), so thread-level serialization is the accurate constraint and no
additional core-contention stage is modeled for client submission work.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Environment, Timeout
from repro.sim.queues import FifoServer

__all__ = ["JobThread"]


class JobThread:
    """One serial submission thread, with an architecture speed factor."""

    __slots__ = ("env", "name", "factor", "_server")

    def __init__(self, env: Environment, name: str, factor: float = 1.0) -> None:
        self.env = env
        self.name = name
        #: Multiplier applied to every x86-baseline cost (host cycle factor).
        self.factor = float(factor)
        self._server = FifoServer(env, name=name)

    def run(self, x86_cost: float) -> Timeout:
        """Execute ``x86_cost`` seconds of baseline work on this thread."""
        return self._server.serve(x86_cost * self.factor)

    @property
    def busy_time(self) -> float:
        """Cumulative seconds of thread CPU time."""
        return self._server.busy_time

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the thread was executing."""
        return self._server.utilization(elapsed)
