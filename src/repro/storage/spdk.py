"""SPDK user-space NVMe driver and NVMe-over-Fabrics target/initiator.

This is the Fig. 4 machinery: a storage node exposes one (or more) NVMe
namespaces through an :class:`NvmfTarget`; a client drives it remotely
with an :class:`NvmfInitiator` over any fabric provider.  The protocol
mirrors NVMe-oF's structure:

1. the initiator sends a small command capsule (op, offset, length, and
   the descriptor of a client memory window for the data),
2. the target executes the backend I/O on its user-space driver, then
   moves the payload with **one-sided RMA into/out of the client window**
   (RDMA providers: zero client CPU; TCP providers: the ``ofi_rxm``
   emulation pays full two-sided CPU — the whole point of the figure),
3. the target returns a completion capsule the initiator demultiplexes by
   command id.

Everything runs on explicit reactor threads (:class:`JobThread`), and all
CPU costs ride the owning node's architecture factors, so the same code
produces host and DPU results.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, Optional

from repro.hw.platform import ComputeNode, Node
from repro.hw.specs import SPDK_PATH, US, StoragePathCosts
from repro.net.fabric import FabricChannel, RemoteRegion
from repro.net.message import Message
from repro.sim.core import Environment, Event, Process
from repro.storage.block import BlockDevice
from repro.storage.context import JobThread

__all__ = ["SpdkLocalEngine", "NvmfTarget", "NvmfInitiator"]

#: Per-command CPU on the target's poller (parse capsule, post backend IO,
#: build completion) — SPDK's polled target path, no syscalls.
TARGET_CPU_PER_OP = 1.2 * US


class SpdkLocalEngine:
    """Local user-space NVMe access (no kernel in the path)."""

    def __init__(
        self,
        node: Node,
        device: BlockDevice,
        costs: StoragePathCosts = SPDK_PATH,
    ) -> None:
        self.node = node
        self.env = node.env
        self.device = device
        self.costs = costs
        self._threads = 0

    def new_context(self, name: Optional[str] = None) -> JobThread:
        """Create one reactor thread."""
        self._threads += 1
        return JobThread(
            self.env,
            name or f"{self.node.name}.spdk.reactor{self._threads}",
            factor=self.node.spec.cycle_factor,
        )

    def submit(
        self,
        ctx: JobThread,
        offset: int,
        nbytes: int,
        is_write: bool,
        data: Optional[bytes] = None,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """One local NVMe command through the user-space driver."""
        costs = self.costs
        span = None
        if trace is not None:
            span = trace.child("spdk.submit", node=self.node.name, nbytes=nbytes)
        yield ctx.run(costs.submit_cpu_per_op)
        if span is not None:
            span.finish()
        if is_write:
            yield from self.device.write(
                offset, nbytes=nbytes, data=data,
                bw_efficiency=costs.write_bw_efficiency, trace=trace,
            )
            result = None
        else:
            result = yield from self.device.read(
                offset, nbytes, bw_efficiency=costs.read_bw_efficiency, trace=trace
            )
        span = None
        if trace is not None:
            span = trace.child("spdk.complete", node=self.node.name)
        yield ctx.run(costs.complete_cpu_per_op)
        if span is not None:
            span.finish()
        return result


class NvmfTarget:
    """The NVMe-oF target on the storage node."""

    def __init__(
        self,
        node: ComputeNode,
        device: BlockDevice,
        cpu_per_op: float = TARGET_CPU_PER_OP,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.device = device
        self.cpu_per_op = cpu_per_op
        self.commands_served = 0
        self._loops: list = []

    def serve(self, channel: FabricChannel) -> Process:
        """Start servicing command capsules arriving on ``channel``."""
        proc = self.env.process(self._serve_loop(channel), name="nvmf-target")
        self._loops.append(proc)
        return proc

    def _serve_loop(self, channel: FabricChannel):
        name = self.node.name
        while True:
            msg = yield channel.recv(name)
            if msg.kind == "nvmf.shutdown":
                return
            self.env.process(self._handle(channel, msg), name="nvmf-cmd")

    def _handle(self, channel: FabricChannel, msg: Message):
        cmd = msg.payload
        op = cmd["op"]
        offset = cmd["offset"]
        nbytes = cmd["nbytes"]
        region: Optional[RemoteRegion] = cmd.get("region")

        # The command capsule carries the initiator's span (like the DAOS
        # RPC capsule); target-side work hangs off a handler child span.
        trace = msg.meta.get("trace") if msg.meta else None
        span = None
        if trace is not None:
            span = trace.child("nvmf.target", node=self.node.name, nbytes=nbytes)

        yield self.node.cpu.execute(self.cpu_per_op)

        if op == "write":
            # Pull the payload from the client window, then hit the media.
            data = None
            if region is not None:
                data = yield from channel.rma_read(self.node.name, region, nbytes,
                                                   trace=span)
            yield from self.device.write(offset, nbytes=nbytes, data=data, trace=span)
        elif op == "read":
            data = yield from self.device.read(offset, nbytes, trace=span)
            if region is not None:
                yield from channel.rma_write(
                    self.node.name, region, payload=data, nbytes=nbytes, trace=span
                )
        else:
            raise ValueError(f"unknown NVMe-oF op {op!r}")

        if span is not None:
            span.finish()
        self.commands_served += 1
        yield from channel.send(msg.reply_to(kind="nvmf.cpl", payload={"status": "ok"}))


class NvmfInitiator:
    """The client-side NVMe-oF driver over one fabric channel (one qpair)."""

    _cid = itertools.count(1)

    def __init__(
        self,
        node: ComputeNode,
        channel: FabricChannel,
        costs: StoragePathCosts = SPDK_PATH,
        data_mode: bool = False,
        io_window_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        self.node = node
        self.env: Environment = node.env
        self.channel = channel
        self.costs = costs
        self.data_mode = bool(data_mode)
        self.target_name = channel.peer_of(node.name)
        self._pending: Dict[int, Event] = {}
        self._demux: Optional[Process] = None
        self._threads = 0
        # Performance mode: one pre-registered window reused by every
        # command (real initiators pre-register their buffer pools).
        self._window: Optional[RemoteRegion] = None
        if not data_mode:
            self._window = channel.register(node.name, io_window_bytes)

    def start(self) -> "NvmfInitiator":
        """Spawn the completion demultiplexer; call once before I/O."""
        if self._demux is None:
            self._demux = self.env.process(self._demux_loop(), name="nvmf-demux")
        return self

    def _demux_loop(self):
        name = self.node.name
        while True:
            msg = yield self.channel.recv(name)
            waiter = self._pending.pop(msg.tag, None)
            if waiter is not None:
                waiter.succeed(msg)

    def new_context(self, name: Optional[str] = None) -> JobThread:
        """Create one submission reactor thread."""
        self._threads += 1
        return JobThread(
            self.env,
            name or f"{self.node.name}.nvmf.reactor{self._threads}",
            factor=self.node.spec.cycle_factor,
        )

    def submit(
        self,
        ctx: JobThread,
        offset: int,
        nbytes: int,
        is_write: bool,
        data: Optional[bytes] = None,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """One remote NVMe command; completes at the completion capsule."""
        if self._demux is None:
            raise RuntimeError("initiator not started; call start() first")
        costs = self.costs
        env = self.env
        cid = next(NvmfInitiator._cid)

        span = None
        if trace is not None:
            span = trace.child("nvmf.cmd", node=self.node.name, nbytes=nbytes)

        yield ctx.run(costs.submit_cpu_per_op)

        buffer = None
        region = self._window
        if self.data_mode:
            # Functional mode: per-command window carrying real bytes.
            buffer = bytearray(nbytes)
            if is_write and data is not None:
                buffer[:] = data
            region = self.channel.register(self.node.name, nbytes, buffer=buffer)

        done = env.event()
        self._pending[cid] = done
        capsule = Message(
            src=self.node.name,
            dst=self.target_name,
            kind="nvmf.cmd",
            tag=cid,
            payload={
                "op": "write" if is_write else "read",
                "offset": offset,
                "nbytes": nbytes,
                "region": region,
            },
            nbytes=96,
            meta={"trace": span} if span is not None else {},
        )
        yield from self.channel.send(capsule)
        yield done
        yield ctx.run(costs.complete_cpu_per_op)
        if span is not None:
            span.finish()

        result: Optional[bytes] = None
        if self.data_mode:
            if not is_write:
                result = bytes(buffer)
            self.channel.deregister(region)
        return result

    def shutdown(self) -> Generator[Event, None, None]:
        """Ask the target loop on this channel to exit."""
        yield from self.channel.send(
            Message(src=self.node.name, dst=self.target_name, kind="nvmf.shutdown",
                    nbytes=16)
        )
