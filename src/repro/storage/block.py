"""Logical block device over the NVMe array.

Adds two things to :class:`~repro.hw.nvme.NvmeArray`:

* a single flat byte-addressed namespace with bounds checking, and
* an optional **functional byte store** (``data_mode=True``) so tests and
  examples can verify actual data round-trips through every layer above.
  Performance benches leave it off — moving real megabytes per simulated
  I/O would only burn host memory bandwidth.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.nvme import NvmeArray
from repro.sim.core import Event
from repro.storage.sparse import SparseBytes

__all__ = ["BlockDevice"]


class BlockDevice:
    """A flat logical device striped across the NVMe array."""

    def __init__(self, array: NvmeArray, data_mode: bool = False) -> None:
        self.array = array
        self.env = array.env
        self.data_mode = bool(data_mode)
        self._store: Optional[SparseBytes] = (
            SparseBytes(array.capacity_bytes) if data_mode else None
        )

    @property
    def capacity_bytes(self) -> int:
        """Total logical capacity."""
        return self.array.capacity_bytes

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if nbytes <= 0:
            raise ValueError(f"I/O size must be positive, got {nbytes}")
        if offset + nbytes > self.capacity_bytes:
            raise ValueError(
                f"I/O [{offset}, +{nbytes}) beyond device capacity {self.capacity_bytes}"
            )

    def read(
        self, offset: int, nbytes: int, bw_efficiency: float = 1.0, trace=None
    ) -> Generator[Event, None, Optional[bytes]]:
        """Read; returns bytes in data mode, None otherwise."""
        self._check(offset, nbytes)
        yield from self.array.submit(offset, nbytes, is_write=False,
                                     bw_efficiency=bw_efficiency, trace=trace)
        if self._store is not None:
            return self._store.read(offset, nbytes)
        return None

    def write(
        self,
        offset: int,
        nbytes: Optional[int] = None,
        data: Optional[bytes] = None,
        bw_efficiency: float = 1.0,
        trace=None,
    ) -> Generator[Event, None, None]:
        """Write ``data`` (or a virtual payload of ``nbytes``)."""
        if nbytes is None:
            if data is None:
                raise ValueError("write needs data or an explicit nbytes")
            nbytes = len(data)
        if data is not None and len(data) != nbytes:
            raise ValueError(f"data of {len(data)} bytes but nbytes={nbytes}")
        self._check(offset, nbytes)
        yield from self.array.submit(offset, nbytes, is_write=True,
                                     bw_efficiency=bw_efficiency, trace=trace)
        if self._store is not None and data is not None:
            self._store.write(offset, data)
