"""Kernel io_uring local storage engine (the Fig. 3 baseline path).

Per-I/O costs: the submitting job thread pays ``submit_cpu_per_op`` to
prepare and ring the SQ doorbell and ``complete_cpu_per_op`` to reap the
CQE; the device sees the kernel block layer's bandwidth efficiency
(:data:`~repro.hw.specs.IOURING_PATH`).  With iodepth > 1 the FIO layer
keeps several of these generators in flight per thread, so device time
overlaps while the thread's CPU phases serialize — reproducing the
~80 K IOPS/job submission-path limit the paper measures.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.platform import Node
from repro.hw.specs import IOURING_PATH, US, StoragePathCosts
from repro.sim.core import Event
from repro.storage.block import BlockDevice
from repro.storage.context import JobThread

__all__ = ["IoUringEngine", "BLOCK_LAYER_SERIAL_PER_OP"]

#: Host-wide serialized cost in the kernel block layer (tag allocation,
#: completion locks).  This is the "software/host-path limit rather than a
#: single-drive media limit" the paper identifies in Fig. 3b/d: ~1.6 us/IO
#: caps the node at ~620 K IOPS regardless of drive count.
BLOCK_LAYER_SERIAL_PER_OP = 1.6 * US


class IoUringEngine:
    """Local POSIX I/O through io_uring onto the node's NVMe array."""

    def __init__(
        self,
        node: Node,
        device: BlockDevice,
        costs: StoragePathCosts = IOURING_PATH,
    ) -> None:
        self.node = node
        self.env = node.env
        self.device = device
        self.costs = costs
        self._block_layer = node.lock("block_layer")
        self._threads = 0

    def new_context(self, name: Optional[str] = None) -> JobThread:
        """Create one job thread (an FIO job)."""
        self._threads += 1
        return JobThread(
            self.env,
            name or f"{self.node.name}.iouring.job{self._threads}",
            factor=self.node.spec.cycle_factor,
        )

    def submit(
        self,
        ctx: JobThread,
        offset: int,
        nbytes: int,
        is_write: bool,
        data: Optional[bytes] = None,
        trace=None,
    ) -> Generator[Event, None, Optional[bytes]]:
        """One POSIX read/write; completes when the CQE is reaped."""
        costs = self.costs
        span = None
        if trace is not None:
            span = trace.child("iouring.submit", node=self.node.name, nbytes=nbytes)
        yield ctx.run(costs.submit_cpu_per_op)
        yield self._block_layer.enter(BLOCK_LAYER_SERIAL_PER_OP)
        if span is not None:
            span.finish()
        eff = costs.write_bw_efficiency if is_write else costs.read_bw_efficiency
        if is_write:
            yield from self.device.write(offset, nbytes=nbytes, data=data,
                                         bw_efficiency=eff, trace=trace)
            result = None
        else:
            result = yield from self.device.read(offset, nbytes, bw_efficiency=eff,
                                                 trace=trace)
        span = None
        if trace is not None:
            span = trace.child("iouring.complete", node=self.node.name)
        yield ctx.run(costs.complete_cpu_per_op)
        if span is not None:
            span.finish()
        return result
