"""Storage stacks: local kernel io_uring, user-space SPDK/NVMe-oF, PMDK SCM.

These are the three storage tiers the paper's evaluation climbs through:

* :mod:`repro.storage.iouring` — the kernel io_uring path used for the
  local device-ceiling baselines (Fig. 3).
* :mod:`repro.storage.spdk` — the user-space NVMe driver plus the NVMe
  over Fabrics target/initiator pair used for the remote transport
  comparison (Fig. 4).
* :mod:`repro.storage.pmdk` — byte-addressable storage-class memory, the
  metadata/small-I/O tier of the DAOS engine (§3.3).
* :mod:`repro.storage.block` / :mod:`repro.storage.sparse` — the logical
  block device over the NVMe array, with an optional functional byte store
  for end-to-end data-integrity tests.
* :mod:`repro.storage.context` — serial execution contexts (job threads /
  reactor cores) that submission paths run on.
"""

from repro.storage.block import BlockDevice
from repro.storage.context import JobThread
from repro.storage.iouring import IoUringEngine
from repro.storage.pmdk import PmemPool
from repro.storage.sparse import SparseBytes
from repro.storage.spdk import NvmfInitiator, NvmfTarget, SpdkLocalEngine

__all__ = [
    "BlockDevice",
    "IoUringEngine",
    "JobThread",
    "NvmfInitiator",
    "NvmfTarget",
    "PmemPool",
    "SparseBytes",
    "SpdkLocalEngine",
]
