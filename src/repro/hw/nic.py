"""Network links and the 100 Gbps switch.

The testbed topology (§4.1) is a handful of nodes behind one switch whose
port rate (100 Gbps) is the binding constraint for multi-SSD runs.  We
model each node port as a TX pipe and an RX pipe at the port rate; a
transfer crosses the sender's TX port and the receiver's RX port, so both
egress and ingress contention are represented (ingress contention at the
DPU is what multi-tenant experiments stress).
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.hw.specs import LinkSpec
from repro.sim.core import Environment, Event
from repro.sim.queues import BandwidthPipe

__all__ = ["Port", "DuplexLink", "Switch"]


class Port:
    """One switch port: independent TX and RX pipes at the port rate."""

    __slots__ = ("name", "tx", "rx")

    def __init__(self, env: Environment, name: str, spec: LinkSpec) -> None:
        self.name = name
        self.tx = BandwidthPipe(
            env, spec.rate_bytes, latency=0.0, chunk_bytes=spec.chunk_bytes,
            name=f"net.{name}.tx",
        )
        self.rx = BandwidthPipe(
            env, spec.rate_bytes, latency=0.0, chunk_bytes=spec.chunk_bytes,
            name=f"net.{name}.rx",
        )

    def bytes_sent(self) -> int:
        """Payload bytes that left through this port."""
        return self.tx.bytes_moved

    def bytes_received(self) -> int:
        """Payload bytes that arrived through this port."""
        return self.rx.bytes_moved


class Switch:
    """A store-and-forward switch connecting named node ports.

    ``transmit(src, dst, nbytes)`` moves payload bytes across ``src``'s TX
    pipe and ``dst``'s RX pipe, adding the one-way propagation delay once.
    The payload is scaled by ``1/goodput_efficiency`` by the *caller*
    (transport layer) so protocol overhead shows up as extra wire bytes.
    """

    def __init__(self, env: Environment, spec: LinkSpec) -> None:
        self.env = env
        self.spec = spec
        self.ports: Dict[str, Port] = {}

    def attach(self, name: str) -> Port:
        """Create (or return) the port for node ``name``."""
        port = self.ports.get(name)
        if port is None:
            port = self.ports[name] = Port(self.env, name, self.spec)
        return port

    def port(self, name: str) -> Port:
        """Look up an attached port."""
        try:
            return self.ports[name]
        except KeyError:
            raise KeyError(f"node {name!r} is not attached to the switch") from None

    def transmit(
        self, src: str, dst: str, wire_bytes: int, pre_delay: float = 0.0
    ) -> Generator[Event, None, None]:
        """Move ``wire_bytes`` from ``src`` to ``dst`` (generator; yield from).

        ``pre_delay`` lets transports merge a fixed stack latency they
        would otherwise sleep *immediately before* the crossing into the
        propagation event: one kernel event instead of two, firing at the
        bit-identical instant ``(now + pre_delay) + propagation`` the
        chained sleeps would have reached.
        """
        env = self.env
        if src == dst:
            if pre_delay:
                yield env.timeout(pre_delay)
            return  # loopback never touches the wire
        sport = self.port(src)
        dport = self.port(dst)
        propagation = self.spec.propagation
        if pre_delay:
            yield env.timeout_until((env.now + pre_delay) + propagation)
        elif propagation:
            # Zero-propagation links (ablations, loop-local fabrics) skip
            # the timeout(0) event entirely — same simulated time, one
            # fewer heap operation per crossing.
            yield env.timeout(propagation)
        yield from sport.tx.transfer(wire_bytes)
        yield from dport.rx.transfer(wire_bytes)


class DuplexLink:
    """A direct point-to-point link (two independent directions).

    Used where no switch is involved (e.g. the DPU's internal PCIe path to
    host memory in the GPUDirect ablation).
    """

    __slots__ = ("env", "spec", "_ab", "_ba", "a", "b")

    def __init__(
        self,
        env: Environment,
        a: str,
        b: str,
        rate_bytes: float,
        latency: float = 0.0,
        chunk_bytes: int = 64 * 1024,
    ) -> None:
        self.env = env
        self.a = a
        self.b = b
        self._ab = BandwidthPipe(env, rate_bytes, latency, chunk_bytes,
                                 name=f"link.{a}.{b}")
        self._ba = BandwidthPipe(env, rate_bytes, latency, chunk_bytes,
                                 name=f"link.{b}.{a}")

    def pipe(self, src: str, dst: str) -> BandwidthPipe:
        """The directional pipe from ``src`` to ``dst``."""
        if (src, dst) == (self.a, self.b):
            return self._ab
        if (src, dst) == (self.b, self.a):
            return self._ba
        raise KeyError(f"link {self.a!r}<->{self.b!r} does not connect {src!r}->{dst!r}")

    def transfer(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Event, None, None]:
        """Move ``nbytes`` from ``src`` to ``dst`` (generator; yield from)."""
        yield from self.pipe(src, dst).transfer(nbytes)
