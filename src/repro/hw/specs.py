"""Hardware specifications and performance-model calibration constants.

Everything the simulation needs to know about the paper's testbed (§4.1)
lives here, in one place, with the reasoning recorded next to each number.
Two kinds of constants coexist:

* **Datasheet values** — link rates, core counts, memory sizes, and the
  NVIDIA GPU generation table (paper Table 1).
* **Calibration values** — per-operation software costs chosen so that the
  simulated stack reproduces the *measured ceilings* the paper reports
  (Fig. 3 local FIO, Fig. 4 remote SPDK, Fig. 5 end-to-end DFS).  These are
  not predictions; they are the knobs that make the synthetic testbed
  behave like the physical one, as allowed by the reproduction brief.

Units: bytes, seconds.  ``KIB``/``MIB``/``GIB`` are binary; network *rates*
are decimal bits-per-second converted to bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "US",
    "NS",
    "NvmeSpec",
    "HostSpec",
    "LinkSpec",
    "TransportCosts",
    "GpuSpec",
    "NVME_SSD",
    "EPYC_HOST",
    "BLUEFIELD3",
    "PAPER_LINK",
    "TCP_COSTS",
    "RDMA_COSTS",
    "IOURING_PATH",
    "SPDK_PATH",
    "DAOS_PATH",
    "GPU_GENERATIONS",
]

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

US = 1e-6  # one microsecond in seconds
NS = 1e-9  # one nanosecond in seconds


# ---------------------------------------------------------------------------
# NVMe SSD
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class NvmeSpec:
    """One NVMe SSD.

    The device is modeled as a FIFO serializer whose per-operation cost is
    ``max(size / bandwidth, 1 / iops_cap)`` plus an access latency paid in
    parallel (it delays completion but does not consume device throughput).

    Calibration: the paper's local io_uring runs plateau at ~5.6 GiB/s
    sequential read / ~2.7 GiB/s write per device (Fig. 3a) while the
    user-space SPDK/DFS paths reach ~6.4 GiB/s on the same drive (Fig. 5b)
    — the difference is the kernel block layer, which we model as a
    path-efficiency factor in :data:`IOURING_PATH`, so the *raw* device is
    calibrated to the user-space ceiling.
    """

    name: str = "nvme-1.6tb"
    capacity_bytes: int = 1600 * 10**9
    read_bw: float = 6.45 * GIB  # raw sequential read, user-space ceiling
    write_bw: float = 2.9 * GIB  # raw sequential write
    read_iops_cap: float = 650_000.0  # 4 KiB random read media cap
    write_iops_cap: float = 600_000.0  # 4 KiB random write media cap
    read_latency: float = 78 * US  # NAND access latency floor
    write_latency: float = 18 * US  # write-cache absorbed

    def service_time(self, nbytes: int, is_write: bool) -> float:
        """Serialized device time for one operation of ``nbytes``."""
        if is_write:
            return max(nbytes / self.write_bw, 1.0 / self.write_iops_cap)
        return max(nbytes / self.read_bw, 1.0 / self.read_iops_cap)

    def access_latency(self, is_write: bool) -> float:
        """Parallel completion latency for one operation."""
        return self.write_latency if is_write else self.read_latency


#: The paper's storage server uses 4x NVMe SSDs, 6.4 TB total (§4.1).
NVME_SSD = NvmeSpec()


# ---------------------------------------------------------------------------
# CPU complexes
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class HostSpec:
    """A CPU complex (x86 host, BlueField-3 Arm SoC, or storage server).

    ``cycle_factor`` scales every per-operation CPU cost relative to the
    x86 baseline; ``lock_factor`` additionally scales costs in *serialized*
    sections (locks, single progress threads), which suffer more on the
    A78's weaker single-thread performance and cache hierarchy.

    ``tcp_rx_cores``/``tcp_rx_byte_factor`` encode the paper's central DPU
    observation: the BlueField-3 TCP *receive* path bottlenecks (§4.4,
    "good TX, weak RX"), because RX processing (softirq + copy) lands on a
    small number of Arm cores with much higher per-byte cost.
    """

    name: str
    cores: int
    dram_bytes: int
    cycle_factor: float = 1.0
    lock_factor: float = 1.0
    tcp_rx_cores: int = 4
    tcp_rx_byte_factor: float = 1.0
    description: str = ""


#: Dual-socket AMD EPYC 7443 client host: 48 physical cores, 251 GiB (§4.1).
#: We expose physical cores; SMT adds nothing in these I/O-bound runs.
EPYC_HOST = HostSpec(
    name="epyc-7443",
    cores=48,
    dram_bytes=251 * GIB,
    cycle_factor=1.0,
    lock_factor=1.0,
    tcp_rx_cores=4,
    tcp_rx_byte_factor=1.0,
    description="dual AMD EPYC 7443, 200Gb ConnectX-6 (client host)",
)

#: NVIDIA BlueField-3: 16 Arm Cortex-A78AE cores, 30 GiB DRAM (§4.1).
#: cycle_factor 2.2: A78AE at ~2 GHz vs EPYC Zen3 at ~2.85 GHz plus lower
#: IPC on the I/O-heavy paths; lock_factor 2.5: serialized sections
#: (contended atomics, LLC misses) degrade more than straight-line code —
#: this drives both the DPU TCP IOPS cap (2 us -> 5 us => ~200 K, Fig. 5c
#: bottom) and the DPU RDMA progress-context cap (1 us -> 2.5 us =>
#: ~400 K, the 20-40 % gap of Fig. 5d).  tcp_rx: RX processing confined
#: to 2 cores at 3.5x per-byte cost => ~2.1 GiB/s receive ceiling, the
#: 1.6-3.1 GiB/s read cap of Fig. 5a (bottom).
BLUEFIELD3 = HostSpec(
    name="bluefield-3",
    cores=16,
    dram_bytes=30 * GIB,
    cycle_factor=2.2,
    lock_factor=2.5,
    tcp_rx_cores=2,
    tcp_rx_byte_factor=3.5,
    description="BlueField-3 DPU: 16x Cortex-A78AE, ConnectX-7 (§2.5, §4.1)",
)

#: Storage server: 2 NUMA nodes, 128 cores; experiments pinned to NUMA 0
#: (64 cores) with 4 NVMe SSDs and a ConnectX-6 (§4.1).
STORAGE_SERVER = HostSpec(
    name="storage-server",
    cores=64,
    dram_bytes=251 * GIB,
    cycle_factor=1.0,
    lock_factor=1.0,
    description="storage server NUMA node 0: 64 cores, 4x NVMe, CX-6",
)


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class LinkSpec:
    """A switched network path between two nodes.

    The paper's client and storage server connect through a 100 Gbps
    switch, which "constrains the maximum throughput especially when
    multiple SSDs are enabled" (§4.1).
    """

    name: str = "switch-100g"
    rate_bits: float = 100e9  # 100 Gbps switch port
    propagation: float = 1.5 * US  # one-way switch + wire latency
    mtu_bytes: int = 4096  # RoCE/Ethernet jumbo-ish MTU
    chunk_bytes: int = 64 * KIB  # simulation interleave granularity

    @property
    def rate_bytes(self) -> float:
        """Raw link rate in bytes/second (11.64 GiB/s for 100 Gbps)."""
        return self.rate_bits / 8.0


PAPER_LINK = LinkSpec()


# ---------------------------------------------------------------------------
# Transport cost models
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class TransportCosts:
    """Per-operation and per-byte software costs of one transport.

    All CPU costs are expressed for the x86 baseline and are scaled by each
    host's ``cycle_factor``/``lock_factor``/``tcp_rx_byte_factor``.

    * ``tx_cpu_per_op`` / ``rx_cpu_per_op`` — parallelizable per-message
      CPU work on the sending/receiving host (syscalls, interrupts,
      doorbells, CQ polling).
    * ``tx_cpu_per_byte`` / ``rx_cpu_per_byte`` — copy/checksum work; zero
      for RDMA (zero-copy, kernel bypass).
    * ``stack_serial_per_op`` — cost in the host-wide serialized section of
      the stack (TCP: softirq/socket locks; RDMA: none).
    * ``goodput_efficiency`` — payload/wire ratio through the link
      (headers, acks, retransmit headroom).
    * ``per_conn_byte_cost`` — serialized per-connection/QP processing; for
      TCP this is the classic single-stream ceiling, for RDMA the NIC
      processes at line rate.
    * ``rtt_overhead`` — extra request/response latency of the stack
      beyond wire propagation.
    * ``rendezvous_threshold`` — messages above this size use a rendezvous
      (RTS/CTS) exchange costing one extra RTT but enabling zero-copy.
    """

    name: str
    tx_cpu_per_op: float
    rx_cpu_per_op: float
    tx_cpu_per_byte: float
    rx_cpu_per_byte: float
    stack_serial_per_op: float
    goodput_efficiency: float
    per_conn_byte_cost: float
    rtt_overhead: float
    rendezvous_threshold: Optional[int] = None
    zero_copy: bool = False
    kernel_bypass: bool = False


#: Kernel TCP (ofi+tcp / ucx+tcp providers).
#: Calibration: 8 us/op per side -> ~125 K 4 KiB IOPS per core;
#: 1 us serialized stack cost per message (one request + one response per
#: I/O -> 2 us/IO) -> ~500 K IOPS/host ceiling (Fig. 5c top), x2.5 on the
#: DPU -> ~200 K (Fig. 5c bottom); 0.17 ns/B per-connection processing ->
#: ~5.5 GiB/s single-stream (Fig. 5a top, 1 SSD); RX copies at 0.25 ns/B
#: bound 1-core receive to ~3.7 GiB/s (Fig. 4a at 1 client core).
TCP_COSTS = TransportCosts(
    name="tcp",
    tx_cpu_per_op=8.0 * US,
    rx_cpu_per_op=8.0 * US,
    tx_cpu_per_byte=0.10 * NS,
    rx_cpu_per_byte=0.25 * NS,
    stack_serial_per_op=1.0 * US,
    goodput_efficiency=0.88,
    per_conn_byte_cost=0.17 * NS,
    rtt_overhead=28.0 * US,
    rendezvous_threshold=None,
    zero_copy=False,
    kernel_bypass=False,
)

#: RDMA verbs (ucx+rc / ucx+dc_x / ofi+verbs providers, IB or RoCEv2).
#: Calibration: 1.6 us post+poll per op on the initiator, 1.0 us on the
#: target (SPDK/engine polls its CQ); no per-byte CPU anywhere (zero-copy
#: DMA); goodput 0.93 (RoCE headers + ECN headroom) -> ~10.8 GiB/s on the
#: 100 Gb link (Fig. 5b, 4 SSDs); rendezvous above 16 KiB.
RDMA_COSTS = TransportCosts(
    name="rdma",
    tx_cpu_per_op=1.6 * US,
    rx_cpu_per_op=1.0 * US,
    tx_cpu_per_byte=0.0,
    rx_cpu_per_byte=0.0,
    stack_serial_per_op=0.0,
    goodput_efficiency=0.93,
    per_conn_byte_cost=0.0,
    rtt_overhead=4.0 * US,
    rendezvous_threshold=16 * KIB,
    zero_copy=True,
    kernel_bypass=True,
)


# ---------------------------------------------------------------------------
# Storage software path costs
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class StoragePathCosts:
    """Software costs of one storage stack layer (x86 baseline).

    * ``submit_cpu_per_op`` — per-I/O cost on the submitting thread.
    * ``complete_cpu_per_op`` — per-I/O completion-path cost.
    * ``read_bw_efficiency`` / ``write_bw_efficiency`` — fraction of raw
      device bandwidth the path can extract (kernel block layer tax).
    * ``serial_per_op`` — host-wide serialized cost (e.g. the DAOS client's
      single event-queue progress context).
    * ``per_byte_cpu`` — checksum/copy work per byte on the engine.
    """

    name: str
    submit_cpu_per_op: float
    complete_cpu_per_op: float
    read_bw_efficiency: float = 1.0
    write_bw_efficiency: float = 1.0
    serial_per_op: float = 0.0
    per_byte_cpu: float = 0.0


#: Local kernel io_uring path (Fig. 3).  11.5 us/op per job thread gives
#: the measured ~80 K IOPS per job; the block-layer efficiency factors
#: reduce the raw 6.45/2.9 GiB/s device to the observed 5.6/2.75 GiB/s.
IOURING_PATH = StoragePathCosts(
    name="io_uring",
    submit_cpu_per_op=7.5 * US,
    complete_cpu_per_op=4.0 * US,
    read_bw_efficiency=0.87,
    write_bw_efficiency=0.95,
)

#: SPDK user-space NVMe path (Fig. 4): polled, no syscalls, full raw
#: bandwidth; 2.4 us submit + 1.6 us complete -> ~250 K IOPS per core
#: initiator-side; target-side processing is 1 us/op on its poller.
SPDK_PATH = StoragePathCosts(
    name="spdk",
    submit_cpu_per_op=2.4 * US,
    complete_cpu_per_op=1.6 * US,
    read_bw_efficiency=1.0,
    write_bw_efficiency=1.0,
)

#: DAOS/DFS client+engine software (Fig. 5): DFS translation + object I/O
#: dispatch on the client (6 us/op) and VOS/engine service on the server
#: (5 us/op, on engine xstreams).  serial_per_op is the client's single
#: event-queue progress context: invisible on x86 (1 us -> 1 M cap, above
#: the 650 K media ceiling) but, scaled by BlueField's lock_factor 2.5,
#: it caps the DPU at ~400 K 4 KiB IOPS — the 20-40 % RDMA gap of Fig. 5d.
DAOS_PATH = StoragePathCosts(
    name="daos-dfs",
    submit_cpu_per_op=6.0 * US,
    complete_cpu_per_op=3.0 * US,
    read_bw_efficiency=1.0,
    write_bw_efficiency=1.0,
    serial_per_op=1.0 * US,
    per_byte_cpu=0.02 * NS,
)


# ---------------------------------------------------------------------------
# GPU generations (paper Table 1)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class GpuSpec:
    """One row of paper Table 1 (representative configurations)."""

    name: str
    architecture: str
    memory_gb: int
    memory_type: str
    mem_bw_gbs: float  # GB/s
    nvlink_gen: int
    nvlink_gbs: float  # per-GPU aggregate GB/s
    fp16_tflops: float
    fp8_tflops: Optional[float] = None
    fp4_tflops: Optional[float] = None

    @property
    def mem_bw_bytes(self) -> float:
        """HBM bandwidth in bytes/second."""
        return self.mem_bw_gbs * 1e9

    @property
    def nvlink_bytes(self) -> float:
        """NVLink per-GPU bandwidth in bytes/second."""
        return self.nvlink_gbs * 1e9


#: Paper Table 1, verbatim.
GPU_GENERATIONS: Tuple[GpuSpec, ...] = (
    GpuSpec("P100", "Pascal", 16, "HBM2", 732, 1, 80, 21.2),
    GpuSpec("V100", "Volta", 32, "HBM2", 1134, 2, 300, 130.0),
    GpuSpec("A100", "Ampere", 80, "HBM2e", 2000, 3, 600, 624.0),
    GpuSpec("H100", "Hopper", 80, "HBM3", 3350, 4, 900, 2000.0, 4000.0),
    GpuSpec("H200", "Hopper", 141, "HBM3e", 4800, 4, 900, 2000.0, 4000.0),
    GpuSpec("B200", "Blackwell", 186, "HBM3e", 8000, 5, 1800, 5000.0, 10000.0, 20000.0),
)

#: Name -> spec lookup for Table 1 rows.
GPU_BY_NAME: Dict[str, GpuSpec] = {g.name: g for g in GPU_GENERATIONS}
