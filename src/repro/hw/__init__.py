"""Calibrated hardware models for the ROS2 simulated testbed.

Each model is a queueing station built on :mod:`repro.sim`:

* :mod:`repro.hw.specs` — every datasheet/calibration constant, including
  the NVIDIA GPU generation table reproduced as paper Table 1.
* :mod:`repro.hw.cpu` — CPU core pools with per-architecture speed factors
  and named serialized sections (locks, single progress threads).
* :mod:`repro.hw.nvme` — NVMe SSD devices and striped arrays.
* :mod:`repro.hw.nic` — duplex network links and a store-and-forward switch.
* :mod:`repro.hw.dram` — DRAM buffer pools (host, DPU).
* :mod:`repro.hw.gpu` — GPU HBM sinks for the GPUDirect extension.
* :mod:`repro.hw.platform` — assembled host / DPU / storage-server nodes
  matching the paper's testbed (§4.1).
"""

from repro.hw.cpu import CpuPool, SerializedSection
from repro.hw.dram import DramPool
from repro.hw.gpu import GpuDevice
from repro.hw.nic import DuplexLink, Switch
from repro.hw.nvme import NvmeArray, NvmeDevice
from repro.hw.platform import (
    ClusterTopology,
    ComputeNode,
    Node,
    StorageNode,
    make_paper_testbed,
)
from repro.hw.specs import (
    BLUEFIELD3,
    EPYC_HOST,
    GIB,
    GPU_GENERATIONS,
    KIB,
    MIB,
    NVME_SSD,
    PAPER_LINK,
    GpuSpec,
    HostSpec,
    LinkSpec,
    NvmeSpec,
)

__all__ = [
    "BLUEFIELD3",
    "ClusterTopology",
    "ComputeNode",
    "CpuPool",
    "DramPool",
    "DuplexLink",
    "EPYC_HOST",
    "GIB",
    "GPU_GENERATIONS",
    "GpuDevice",
    "GpuSpec",
    "HostSpec",
    "KIB",
    "LinkSpec",
    "MIB",
    "Node",
    "NVME_SSD",
    "NvmeArray",
    "NvmeDevice",
    "NvmeSpec",
    "PAPER_LINK",
    "SerializedSection",
    "StorageNode",
    "Switch",
    "make_paper_testbed",
]
