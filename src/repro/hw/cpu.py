"""CPU core pools and serialized sections.

Two costs dominate the paper's results: per-operation CPU work that
parallelizes across cores, and work inside serialized sections (socket
locks, a single RPC progress context) that does not.  :class:`CpuPool`
models the former as a multi-server FIFO station; :class:`SerializedSection`
models the latter as a single FIFO server.

All costs passed in are **x86-baseline** seconds; the pool scales them by
the owning host's ``cycle_factor`` (and sections by ``lock_factor``), which
is how the BlueField-3's slower Arm cores enter every result without any
caller knowing which platform it runs on.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.specs import HostSpec
from repro.sim.core import Environment, Timeout
from repro.sim.queues import FifoServer, PooledServer

__all__ = ["CpuPool", "SerializedSection"]


class CpuPool:
    """A pool of identical cores with an architecture speed factor."""

    __slots__ = ("env", "spec", "n_cores", "factor", "_pool")

    def __init__(
        self,
        env: Environment,
        spec: HostSpec,
        n_cores: Optional[int] = None,
        factor: Optional[float] = None,
        name: Optional[str] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.n_cores = int(n_cores if n_cores is not None else spec.cores)
        if self.n_cores <= 0:
            raise ValueError(f"need at least one core, got {self.n_cores}")
        #: Multiplier applied to every x86-baseline cost.
        self.factor = float(factor if factor is not None else spec.cycle_factor)
        self._pool = PooledServer(env, self.n_cores, name=name)

    @property
    def name(self) -> Optional[str]:
        """Resource name for wait-cause attribution."""
        return self._pool.name

    def execute(self, x86_cost: float) -> Timeout:
        """Run ``x86_cost`` seconds of baseline work on the earliest-free core."""
        return self._pool.execute(x86_cost * self.factor)

    def scaled(self, x86_cost: float) -> float:
        """The actual duration this pool needs for ``x86_cost`` of work."""
        return x86_cost * self.factor

    @property
    def busy_time(self) -> float:
        """Cumulative core-seconds consumed."""
        return self._pool.busy_time

    @property
    def ops(self) -> int:
        """Operations executed."""
        return self._pool.ops

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean per-core busy fraction."""
        return self._pool.utilization(elapsed)

    def backlog(self) -> float:
        """Seconds until a core frees up (0 when any core is idle)."""
        return self._pool.backlog()

    def attach_stats(self, stats) -> None:
        """Attach a telemetry station (in-flight work items, Little's law)."""
        self._pool.attach_stats(stats)


class SerializedSection:
    """A host-wide serialized code path (lock, single progress thread).

    Costs scale by the host's ``lock_factor`` — serialized sections degrade
    more than parallel code on the DPU's Arm complex (contended atomics,
    smaller LLC), which is what produces the BlueField RDMA small-I/O gap
    in Fig. 5d.
    """

    __slots__ = ("env", "name", "factor", "_server")

    def __init__(self, env: Environment, name: str, lock_factor: float = 1.0,
                 wait_name: Optional[str] = None) -> None:
        self.env = env
        self.name = name
        self.factor = float(lock_factor)
        # ``wait_name`` lets a section share a blame bucket with the pool
        # it stands in for (e.g. the BF3 tcp_stack section and the Arm RX
        # core pool both attribute to "dpu.arm_rx").
        self._server = FifoServer(env, name=wait_name or name)

    def enter(self, x86_cost: float) -> Timeout:
        """Pass through the section, paying ``x86_cost`` (scaled) serially."""
        return self._server.serve(x86_cost * self.factor)

    @property
    def busy_time(self) -> float:
        """Cumulative serialized seconds."""
        return self._server.busy_time

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the section was occupied."""
        return self._server.utilization(elapsed)
