"""DRAM buffer pools.

The DPU has only 30 GiB of onboard DRAM (§4.1) and every data-plane
payload "currently terminates in DPU DRAM" (§3.2), so buffer-pool capacity
is a real constraint for the offloaded client.  :class:`DramPool` tracks
allocations against capacity and blocks allocators when the pool is
exhausted (back-pressure), which the multi-tenant experiments exercise.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.core import Environment, Event
from repro.sim.monitor import Gauge
from repro.sim.resources import Container

__all__ = ["DramPool", "Allocation"]


class Allocation:
    """A live DRAM allocation; free it exactly once."""

    __slots__ = ("pool", "nbytes", "_freed")

    def __init__(self, pool: "DramPool", nbytes: int) -> None:
        self.pool = pool
        self.nbytes = nbytes
        self._freed = False

    @property
    def freed(self) -> bool:
        """True once returned to the pool."""
        return self._freed

    def free(self) -> None:
        """Return the bytes to the pool (idempotent)."""
        if not self._freed:
            self._freed = True
            self.pool._release(self.nbytes)

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()


class DramPool:
    """A byte pool with blocking allocation and occupancy instrumentation."""

    def __init__(self, env: Environment, capacity_bytes: int, name: str = "dram") -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.env = env
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._free = Container(env, capacity=capacity_bytes, init=capacity_bytes,
                               name=name)
        self.occupancy = Gauge(env, f"{name}.occupancy")

    @property
    def free_bytes(self) -> float:
        """Bytes currently unallocated."""
        return self._free.level

    @property
    def used_bytes(self) -> float:
        """Bytes currently allocated."""
        return self.capacity_bytes - self._free.level

    def alloc(self, nbytes: int) -> Generator[Event, None, Allocation]:
        """Allocate ``nbytes``; blocks until available.  Use ``yield from``."""
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if nbytes > self.capacity_bytes:
            raise MemoryError(
                f"{self.name}: allocation of {nbytes} exceeds capacity {self.capacity_bytes}"
            )
        yield self._free.get(nbytes)
        self.occupancy.set(self.used_bytes)
        return Allocation(self, nbytes)

    def try_alloc(self, nbytes: int) -> Optional[Allocation]:
        """Allocate without blocking; None if it does not fit right now."""
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if nbytes > self._free.level:
            return None
        self._free.get(nbytes)
        self.occupancy.set(self.used_bytes)
        return Allocation(self, nbytes)

    def _release(self, nbytes: int) -> None:
        self._free.put(nbytes)
        self.occupancy.set(self.used_bytes)
