"""GPU device model for the GPUDirect RDMA extension (paper §3.5).

The paper leaves GPU placement as future work but specifies its mechanism
precisely: register GPU buffers (nvidia-peermem), convey the MR descriptors
through the control plane, and have the storage server RDMA-write straight
into GPU HBM.  We implement that extension, so the model only needs what
the data path touches: HBM capacity/bandwidth (a sink pipe) and the PCIe
staging path it *replaces* (host/DPU DRAM bounce + copy over PCIe).
"""

from __future__ import annotations

from typing import Generator

from repro.hw.specs import GIB, GpuSpec
from repro.sim.core import Environment, Event
from repro.sim.monitor import RateMeter
from repro.sim.queues import BandwidthPipe

__all__ = ["GpuDevice"]

#: PCIe Gen5 x16 effective rate (the paper's H100-class hosts).
PCIE_GEN5_X16 = 55 * GIB


class GpuDevice:
    """One GPU: an HBM sink plus the PCIe path used when staging instead.

    * :meth:`hbm_write` — data landing directly in HBM (GPUDirect path):
      bounded by HBM write bandwidth, no host involvement.
    * :meth:`staged_copy_in` — the baseline path: payload crosses PCIe into
      HBM after having been staged in DRAM (the extra hop GPUDirect
      removes).
    """

    def __init__(self, env: Environment, spec: GpuSpec, index: int = 0) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        self.hbm_capacity = spec.memory_gb * 10**9
        # HBM ingest: a fraction of HBM bandwidth is available to inbound
        # DMA (compute traffic owns the rest); 25% is a conservative slice.
        self._hbm = BandwidthPipe(env, spec.mem_bw_bytes * 0.25, latency=0.5e-6,
                                  name=f"gpu{index}.hbm")
        self._pcie = BandwidthPipe(env, PCIE_GEN5_X16, latency=0.8e-6,
                                   name=f"gpu{index}.pcie")
        self.ingest = RateMeter(env, f"gpu{index}.ingest")

    def hbm_write(self, nbytes: int) -> Generator[Event, None, None]:
        """DMA ``nbytes`` directly into HBM (GPUDirect RDMA target)."""
        yield from self._hbm.transfer(nbytes)
        self.ingest.record(nbytes)

    def staged_copy_in(self, nbytes: int) -> Generator[Event, None, None]:
        """Copy ``nbytes`` from DRAM staging across PCIe into HBM."""
        yield from self._pcie.transfer(nbytes)
        yield from self._hbm.transfer(nbytes)
        self.ingest.record(nbytes)

    def pcie_utilization(self) -> float:
        """Fraction of time the GPU's PCIe path was busy."""
        return self._pcie.utilization()
