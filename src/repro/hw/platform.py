"""Assembled nodes and the paper's testbed topology (§4.1).

A :class:`Node` bundles the per-host queueing stations every layer above
needs: the general core pool, the restricted TCP-RX core set, named
serialized sections, and a DRAM pool.  :class:`ComputeNode` adds a switch
port; :class:`StorageNode` adds the NVMe array and an SCM byte budget.

:func:`make_paper_testbed` builds the exact configurations evaluated in
the paper: an EPYC host client or a BlueField-3 DPU client, and the
storage server with 1 or 4 NVMe SSDs, all behind the 100 Gbps switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional

from repro.hw.cpu import CpuPool, SerializedSection
from repro.hw.dram import DramPool
from repro.hw.nic import Port, Switch
from repro.hw.nvme import NvmeArray
from repro.hw.specs import (
    BLUEFIELD3,
    EPYC_HOST,
    GIB,
    NVME_SSD,
    PAPER_LINK,
    STORAGE_SERVER,
    HostSpec,
    LinkSpec,
    NvmeSpec,
)
from repro.sim.core import Environment

__all__ = ["Node", "ComputeNode", "StorageNode", "ClusterTopology", "make_paper_testbed"]


class Node:
    """One host: cores, locks and DRAM."""

    def __init__(self, env: Environment, name: str, spec: HostSpec) -> None:
        self.env = env
        self.name = name
        self.spec = spec
        #: True for the BlueField-3's Arm complex (blame-bucket naming).
        self.is_arm_dpu = "bluefield" in spec.name.lower()
        #: General-purpose core pool (application + stack work).
        self.cpu = CpuPool(env, spec, name=f"{name}.cpu")
        #: Cores that TCP receive processing is confined to (softirq/NAPI).
        #: The pool factor is the platform's *total* per-byte RX penalty
        #: (it already subsumes the cycle factor for this specialized path).
        #: On the BlueField the pool is blamed as ``<node>.arm_rx`` — the
        #: same bucket as the serialized Arm stack section — so the doctor
        #: sees the paper's "Arm RX path" as one resource (§4.4, Fig. 5).
        self.tcp_rx_cpu = CpuPool(
            env,
            spec,
            n_cores=max(1, min(spec.tcp_rx_cores, spec.cores)),
            factor=spec.tcp_rx_byte_factor,
            name=f"{name}.arm_rx" if self.is_arm_dpu else f"{name}.tcp_rx",
        )
        self.dram = DramPool(env, spec.dram_bytes, name=f"{name}.dram")
        self._locks: Dict[str, SerializedSection] = {}
        fx = env._faults
        if fx is not None:
            fx.register_node(self)

    def lock(self, name: str) -> SerializedSection:
        """Get or create the named host-wide serialized section."""
        sec = self._locks.get(name)
        if sec is None:
            # The BF3 tcp_stack section is the calibrated stand-in for the
            # Arm kernel RX/stack path; it shares the Arm-RX blame bucket.
            wait_name = (
                f"{self.name}.arm_rx"
                if self.is_arm_dpu and name == "tcp_stack"
                else f"{self.name}.{name}"
            )
            sec = self._locks[name] = SerializedSection(
                self.env, f"{self.name}.{name}", self.spec.lock_factor,
                wait_name=wait_name,
            )
        return sec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} ({self.spec.name}, {self.spec.cores} cores)>"


class ComputeNode(Node):
    """A node attached to the switch (client host, DPU, or server NIC side)."""

    def __init__(
        self, env: Environment, name: str, spec: HostSpec, switch: Switch
    ) -> None:
        super().__init__(env, name, spec)
        self.switch = switch
        self.port: Port = switch.attach(name)


class StorageNode(ComputeNode):
    """The object-storage server: NVMe array + SCM tier behind its NIC."""

    def __init__(
        self,
        env: Environment,
        name: str,
        spec: HostSpec,
        switch: Switch,
        nvme_spec: NvmeSpec,
        n_ssds: int,
        scm_bytes: int = 512 * GIB,
    ) -> None:
        super().__init__(env, name, spec, switch)
        self.nvme = NvmeArray(env, nvme_spec, n_ssds)
        #: Storage-class-memory capacity (PMDK tier for metadata/small IO).
        self.scm_bytes = int(scm_bytes)


@dataclass(slots=True)
class ClusterTopology:
    """The assembled testbed handed to the storage/DAOS layers."""

    env: Environment
    switch: Switch
    client: ComputeNode
    server: StorageNode
    #: The x86 host that launches jobs; equals ``client`` in host mode and
    #: is a separate idle node in DPU-offload mode (host off the data path).
    launcher: ComputeNode

    @property
    def client_is_dpu(self) -> bool:
        """True when the DAOS client runs on the BlueField-3."""
        return self.client.spec.name == BLUEFIELD3.name


def make_paper_testbed(
    env: Environment,
    client: Literal["host", "dpu"] = "host",
    n_ssds: int = 1,
    link: Optional[LinkSpec] = None,
    nvme: Optional[NvmeSpec] = None,
    client_cores: Optional[int] = None,
    server_cores: Optional[int] = None,
) -> ClusterTopology:
    """Build the paper's testbed (§4.1).

    ``client='host'`` places the DAOS/DFS client on the EPYC server;
    ``client='dpu'`` offloads it to the BlueField-3 (the host still exists
    but only launches jobs and observes results).  ``client_cores`` /
    ``server_cores`` pin the experiment to a core subset, as the remote
    SPDK sweep (Fig. 4) does.
    """
    import dataclasses

    if n_ssds not in (1, 2, 3, 4):
        raise ValueError(f"paper testbed has 1-4 SSDs, got {n_ssds}")
    link = link or PAPER_LINK
    nvme = nvme or NVME_SSD

    def pin(spec: HostSpec, cores: Optional[int]) -> HostSpec:
        if cores is None:
            return spec
        if not 1 <= cores <= spec.cores:
            raise ValueError(f"{spec.name} has {spec.cores} cores; cannot pin {cores}")
        return dataclasses.replace(
            spec, cores=cores, tcp_rx_cores=min(spec.tcp_rx_cores, cores)
        )

    switch = Switch(env, link)
    server = StorageNode(
        env, "storage", pin(STORAGE_SERVER, server_cores), switch, nvme, n_ssds
    )
    host = ComputeNode(env, "host", pin(EPYC_HOST, client_cores), switch)
    if client == "host":
        return ClusterTopology(env, switch, client=host, server=server, launcher=host)
    if client == "dpu":
        dpu = ComputeNode(env, "dpu", pin(BLUEFIELD3, client_cores), switch)
        return ClusterTopology(env, switch, client=dpu, server=server, launcher=host)
    raise ValueError(f"client must be 'host' or 'dpu', got {client!r}")
