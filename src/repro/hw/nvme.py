"""NVMe SSD device and striped-array models.

A device is a FIFO serializer whose per-op service time is
``max(size / bandwidth, 1 / iops_cap)`` — this single expression yields
both the large-block bandwidth plateau and the small-block IOPS ceiling of
Fig. 3 — plus a NAND access latency paid in parallel (it delays each
completion but consumes no device throughput, matching how internal
parallelism hides latency once queues are deep).

The array stripes a flat logical address space across devices (1 MiB
stripe, like the paper's dfs/fio layout), giving the near-linear
multi-drive scaling of Fig. 3c.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.hw.specs import MIB, NvmeSpec
from repro.sim.core import Environment, Event
from repro.sim.monitor import RateMeter
from repro.sim.queues import FifoServer

__all__ = ["NvmeDevice", "NvmeArray"]


class NvmeDevice:
    """One NVMe SSD as a calibrated queueing station."""

    __slots__ = ("env", "spec", "index", "_server", "reads", "writes")

    def __init__(self, env: Environment, spec: NvmeSpec, index: int = 0) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        self._server = FifoServer(env, name=f"nvme.ssd{index}")
        self.reads = RateMeter(env, f"nvme{index}.reads")
        self.writes = RateMeter(env, f"nvme{index}.writes")

    def submit(
        self,
        nbytes: int,
        is_write: bool,
        bw_efficiency: float = 1.0,
        trace=None,
    ) -> Generator[Event, None, None]:
        """Perform one device I/O; completes after queue + service + latency.

        ``bw_efficiency`` < 1 models a software path (e.g. the kernel block
        layer) that cannot stream the device at its raw rate; it inflates
        only the bandwidth-bound component of the service time.
        """
        if nbytes <= 0:
            raise ValueError(f"I/O size must be positive, got {nbytes}")
        if not 0.0 < bw_efficiency <= 1.0:
            raise ValueError(f"bw_efficiency must be in (0, 1], got {bw_efficiency}")
        spec = self.spec
        if is_write:
            service = max(nbytes / (spec.write_bw * bw_efficiency), 1.0 / spec.write_iops_cap)
        else:
            service = max(nbytes / (spec.read_bw * bw_efficiency), 1.0 / spec.read_iops_cap)
        fx = self.env._faults
        if fx is not None:
            name = self._server.name
            if fx.active("nvme_media_error", name) is not None:
                from repro.faults.errors import NvmeMediaError

                raise NvmeMediaError(
                    f"{name}: injected media error on "
                    f"{'write' if is_write else 'read'} of {nbytes} bytes"
                )
            spike = fx.active("nvme_latency_spike", name)
            if spike is not None:
                service *= spike.factor
        span = None
        if trace is not None:
            span = trace.child("nvme", node=f"nvme{self.index}", nbytes=nbytes)
        # Queue+service plus the parallel NAND access latency are two
        # back-to-back pure sleeps for this process; ``serve_then``
        # reserves the device exactly like ``serve`` but wakes us once,
        # at the bit-identical completion instant (one kernel event).
        yield self._server.serve_then(service, spec.access_latency(is_write))
        if span is not None:
            span.finish()
        (self.writes if is_write else self.reads).record(nbytes)

    @property
    def busy_time(self) -> float:
        """Cumulative seconds of device service."""
        return self._server.busy_time

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the device was serving."""
        return self._server.utilization(elapsed)

    def attach_stats(self, stats) -> None:
        """Attach a telemetry station to the device's command queue.

        ``stats`` (a :class:`~repro.sim.timeseries.StationStats`) then sees
        every submission's arrival and completion, powering the per-device
        queue-depth counter track and the Little's-law self-check.
        """
        self._server.attach_stats(stats)


class NvmeArray:
    """``n`` devices striped into one logical address space.

    Stripe unit is 1 MiB: a 1 MiB sequential stream round-robins whole
    I/Os across drives (near-linear bandwidth scaling) while 4 KiB random
    I/Os scatter uniformly.
    """

    __slots__ = ("env", "devices", "stripe_bytes")

    def __init__(
        self,
        env: Environment,
        spec: NvmeSpec,
        n_devices: int,
        stripe_bytes: int = MIB,
    ) -> None:
        if n_devices <= 0:
            raise ValueError(f"need at least one device, got {n_devices}")
        if stripe_bytes <= 0:
            raise ValueError(f"stripe size must be positive, got {stripe_bytes}")
        self.env = env
        self.devices: List[NvmeDevice] = [NvmeDevice(env, spec, i) for i in range(n_devices)]
        self.stripe_bytes = int(stripe_bytes)

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def capacity_bytes(self) -> int:
        """Total array capacity."""
        return sum(d.spec.capacity_bytes for d in self.devices)

    def device_for(self, offset: int) -> NvmeDevice:
        """The device holding logical ``offset``."""
        return self.devices[(offset // self.stripe_bytes) % len(self.devices)]

    def split(self, offset: int, nbytes: int) -> List[Tuple[NvmeDevice, int]]:
        """Break ``[offset, offset+nbytes)`` into per-device pieces."""
        out: List[Tuple[NvmeDevice, int]] = []
        remaining = nbytes
        pos = offset
        while remaining > 0:
            in_stripe = self.stripe_bytes - (pos % self.stripe_bytes)
            take = min(remaining, in_stripe)
            out.append((self.device_for(pos), take))
            pos += take
            remaining -= take
        return out

    def submit(
        self,
        offset: int,
        nbytes: int,
        is_write: bool,
        bw_efficiency: float = 1.0,
        trace=None,
    ) -> Generator[Event, None, None]:
        """One logical I/O; pieces on different devices proceed in parallel."""
        pieces = self.split(offset, nbytes)
        if len(pieces) == 1:
            dev, size = pieces[0]
            yield from dev.submit(size, is_write, bw_efficiency, trace=trace)
            return
        env = self.env
        procs = [
            env.process(dev.submit(size, is_write, bw_efficiency, trace=trace))
            for dev, size in pieces
        ]
        yield env.all_of(procs)

    def total_bytes_read(self) -> int:
        """Aggregate bytes read across devices."""
        return sum(d.reads.bytes for d in self.devices)

    def total_bytes_written(self) -> int:
        """Aggregate bytes written across devices."""
        return sum(d.writes.bytes for d in self.devices)
