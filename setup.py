"""Setup shim for offline legacy editable installs (no wheel available)."""

from setuptools import setup

setup()
