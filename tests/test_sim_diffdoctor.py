"""Unit tests for the differential doctor (repro.sim.diffdoctor)."""

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import ledger as lg
from repro.bench.runner import run_fig5_doctored
from repro.sim.diffdoctor import (
    UNATTRIBUTED,
    DiffDiagnosis,
    diff_flames,
    diff_runs,
    write_overlay_trace,
)


def record_for(transport):
    """The quick 4 KiB Fig. 5 cell — the one the committed campaign pins."""
    run = run_fig5_doctored(transport, "dpu", "randread", 4096, 16,
                            runtime=0.02, sample_every=20,
                            observe_sampler=False)
    config = {"experiment": "fig5", "transport": transport, "client": "dpu",
              "rw": "randread", "bs": 4096, "numjobs": 16,
              "runtime": 0.02, "sample_every": 20}
    return lg.make_run_record(run.result, run.collector, run.tracer,
                              config=config, label=f"tiny {transport}")


@pytest.fixture(scope="module")
def tcp_record():
    return record_for("tcp")


@pytest.fixture(scope="module")
def rdma_record():
    return record_for("rdma")


class TestIdentityDiff:
    def test_diff_with_itself_is_null(self, tcp_record):
        dd = diff_runs(tcp_record, tcp_record)
        assert dd.ok and dd.exit_code == 0
        att = dd.checks["attribution"]
        assert att["observed_delta"] == 0.0
        assert att["sum_attributed"] == pytest.approx(0.0, abs=1e-15)
        assert all(r["delta"] == pytest.approx(0.0, abs=1e-15)
                   for r in dd.contributors)
        assert "equivalent" in dd.verdict
        assert dd.config_delta == {}

    def test_diff_flames_with_itself_empty(self, tcp_record):
        flames = diff_flames(tcp_record, tcp_record)
        assert flames == {"spans": {}, "waits": {}}


class TestTcpVsRdma:
    def test_deltas_sum_to_observed(self, tcp_record, rdma_record):
        dd = diff_runs(tcp_record, rdma_record)
        att = dd.checks["attribution"]
        assert dd.ok
        assert att["sum_attributed"] == pytest.approx(
            att["observed_delta"], rel=1e-9)
        assert att["rel_err"] <= att["tolerance"]

    def test_arm_rx_wait_is_top_contributor(self, tcp_record, rdma_record):
        """The paper's claim in delta form: RDMA wins by skipping Arm RX."""
        dd = diff_runs(tcp_record, rdma_record)
        top = dd.top_contributor
        assert top["resource"] == "dpu.arm_rx"
        assert top["delta"] < 0  # tcp -> rdma removes that time
        assert abs(top["delta_wait"]) >= abs(top["delta_service"])
        assert "dpu.arm_rx" in dd.verdict and "(wait)" in dd.verdict

    def test_contributors_ranked_by_abs_delta_then_name(
            self, tcp_record, rdma_record):
        rows = diff_runs(tcp_record, rdma_record).contributors
        keys = [(-abs(r["delta"]), r["resource"]) for r in rows]
        assert keys == sorted(keys)

    def test_direction_flips_with_argument_order(
            self, tcp_record, rdma_record):
        fwd = diff_runs(tcp_record, rdma_record)
        rev = diff_runs(rdma_record, tcp_record)
        assert fwd.observed["latency"]["delta"] == pytest.approx(
            -rev.observed["latency"]["delta"])
        assert fwd.top_contributor["delta"] == pytest.approx(
            -rev.top_contributor["delta"])

    def test_config_delta_and_observed_metrics(self, tcp_record, rdma_record):
        dd = diff_runs(tcp_record, rdma_record)
        assert dd.config_delta["transport"] == ["tcp", "rdma"]
        assert dd.observed["iops"]["delta"] > 0  # rdma is faster
        assert dd.observed["p99"]["delta"] < 0

    def test_document_shape_and_render(self, tcp_record, rdma_record):
        dd = diff_runs(tcp_record, rdma_record)
        doc = json.loads(json.dumps(dd.to_dict()))
        assert doc["format"] == "repro-diff-v1"
        for key in ("label", "verdict", "ok", "base", "current",
                    "config_delta", "observed", "contributors", "checks",
                    "notes"):
            assert key in doc, key
        text = dd.render()
        assert "Attributed latency delta" in text
        assert "attribution check ok" in text


class TestChecksAndNotes:
    def test_tampered_mean_fails_attribution_check(
            self, tcp_record, rdma_record):
        """The identity check is a real gate: break it, and ok flips."""
        broken = copy.deepcopy(rdma_record)
        broken["traces"]["mean_latency"] *= 3.0
        dd = diff_runs(tcp_record, broken)
        assert not dd.ok and dd.exit_code == 1
        assert dd.verdict.endswith("[attribution check FAILED]")

    def test_tolerance_is_configurable(self, tcp_record, rdma_record):
        broken = copy.deepcopy(rdma_record)
        broken["traces"]["mean_latency"] *= 1.5
        strict = diff_runs(tcp_record, broken, tolerance=0.01)
        lax = diff_runs(tcp_record, broken, tolerance=10.0)
        assert not strict.ok and lax.ok

    def test_sample_rate_mismatch_noted(self, tcp_record, rdma_record):
        other = copy.deepcopy(rdma_record)
        other["traces"]["sample_every"] = 99
        dd = diff_runs(tcp_record, other)
        assert any("sampling rates" in n for n in dd.notes)

    def test_blame_free_records_attribute_to_unattributed(self):
        def bare(mean):
            return {"run_id": "x", "config": {},
                    "traces": {"count": 10, "mean_latency": mean},
                    "metrics": {}, "blame": {}}
        dd = diff_runs(bare(2e-3), bare(1e-3))
        assert any("neither run carries blame" in n for n in dd.notes)
        [row] = dd.contributors
        assert row["resource"] == UNATTRIBUTED
        assert row["delta"] == pytest.approx(-1e-3)
        assert dd.ok


class TestDiffFlamesAndOverlay:
    def test_tcp_vs_rdma_moves_arm_rx_stacks(self, tcp_record, rdma_record):
        flames = diff_flames(tcp_record, rdma_record)
        assert flames["spans"] and flames["waits"]
        arm = [s for s in flames["waits"] if "wait:dpu.arm_rx" in s]
        assert arm
        for stack in arm:
            a, b = flames["waits"][stack]
            assert a > 0 and b == 0  # present under tcp, gone under rdma

    def test_overlay_trace_is_valid_and_prefixed(
            self, tcp_record, rdma_record, tmp_path):
        from repro.sim.chrometrace import validate_chrome_trace

        out = tmp_path / "overlay.json"
        doc = write_overlay_trace(str(out), tcp_record, rdma_record)
        assert validate_chrome_trace(doc) == []
        on_disk = json.loads(out.read_text())
        assert on_disk["otherData"]["n_counter_tracks"] > 0
        pids = {e["args"]["name"]
                for e in on_disk["traceEvents"]
                if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert any(p.startswith("A:tcp") for p in pids)
        assert any(p.startswith("B:rdma") for p in pids)


# ---------------------------------------------------------------------------
# Property: the attribution identity holds on randomized synthetic workloads
# ---------------------------------------------------------------------------

times = st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False)


def synthetic_record(draw, tag):
    n = draw(st.integers(min_value=1, max_value=64))
    resources = draw(st.lists(
        st.sampled_from(["dpu.arm_rx", "nvme0", "net.link", "host.cpu",
                         "dpu.dma", "storage.tcp_stack"]),
        unique=True, max_size=6))
    blame = {}
    total = 0.0
    for name in resources:
        wait = draw(times)
        service = draw(times)
        latency = draw(times)
        blame[name] = {"wait": wait, "service": service,
                       "latency": latency, "total": wait + service + latency}
        total += blame[name]["total"]
    mean = draw(times)
    return {
        "run_id": tag, "config": {"transport": tag},
        "traces": {"count": n, "mean_latency": mean, "sample_every": 1},
        "metrics": {}, "blame": blame,
    }


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_attribution_identity_on_random_workloads(data):
    base = synthetic_record(data.draw, "a")
    cur = synthetic_record(data.draw, "b")
    dd = diff_runs(base, cur)
    att = dd.checks["attribution"]
    # Exact by construction: the unattributed row absorbs the remainder.
    assert att["sum_attributed"] == pytest.approx(
        att["observed_delta"], rel=1e-9, abs=1e-9)
    assert dd.ok
    # Per-row split is internally consistent, except the unattributed row
    # which by definition carries no wait/service split of its own.
    for row in dd.contributors:
        if row["resource"] == UNATTRIBUTED:
            continue
        assert row["delta"] == pytest.approx(
            row["delta_wait"] + row["delta_service"], rel=1e-9, abs=1e-9)
    assert isinstance(dd, DiffDiagnosis)


def test_zero_delta_with_large_cancelling_blame_stays_ok():
    """Regression: equal means over big blame totals must not fail on
    float cancellation noise (~1e-14) measured against the 1e-12 delta
    floor — the error scale has to track the summed magnitudes."""
    def rec(tag, blame):
        return {"run_id": tag, "config": {"transport": tag},
                "traces": {"count": 1, "mean_latency": 0.0,
                           "sample_every": 1},
                "metrics": {}, "blame": blame}

    base = rec("a", {
        "dpu.arm_rx": {"wait": 9.41546282599409, "service": 0.0,
                       "latency": 6.660545268346674,
                       "total": 16.075 + 0.000008094340764},
        "nvme0": {"wait": 9.709133635603646, "service": 0.0,
                  "latency": 0.0, "total": 9.709133635603646},
        "net.link": {"wait": 1.909751215520128, "service": 0.0,
                     "latency": 0.0, "total": 1.909751215520128},
    })
    cur = rec("b", {
        "dpu.arm_rx": {"wait": 0.0, "service": 0.0,
                       "latency": 1.7661578216173004,
                       "total": 1.7661578216173004},
    })
    dd = diff_runs(base, cur)
    att = dd.checks["attribution"]
    assert att["abs_err"] < 1e-12  # the identity really is exact
    assert att["ok"] and dd.ok
