"""Unit tests for the gRPC-style control plane."""

import pytest

from repro.core.control_plane import GrpcChannel, GrpcError, GrpcServer, StatusCode
from repro.hw import make_paper_testbed
from repro.sim import Environment


def setup(client="dpu"):
    """Distinct launcher/client nodes so calls traverse the real TCP path."""
    env = Environment()
    top = make_paper_testbed(env, client=client)
    server = GrpcServer(top.client)  # control service lives on the client node
    channel = GrpcChannel(top.launcher, top.client).start()
    channel.bind(server)
    return env, top, server, channel


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def test_unary_roundtrip():
    env, top, server, channel = setup()

    def hello(request, metadata):
        yield env.timeout(0)
        return {"greeting": f"hello {request['who']}"}

    server.add_method("svc", "Hello", hello)

    def main(env):
        return (yield from channel.unary("svc", "Hello", {"who": "world"}))

    assert run(env, main(env)) == {"greeting": "hello world"}
    assert server.calls_served == 1


def test_unimplemented_method():
    env, top, server, channel = setup()

    def main(env):
        yield from channel.unary("svc", "Nope", {})

    p = env.process(main(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.UNIMPLEMENTED


def test_handler_error_maps_to_status():
    env, top, server, channel = setup()

    def denied(request, metadata):
        yield env.timeout(0)
        raise GrpcError(StatusCode.PERMISSION_DENIED, "no")

    server.add_method("svc", "Denied", denied)

    def main(env):
        yield from channel.unary("svc", "Denied", {})

    p = env.process(main(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.PERMISSION_DENIED


def test_interceptor_rejects():
    env, top, server, channel = setup()

    def handler(request, metadata):
        yield env.timeout(0)
        return {}

    def require_auth(service, method, metadata):
        if "authorization" not in metadata:
            raise GrpcError(StatusCode.UNAUTHENTICATED, "token required")

    server.add_method("svc", "M", handler)
    server.add_interceptor(require_auth)

    def bad(env):
        yield from channel.unary("svc", "M", {})

    p = env.process(bad(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.UNAUTHENTICATED

    def good(env):
        return (yield from channel.unary("svc", "M", {}, metadata={"authorization": "t"}))

    assert run(env, good(env)) == {}


def test_default_metadata_attached():
    env, top, server, channel = setup()
    channel.default_metadata["authorization"] = "bearer-x"
    seen = []

    def handler(request, metadata):
        yield env.timeout(0)
        seen.append(metadata.get("authorization"))
        return {}

    server.add_method("svc", "M", handler)

    def main(env):
        yield from channel.unary("svc", "M", {})

    run(env, main(env))
    assert seen == ["bearer-x"]


def test_duplicate_method_rejected():
    env, top, server, channel = setup()
    server.add_method("s", "m", lambda r, m: iter(()))
    with pytest.raises(ValueError, match="duplicate"):
        server.add_method("s", "m", lambda r, m: iter(()))


def test_unary_before_start_raises():
    env = Environment()
    top = make_paper_testbed(env, client="dpu")
    channel = GrpcChannel(top.launcher, top.client)
    with pytest.raises(RuntimeError, match="not started"):
        list(channel.unary("s", "m", {}))


def test_loopback_channel_same_node():
    """Host-mode deployments use a loopback path (no switch traversal)."""
    env = Environment()
    top = make_paper_testbed(env, client="host")
    assert top.launcher is top.client
    server = GrpcServer(top.client)
    channel = GrpcChannel(top.launcher, top.client).start().bind(server)
    assert channel.local and channel.conn is None

    def ping(request, metadata):
        yield env.timeout(0)
        return "pong"

    server.add_method("svc", "Ping", ping)

    def main(env):
        return (yield from channel.unary("svc", "Ping", {}))

    assert run(env, main(env)) == "pong"
    assert server.calls_served == 1


def test_loopback_unbound_raises():
    env = Environment()
    top = make_paper_testbed(env, client="host")
    channel = GrpcChannel(top.launcher, top.client).start()

    def main(env):
        yield from channel.unary("svc", "M", {})

    p = env.process(main(env))
    with pytest.raises(RuntimeError, match="no bound server"):
        env.run(until=p)


def test_loopback_errors_propagate():
    env = Environment()
    top = make_paper_testbed(env, client="host")
    server = GrpcServer(top.client)
    channel = GrpcChannel(top.launcher, top.client).start().bind(server)

    def main(env):
        yield from channel.unary("svc", "Missing", {})

    p = env.process(main(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.UNIMPLEMENTED


def test_shutdown_stops_loop():
    env, top, server, channel = setup()
    loop = server.serve(channel.conn)  # a second loop on the same conn

    def main(env):
        yield from channel.shutdown_server()

    env.process(main(env))
    env.run(until=0.5)
    # One of the two loops consumed the shutdown and exited.
    assert not loop.is_alive or len(server.methods()) >= 0


def test_concurrent_calls_demux():
    env, top, server, channel = setup()

    def echo(request, metadata):
        yield env.timeout(request["delay"])
        return request["x"]

    server.add_method("svc", "Echo", echo)
    got = {}

    def one(env, x, delay):
        got[x] = (yield from channel.unary("svc", "Echo", {"x": x, "delay": delay}))

    env.process(one(env, 1, 0.2))
    env.process(one(env, 2, 0.01))
    env.run(until=1.0)
    assert got == {1: 1, 2: 2}


def test_control_plane_works_between_host_and_dpu():
    """In offload mode the launcher (host) reaches the DPU over gRPC."""
    env, top, server, channel = setup(client="dpu")

    def ping(request, metadata):
        yield env.timeout(0)
        return "pong"

    server.add_method("svc", "Ping", ping)

    def main(env):
        return (yield from channel.unary("svc", "Ping", {}))

    assert run(env, main(env)) == "pong"
