"""Edge-case tests for the offload service's data plane and error paths."""

import pytest

from repro.core import Ros2Config, Ros2System
from repro.core.control_plane import GrpcError, StatusCode
from repro.hw.specs import KIB, MIB
from repro.sim import Environment


def boot(**cfg):
    env = Environment()
    system = Ros2System(env, Ros2Config(data_mode=True, **cfg))
    token = system.register_tenant("edge")

    def go(env):
        yield from system.start()
        return (yield from system.open_session(token))

    p = env.process(go(env))
    env.run(until=p)
    return env, system, p.value


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def test_io_on_unknown_session():
    env, system, session = boot()
    port = session.data_port()
    ctx = port.new_context()

    def go(env):
        yield from system.service.io_read(ctx, 9999, 1, 0, 100)

    p = env.process(go(env))
    with pytest.raises(KeyError, match="unknown session"):
        env.run(until=p)


def test_io_on_unknown_fh():
    env, system, session = boot()
    port = session.data_port()
    ctx = port.new_context()

    def go(env):
        yield from port.read(ctx, 424242, 0, 100)

    p = env.process(go(env))
    with pytest.raises(KeyError, match="unknown fh"):
        env.run(until=p)


def test_write_requires_size_or_data():
    env, system, session = boot()

    def go(env):
        fh = yield from session.create("/f")
        port = session.data_port()
        ctx = port.new_context()
        yield from port.write(ctx, fh, 0)

    p = env.process(go(env))
    with pytest.raises(ValueError, match="needs data"):
        env.run(until=p)


def test_close_file_then_io_fails():
    env, system, session = boot()

    def go(env):
        fh = yield from session.create("/f")
        port = session.data_port()
        ctx = port.new_context()
        yield from port.write(ctx, fh, 0, data=b"x")
        yield from session.close(fh)
        yield from port.read(ctx, fh, 0, 1)

    p = env.process(go(env))
    with pytest.raises(KeyError, match="unknown fh"):
        env.run(until=p)


def test_close_unknown_fh_is_not_found():
    env, system, session = boot()

    def go(env):
        yield from session.close(31337)

    p = env.process(go(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.NOT_FOUND


def test_get_caps_rejects_bad_length():
    env, system, session = boot()

    def go(env):
        yield from session.get_caps(0)

    p = env.process(go(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.INVALID_ARGUMENT


def test_file_handles_are_per_session():
    env = Environment()
    system = Ros2System(env, Ros2Config(data_mode=True))
    tok = system.register_tenant("edge")

    def go(env):
        yield from system.start()
        s1 = yield from system.open_session(tok)
        s2 = yield from system.open_session(tok)
        fh = yield from s1.create("/f")
        # The fh belongs to s1; s2's port must not accept it.
        port2 = s2.data_port()
        ctx = port2.new_context()
        try:
            yield from port2.read(ctx, fh, 0, 1)
        except KeyError as exc:
            return str(exc)
        return None

    result = run(env, go(env))
    assert result and "unknown fh" in result


def test_mkdir_invalid_path_maps_to_invalid_argument():
    env, system, session = boot()

    def go(env):
        yield from session.mkdir("relative/path")

    p = env.process(go(env))
    with pytest.raises(GrpcError) as exc_info:
        env.run(until=p)
    assert exc_info.value.code is StatusCode.INVALID_ARGUMENT


def test_config_invalid_transport_rejected():
    env = Environment()
    with pytest.raises(ValueError, match="unknown fabric provider"):
        Ros2System(env, Ros2Config(transport="carrier-pigeon"))


def test_config_invalid_client_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Ros2System(env, Ros2Config(client="mainframe"))


def test_start_is_idempotent():
    env, system, session = boot()

    def go(env):
        before = system.container
        yield from system.start()  # second call: no re-format
        return before, system.container

    before, after = run(env, go(env))
    assert before == after


def test_session_chunk_size_round_trips():
    env, system, session = boot()

    def go(env):
        fh = yield from session.create("/chunky", chunk_size=128 * KIB)
        st = yield from session.stat("/chunky")
        return st["chunk_size"]

    assert run(env, go(env)) == 128 * KIB
