"""LogHistogram: unit tests plus Hypothesis properties vs exact NumPy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hist import LogHistogram


class TestBasics:
    def test_empty(self):
        h = LogHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert len(h) == 0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_single_value(self):
        h = LogHistogram()
        h.record(42e-6)
        assert h.count == 1
        assert h.min == h.max == 42e-6
        assert h.percentile(50) == pytest.approx(42e-6, rel=h.relative_error)
        # Reported quantile is clamped into [min, max].
        assert h.min <= h.percentile(99) <= h.max

    def test_invalid_inputs(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.record(-1.0)
        with pytest.raises(ValueError):
            h.record(1.0, count=0)
        with pytest.raises(ValueError):
            LogHistogram(base=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_weighted_record(self):
        h = LogHistogram()
        h.record(1e-3, count=10)
        assert h.count == 10
        assert h.sum == pytest.approx(1e-2)

    def test_bounded_memory(self):
        """1e5 samples over 6 orders of magnitude: buckets stay small."""
        h = LogHistogram()
        rng = np.random.default_rng(3)
        for v in rng.uniform(1e-7, 1e-1, size=100_000):
            h.record(float(v))
        assert h.count == 100_000
        # 6 decades at 16 buckets/octave ~= 6 * log2(10) * 16 ~ 320 buckets.
        assert len(h) < 400

    def test_zero_and_subfloor_values(self):
        h = LogHistogram()
        h.record(0.0)
        h.record(1e-12)
        assert h.count == 2
        assert h.percentile(50) == pytest.approx(h.min_value, abs=h.min_value)

    def test_relative_error_bound(self):
        h = LogHistogram()
        assert h.relative_error == pytest.approx(math.sqrt(h.base) - 1.0)
        assert h.relative_error < 0.025  # ~2.2% at 16 buckets/octave


class TestMerge:
    def test_merge_equals_combined_recording(self):
        rng = np.random.default_rng(11)
        a_vals = rng.uniform(1e-6, 1e-2, 500)
        b_vals = rng.uniform(1e-5, 1e-1, 700)
        a = LogHistogram()
        b = LogHistogram()
        both = LogHistogram()
        for v in a_vals:
            a.record(float(v))
            both.record(float(v))
        for v in b_vals:
            b.record(float(v))
            both.record(float(v))
        a.merge(b)
        assert a.count == both.count
        assert a.sum == pytest.approx(both.sum)
        assert a.min == both.min and a.max == both.max
        for p in (50, 95, 99, 99.9):
            assert a.percentile(p) == both.percentile(p)

    def test_merge_empty(self):
        a = LogHistogram()
        a.record(1e-3)
        a.merge(LogHistogram())
        assert a.count == 1

    def test_merge_geometry_mismatch(self):
        a = LogHistogram()
        with pytest.raises(ValueError):
            a.merge(LogHistogram(base=2.0))


class TestCumulative:
    def test_cumulative_monotonic_and_complete(self):
        h = LogHistogram()
        rng = np.random.default_rng(5)
        for v in rng.uniform(1e-6, 1e-3, 1000):
            h.record(float(v))
        cum = h.cumulative_buckets()
        uppers = [u for u, _ in cum]
        counts = [c for _, c in cum]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert counts[-1] == 1000


positive_floats = st.floats(min_value=1e-8, max_value=1e3,
                            allow_nan=False, allow_infinity=False)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(positive_floats, min_size=1, max_size=300),
       p=st.sampled_from([50.0, 90.0, 95.0, 99.0, 99.9]))
def test_percentile_tracks_numpy_within_bucket_error(values, p):
    """Reported percentiles stay within the bucket's relative error of the
    exact (lower-interpolation) sample percentile."""
    h = LogHistogram()
    for v in values:
        h.record(v)
    # Nearest-rank (inverted CDF) matches the histogram's rank convention.
    exact = float(np.percentile(np.array(values), p, method="inverted_cdf"))
    got = h.percentile(p)
    if exact <= h.min_value:
        assert got <= h.min_value * h.base
        return
    # One bucket of slack on either side of the exact value.
    assert exact / h.base <= got <= exact * h.base, (got, exact)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(positive_floats, min_size=1, max_size=200))
def test_count_sum_minmax_exact(values):
    h = LogHistogram()
    for v in values:
        h.record(v)
    assert h.count == len(values)
    assert h.sum == pytest.approx(math.fsum(values), rel=1e-9)
    assert h.min == min(values)
    assert h.max == max(values)
    assert h.percentile(0) == h.min
    assert h.percentile(100) == h.max


@settings(max_examples=40, deadline=None)
@given(values=st.lists(positive_floats, min_size=2, max_size=200))
def test_percentiles_monotonic_in_p(values):
    h = LogHistogram()
    h.record_many(values)
    ps = [1, 10, 25, 50, 75, 90, 99, 99.9]
    qs = h.percentiles(ps)
    assert qs == sorted(qs)
