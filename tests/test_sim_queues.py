"""Unit tests for repro.sim.queues (FifoServer, PooledServer, BandwidthPipe)."""

import pytest

from repro.sim import BandwidthPipe, Environment, FifoServer
from repro.sim.queues import PooledServer


# ---------------------------------------------------------------------------
# FifoServer
# ---------------------------------------------------------------------------

def test_fifo_server_serializes_work():
    env = Environment()
    srv = FifoServer(env)
    done = []

    def client(env, srv, tag):
        yield srv.serve(1.0)
        done.append((tag, env.now))

    for tag in "abc":
        env.process(client(env, srv, tag))
    env.run()
    assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_fifo_server_idle_gap_not_counted():
    env = Environment()
    srv = FifoServer(env)
    done = []

    def client(env, srv):
        yield srv.serve(1.0)
        yield env.timeout(5.0)  # idle gap
        yield srv.serve(1.0)
        done.append(env.now)

    env.process(client(env, srv))
    env.run()
    assert done == [7.0]
    assert srv.busy_time == pytest.approx(2.0)


def test_fifo_server_rate_units():
    env = Environment()
    srv = FifoServer(env, rate=100.0)  # 100 units/sec
    done = []

    def client(env, srv):
        yield srv.serve_units(50)
        done.append(env.now)

    env.process(client(env, srv))
    env.run()
    assert done == [pytest.approx(0.5)]


def test_fifo_server_serve_units_without_rate_raises():
    env = Environment()
    srv = FifoServer(env)
    with pytest.raises(ValueError):
        srv.serve_units(10)


def test_fifo_server_negative_duration_raises():
    env = Environment()
    srv = FifoServer(env)
    with pytest.raises(ValueError):
        srv.serve(-1)


def test_fifo_server_utilization():
    env = Environment()
    srv = FifoServer(env)

    def client(env, srv):
        yield srv.serve(2.0)
        yield env.timeout(2.0)

    env.process(client(env, srv))
    env.run()
    assert srv.utilization() == pytest.approx(0.5)
    assert srv.ops == 1


def test_fifo_server_backlog():
    env = Environment()
    srv = FifoServer(env)
    srv.serve(3.0)
    srv.serve(2.0)
    assert srv.backlog == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# PooledServer
# ---------------------------------------------------------------------------

def test_pooled_server_parallel_up_to_n():
    env = Environment()
    pool = PooledServer(env, n=2)
    done = []

    def client(env, pool, tag):
        yield pool.execute(1.0)
        done.append((tag, env.now))

    for tag in "abcd":
        env.process(client(env, pool, tag))
    env.run()
    # Two run in [0,1], two in [1,2].
    assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]


def test_pooled_server_single_equivalent_to_fifo():
    env = Environment()
    pool = PooledServer(env, n=1)
    done = []

    def client(env, pool):
        yield pool.execute(1.5)
        done.append(env.now)

    for _ in range(3):
        env.process(client(env, pool))
    env.run()
    assert done == [1.5, 3.0, 4.5]


def test_pooled_server_work_conserving():
    env = Environment()
    pool = PooledServer(env, n=4)
    done = []

    def burst(env):
        # 8 unit jobs on 4 servers: finish at 1,1,1,1,2,2,2,2
        for _ in range(8):
            env.process(one(env))
        yield env.timeout(0)

    def one(env):
        yield pool.execute(1.0)
        done.append(env.now)

    env.process(burst(env))
    env.run()
    assert sorted(done) == [1, 1, 1, 1, 2, 2, 2, 2]


def test_pooled_server_utilization_mean_per_core():
    env = Environment()
    pool = PooledServer(env, n=2)

    def client(env):
        yield pool.execute(1.0)
        yield env.timeout(1.0)

    env.process(client(env))
    env.run()
    # 1 second of work over 2 seconds on 2 cores = 0.25
    assert pool.utilization() == pytest.approx(0.25)


def test_pooled_server_invalid_n():
    env = Environment()
    with pytest.raises(ValueError):
        PooledServer(env, n=0)


# ---------------------------------------------------------------------------
# BandwidthPipe
# ---------------------------------------------------------------------------

def test_pipe_transfer_time_matches_bandwidth():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=1e6, latency=0.0, chunk_bytes=1000)
    done = []

    def client(env, pipe):
        yield from pipe.transfer(500_000)
        done.append(env.now)

    env.process(client(env, pipe))
    env.run()
    assert done == [pytest.approx(0.5)]


def test_pipe_latency_added_once():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=1e6, latency=0.01, chunk_bytes=1000)
    done = []

    def client(env, pipe):
        yield from pipe.transfer(10_000)
        done.append(env.now)

    env.process(client(env, pipe))
    env.run()
    assert done == [pytest.approx(0.01 + 0.01)]


def test_pipe_concurrent_transfers_share_bandwidth():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=1e6, chunk_bytes=1000)
    done = {}

    def client(env, pipe, tag, nbytes):
        yield from pipe.transfer(nbytes)
        done[tag] = env.now

    env.process(client(env, pipe, "x", 100_000))
    env.process(client(env, pipe, "y", 100_000))
    env.run()
    # Total 200KB over 1MB/s = 0.2s: both finish near 0.2 (chunk interleave).
    assert done["x"] == pytest.approx(0.2, rel=0.02)
    assert done["y"] == pytest.approx(0.2, rel=0.02)


def test_pipe_small_message_not_stuck_behind_large():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=1e6, chunk_bytes=1000)
    done = {}

    def client(env, pipe, tag, nbytes, start=0.0):
        if start:
            yield env.timeout(start)
        yield from pipe.transfer(nbytes)
        done[tag] = env.now

    env.process(client(env, pipe, "big", 1_000_000))
    env.process(client(env, pipe, "small", 1000, start=0.001))
    env.run()
    # FIFO per chunk: the small transfer waits at most a couple of chunks,
    # nowhere near the big transfer's full second.
    assert done["small"] < 0.02
    assert done["big"] == pytest.approx(1.0, rel=0.02)


def test_pipe_zero_bytes_costs_only_latency():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=1e6, latency=0.005)
    done = []

    def client(env, pipe):
        yield from pipe.transfer(0)
        done.append(env.now)

    env.process(client(env, pipe))
    env.run()
    assert done == [pytest.approx(0.005)]


def test_pipe_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        BandwidthPipe(env, bandwidth=0)
    with pytest.raises(ValueError):
        BandwidthPipe(env, bandwidth=1e6, chunk_bytes=0)
    pipe = BandwidthPipe(env, bandwidth=1e6)

    def client(env):
        yield from pipe.transfer(-1)

    env.process(client(env))
    with pytest.raises(ValueError):
        env.run()


def test_pipe_throughput_capped_at_bandwidth():
    env = Environment()
    bw = 1e6
    pipe = BandwidthPipe(env, bandwidth=bw, chunk_bytes=4096)
    moved = []

    def flood(env, pipe):
        total = 0
        while env.now < 1.0:
            yield from pipe.transfer(10_000)
            total += 10_000
        moved.append(total)

    for _ in range(8):
        env.process(flood(env, pipe))
    env.run(until=1.0)
    # The pipe serializes: reserved transmission time can exceed the horizon
    # only by the 8 in-flight transfers (10ms each at 1 MB/s).
    assert pipe.busy_time <= 1.0 + 8 * 0.01 + 1e-9
    # bytes_moved counts at transfer start; reserved chunk time may lag by at
    # most the 8 in-flight transfers.
    assert abs(pipe.bytes_moved - pipe.busy_time * bw) <= 8 * 10_000


def test_pipe_estimate_and_chunks():
    env = Environment()
    pipe = BandwidthPipe(env, bandwidth=2e6, latency=0.001, chunk_bytes=1000)
    assert pipe.transfer_time_estimate(2000) == pytest.approx(0.001 + 0.001)
    assert pipe.n_chunks(2500) == 3
    assert pipe.n_chunks(0) == 0
