"""Unit tests for the fabric provider registry and unified channels."""

import pytest

from repro.hw import make_paper_testbed
from repro.hw.specs import KIB, MIB
from repro.net import Fabric, Message
from repro.net.fabric import RemoteRegion, list_providers, resolve_provider
from repro.sim import Environment


def setup(provider, client="host"):
    env = Environment()
    top = make_paper_testbed(env, client=client)
    fab = Fabric(env)
    ch = fab.connect(top.client, top.server, provider)
    return env, top, ch


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_all_paper_providers_registered():
    provs = list_providers()
    for name in ["ofi+tcp;ofi_rxm", "ucx+tcp", "ucx+rc", "ucx+dc_x", "ofi+verbs;ofi_rxm"]:
        assert name in provs


def test_aliases_resolve():
    assert resolve_provider("tcp").family == "tcp"
    assert resolve_provider("rdma").family == "rdma"
    assert resolve_provider("verbs").name == "ofi+verbs;ofi_rxm"


def test_unknown_provider_raises():
    with pytest.raises(ValueError, match="unknown fabric provider"):
        resolve_provider("smoke-signals")


def test_provider_mismatch_rejected():
    env = Environment()
    top = make_paper_testbed(env)
    fab = Fabric(env)
    ea = fab.endpoint(top.client, "ucx+tcp")
    eb = fab.endpoint(top.server, "ucx+rc")
    with pytest.raises(ValueError, match="provider mismatch"):
        ea.connect(eb)


# ---------------------------------------------------------------------------
# Channel behaviour, parametrized over families
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc", "ofi+verbs;ofi_rxm"])
def test_send_recv_roundtrip(provider):
    env, top, ch = setup(provider)
    got = []

    def client(env):
        yield from ch.send(Message(src="host", dst="storage", kind="req", tag=9, nbytes=256))

    def server(env):
        msg = yield ch.recv("storage")
        got.append((msg.kind, msg.tag))

    env.process(client(env))
    env.process(server(env))
    env.run()
    assert got == [("req", 9)]


@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc"])
def test_register_returns_descriptor(provider):
    env, top, ch = setup(provider)
    region = ch.register("storage", 1 * MIB)
    assert isinstance(region, RemoteRegion)
    assert region.node == "storage"
    assert region.length == MIB
    assert region.rkey > 0


@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc"])
def test_rma_write_then_read_roundtrip(provider):
    env, top, ch = setup(provider)
    buf = bytearray(4 * KIB)
    region = ch.register("storage", 4 * KIB, buffer=buf)
    got = []

    def client(env):
        yield from ch.rma_write("host", region, payload=b"\x55" * 64, offset=16)
        data = yield from ch.rma_read("host", region, 64, offset=16)
        got.append(data)

    env.process(client(env))
    env.run()
    assert got == [b"\x55" * 64]
    assert buf[16:80] == b"\x55" * 64


@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc"])
def test_deregistered_region_rejected(provider):
    env, top, ch = setup(provider)
    region = ch.register("storage", 4 * KIB)
    ch.deregister(region)

    def client(env):
        yield from ch.rma_read("host", region, 64)

    env.process(client(env))
    with pytest.raises(Exception):  # AccessViolation or PermissionError
        env.run()


@pytest.mark.parametrize("provider", ["ucx+tcp", "ucx+rc"])
def test_rma_out_of_bounds_rejected(provider):
    env, top, ch = setup(provider)
    region = ch.register("storage", 4 * KIB)

    def client(env):
        yield from ch.rma_read("host", region, 8 * KIB)

    env.process(client(env))
    with pytest.raises(Exception):
        env.run()


def test_register_on_non_endpoint_rejected():
    env, top, ch = setup("ucx+rc")
    with pytest.raises(KeyError):
        ch.register("nowhere", 4 * KIB)


def test_scoped_registration_expires_rdma():
    env, top, ch = setup("ucx+rc")
    region = ch.register("storage", 4 * KIB, valid_until=0.5)

    def client(env):
        yield env.timeout(1.0)
        yield from ch.rma_read("host", region, 64)

    env.process(client(env))
    with pytest.raises(Exception, match="expired"):
        env.run()


def test_scoped_registration_expires_tcp():
    env, top, ch = setup("ucx+tcp")
    region = ch.register("storage", 4 * KIB, valid_until=0.5)

    def client(env):
        yield env.timeout(1.0)
        yield from ch.rma_read("host", region, 64)

    env.process(client(env))
    with pytest.raises(PermissionError, match="expired"):
        env.run()


# ---------------------------------------------------------------------------
# The central performance contrast
# ---------------------------------------------------------------------------

def bulk_read_rate(provider, client, n=24, size=MIB):
    env, top, ch = setup(provider, client=client)
    region = ch.register("storage", size)
    cname = top.client.name

    def reader(env):
        for _ in range(n):
            yield from ch.rma_read(cname, region, size)

    env.process(reader(env))
    env.run()
    return n * size / env.now


def test_rdma_rma_charges_no_server_cpu_tcp_does():
    env, top, ch = setup("ucx+rc")
    region = ch.register("storage", MIB)

    def reader(env):
        yield from ch.rma_read("host", region, MIB)

    env.process(reader(env))
    env.run()
    rdma_server_cpu = top.server.cpu.busy_time

    env2, top2, ch2 = setup("ucx+tcp")
    region2 = ch2.register("storage", MIB)

    def reader2(env2):
        yield from ch2.rma_read("host", region2, MIB)

    env2.process(reader2(env2))
    env2.run()
    tcp_server_cpu = top2.server.cpu.busy_time

    assert rdma_server_cpu == 0.0
    assert tcp_server_cpu > 0.0


def test_dpu_rdma_read_matches_host_but_tcp_does_not():
    host_tcp = bulk_read_rate("ucx+tcp", "host")
    dpu_tcp = bulk_read_rate("ucx+tcp", "dpu")
    host_rdma = bulk_read_rate("ucx+rc", "host")
    dpu_rdma = bulk_read_rate("ucx+rc", "dpu")
    # RDMA: DPU within ~10% of host. TCP: DPU way behind host.
    assert dpu_rdma > 0.9 * host_rdma
    assert dpu_tcp < 0.6 * host_tcp
    assert dpu_rdma > 2.0 * dpu_tcp
