"""Hypothesis property tests for the DFS namespace and file layer.

Random operation sequences against a reference model: the namespace must
behave exactly like a dict-of-dicts filesystem, and files exactly like
flat byte arrays — through the full RPC/VOS/transaction machinery.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.daos import DaosClient, DaosEngine, DfsNamespace
from repro.hw import make_paper_testbed
from repro.hw.specs import KIB
from repro.net import Fabric
from repro.sim import Environment


def mount():
    env = Environment()
    top = make_paper_testbed(env)
    fab = Fabric(env)
    engine = DaosEngine(top.server, data_mode=True)
    pool = engine.create_pool()
    ch = fab.connect(top.client, top.server, "ucx+rc")
    engine.serve(ch)
    daos = DaosClient(top.client, ch, data_mode=True)
    ctx = daos.new_context()

    def go(env):
        ph = yield from daos.connect_pool(ctx, pool)
        cont = yield from ph.create_container(ctx)
        ns = DfsNamespace(daos, cont)
        yield from ns.format(ctx)
        return ns

    p = env.process(go(env))
    env.run(until=p)
    return env, ctx, p.value


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


NAMES = st.sampled_from(["a", "b", "c", "d"])


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.tuples(st.sampled_from(["create", "mkdir", "unlink"]), NAMES),
    min_size=1, max_size=12,
))
def test_namespace_matches_reference_model(ops):
    """Root-level create/mkdir/unlink tracks a plain dict model exactly."""
    env, ctx, ns = mount()
    model = {}

    def go(env):
        for op, name in ops:
            path = f"/{name}"
            if op == "create":
                try:
                    yield from ns.create(ctx, path)
                    assert name not in model
                    model[name] = "file"
                except FileExistsError:
                    assert name in model
            elif op == "mkdir":
                try:
                    yield from ns.mkdir(ctx, path)
                    assert name not in model
                    model[name] = "dir"
                except FileExistsError:
                    assert name in model
            else:  # unlink
                try:
                    yield from ns.unlink(ctx, path)
                    assert name in model
                    del model[name]
                except FileNotFoundError:
                    assert name not in model
        listing = yield from ns.readdir(ctx, "/")
        assert listing == sorted(model)
        for name, kind in model.items():
            info = yield from ns.stat(ctx, f"/{name}")
            assert info["type"] == kind

    run(env, go(env))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(writes=st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40 * KIB),  # offset
        st.integers(min_value=1, max_value=8 * KIB),  # length
        st.integers(min_value=0, max_value=255),  # fill byte
    ),
    min_size=1, max_size=10,
))
def test_file_matches_flat_buffer(writes):
    """Arbitrary writes through chunked DFS equal a flat byte array."""
    env, ctx, ns = mount()
    span = 64 * KIB
    ref = bytearray(span)

    def go(env):
        f = yield from ns.create(ctx, "/prop.bin", chunk_size=16 * KIB)
        for off, ln, fill in writes:
            data = bytes([fill]) * ln
            yield from f.write(ctx, off, data=data)
            ref[off:off + ln] = data
        got = yield from f.read(ctx, 0, span)
        assert got == bytes(ref)
        size = yield from f.size(ctx)
        expected_size = max((o + l for o, l, _ in writes), default=0)
        assert size == expected_size

    run(env, go(env))
