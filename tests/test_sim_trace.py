"""Unit tests for the event tracer."""

import pytest

from repro.sim import Environment
from repro.sim.trace import TraceRecord, Tracer


def busy_sim(env, n=5):
    def worker(env, i):
        yield env.timeout(i + 1)
        yield env.timeout(0.5)

    for i in range(n):
        env.process(worker(env, i), name=f"w{i}")


def test_tracer_records_events():
    env = Environment()
    tracer = Tracer(env)
    busy_sim(env)
    env.run()
    assert tracer.events_seen > 0
    assert len(tracer.records) == tracer.events_seen
    kinds = {r.kind for r in tracer.records}
    assert "Timeout" in kinds and "Process" in kinds


def test_tracer_capacity_bounds_memory():
    env = Environment()
    tracer = Tracer(env, capacity=5)
    busy_sim(env, n=10)
    env.run()
    assert len(tracer.records) == 5
    assert tracer.events_seen > 5


def test_tracer_predicate_filters():
    env = Environment()
    tracer = Tracer(env, predicate=lambda r: r.name == "w1")
    busy_sim(env)
    env.run()
    assert tracer.records
    assert all(r.name == "w1" for r in tracer.records)


def test_tracer_between():
    env = Environment()
    tracer = Tracer(env)
    busy_sim(env)
    env.run()
    window = tracer.between(1.0, 2.0)
    assert window
    assert all(1.0 <= r.t < 2.0 for r in window)


def test_tracer_render():
    env = Environment()
    tracer = Tracer(env)
    busy_sim(env, n=2)
    env.run()
    text = tracer.render(last=3)
    assert text.startswith("trace:")
    assert len(text.splitlines()) == 4


def test_tracer_detach_and_context_manager():
    env = Environment()
    with Tracer(env) as tracer:
        busy_sim(env, n=1)
        env.run()
        seen = tracer.events_seen
    # Detached: further events are not recorded.
    busy_sim(env, n=1)
    env.run()
    assert tracer.events_seen == seen
    assert env._trace_hook is None


def test_two_tracers_coexist():
    """The trace hook is multi-subscriber: two tracers see every event."""
    env = Environment()
    a = Tracer(env)
    b = Tracer(env, predicate=lambda r: r.name == "w1")
    busy_sim(env)
    env.run()
    assert a.events_seen > 0
    assert a.events_seen == b.events_seen
    assert all(r.name == "w1" for r in b.records)
    # Detaching one leaves the other attached.
    b.detach()
    busy_sim(env, n=1)
    env.run()
    assert a.events_seen > b.events_seen
    a.detach()
    assert env._trace_hook is None


def test_tracer_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Tracer(env, capacity=0)


def test_record_str():
    r = TraceRecord(t=1e-6, kind="Timeout", name=None, ok=True)
    assert "Timeout" in str(r)
    rf = TraceRecord(t=0.0, kind="Process", name="p", ok=False)
    assert "FAILED" in str(rf) and "p" in str(rf)


def test_tracer_clear():
    env = Environment()
    tracer = Tracer(env)
    busy_sim(env, n=2)
    env.run()
    tracer.clear()
    assert len(tracer.records) == 0
    assert tracer.events_seen > 0
