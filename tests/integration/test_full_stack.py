"""Integration tests: the whole paper stack exercised end to end.

These cross every package boundary at once — sim kernel, hardware models,
transports, NVMe-oF, DAOS engine/VOS/DFS, ROS2 control+data planes — in
functional (real-bytes) mode, verifying invariants no unit test can see.
"""

import pytest

from repro.core import Ros2Config, Ros2System
from repro.hw.specs import KIB, MIB
from repro.sim import Environment


def boot(transport="rdma", client="dpu", n_ssds=4, **policy):
    env = Environment()
    system = Ros2System(env, Ros2Config(
        transport=transport, client=client, n_ssds=n_ssds, data_mode=True
    ))
    token = system.register_tenant("it", **policy)

    def go(env):
        yield from system.start()
        return (yield from system.open_session(token))

    p = env.process(go(env))
    env.run(until=p)
    return env, system, p.value


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


@pytest.mark.parametrize("transport", ["rdma", "tcp", "ofi+verbs;ofi_rxm",
                                       "ofi+tcp;ofi_rxm", "ucx+dc_x"])
@pytest.mark.parametrize("client", ["host", "dpu"])
def test_data_integrity_every_configuration(transport, client):
    """Every provider x placement combination round-trips bytes intact."""
    env, system, session = boot(transport=transport, client=client, n_ssds=1)
    payload = bytes((i * 37 + 11) % 256 for i in range(96 * KIB))

    def go(env):
        fh = yield from session.create("/itest.bin", chunk_size=32 * KIB)
        port = session.data_port()
        ctx = port.new_context()
        yield from port.write(ctx, fh, 5, data=payload)
        return (yield from port.read(ctx, fh, 5, len(payload)))

    assert run(env, go(env)) == payload


def test_concurrent_writers_distinct_regions():
    """16 concurrent writers to one file never corrupt each other."""
    env, system, session = boot()
    n, piece = 16, 8 * KIB

    def go(env):
        fh = yield from session.create("/concurrent.bin", chunk_size=16 * KIB)
        port = session.data_port()

        def writer(env, i):
            ctx = port.new_context()
            data = bytes([i]) * piece
            yield from port.write(ctx, fh, i * piece, data=data)

        writers = [env.process(writer(env, i)) for i in range(n)]
        yield env.all_of(writers)
        ctx = port.new_context()
        return (yield from port.read(ctx, fh, 0, n * piece))

    blob = run(env, go(env))
    for i in range(n):
        assert blob[i * piece:(i + 1) * piece] == bytes([i]) * piece


def test_overwrite_visibility_across_sessions():
    """A second session sees the first session's committed overwrite."""
    env = Environment()
    system = Ros2System(env, Ros2Config(data_mode=True))
    tok = system.register_tenant("shared")

    def go(env):
        yield from system.start()
        s1 = yield from system.open_session(tok)
        s2 = yield from system.open_session(tok)
        fh1 = yield from s1.create("/shared.bin")
        p1, p2 = s1.data_port(), s2.data_port()
        c1, c2 = p1.new_context(), p2.new_context()
        yield from p1.write(c1, fh1, 0, data=b"versionA")
        yield from p1.write(c1, fh1, 0, data=b"versionB")
        fh2 = yield from s2.open("/shared.bin")
        return (yield from p2.read(c2, fh2, 0, 8))

    p = env.process(go(env))
    env.run(until=p)
    assert p.value == b"versionB"


def test_encrypted_and_plain_tenants_coexist():
    env = Environment()
    system = Ros2System(env, Ros2Config(data_mode=True, client="dpu"))
    tok_enc = system.register_tenant("enc", crypto_key=bytes(range(32)))
    tok_plain = system.register_tenant("plain")
    msg = b"tenant-private bytes" * 64

    def go(env):
        yield from system.start()
        se = yield from system.open_session(tok_enc)
        sp = yield from system.open_session(tok_plain)
        fe = yield from se.create("/enc.bin")
        fp = yield from sp.create("/plain.bin")
        pe, pp = se.data_port(), sp.data_port()
        ce, cp = pe.new_context(), pp.new_context()
        yield from pe.write(ce, fe, 0, data=msg)
        yield from pp.write(cp, fp, 0, data=msg)
        a = yield from pe.read(ce, fe, 0, len(msg))
        b = yield from pp.read(cp, fp, 0, len(msg))
        return a, b

    p = env.process(go(env))
    env.run(until=p)
    a, b = p.value
    assert a == msg and b == msg


def test_checksum_end_to_end_detects_media_corruption():
    from repro.daos.checksum import ChecksumError

    env, system, session = boot(transport="rdma", client="host", n_ssds=1)

    def write(env):
        fh = yield from session.create("/guarded.bin")
        port = session.data_port()
        ctx = port.new_context()
        yield from port.write(ctx, fh, 0, data=b"x" * 8 * KIB)
        return fh, port, ctx

    fh, port, ctx = run(env, write(env))
    state = system.service.sessions[session.session_id]
    f = state.files[fh]
    # Flip stored bytes behind the engine's back on whichever target holds
    # the chunk.
    corrupted = False
    for t in system.engine.targets:
        vobj = t.vos.object_if_exists(state.cont.cont, f.oid)
        if vobj is None:
            continue
        for akeys in vobj._dkeys.values():
            for store in akeys.values():
                for ext in getattr(store, "extents", []):
                    if ext.data:
                        ext.data = b"y" * len(ext.data)
                        corrupted = True
    assert corrupted

    def read(env):
        yield from port.read(ctx, fh, 0, 8 * KIB)

    p = env.process(read(env))
    with pytest.raises(ChecksumError):
        env.run(until=p)


def test_dram_backpressure_bounds_inflight_payloads():
    """The DPU's staging pool caps concurrent payload bytes."""
    from repro.core.data_plane import DataPlane

    env, system, session = boot(client="dpu")
    system.service.data_plane = DataPlane(
        system.client_node, "rdma", staging_budget_bytes=4 * MIB
    )

    def go(env):
        fh = yield from session.create("/big.bin")
        port = session.data_port()

        def writer(env, i):
            ctx = port.new_context()
            yield from port.write(ctx, fh, i * MIB, nbytes=MIB, data=bytes(MIB))

        writers = [env.process(writer(env, i)) for i in range(16)]
        yield env.all_of(writers)

    p = env.process(go(env))
    env.run(until=p)
    assert system.service.data_plane.staged.peak <= 4 * MIB


def test_simulation_determinism():
    """Identical configurations produce byte-identical outcomes and clocks."""

    def one_run():
        env, system, session = boot(transport="rdma", client="dpu", n_ssds=2)

        def go(env):
            fh = yield from session.create("/det.bin")
            port = session.data_port()
            ctx = port.new_context()
            for i in range(16):
                yield from port.write(ctx, fh, i * 4 * KIB, data=bytes([i]) * 4 * KIB)
            data = yield from port.read(ctx, fh, 0, 64 * KIB)
            return env.now, data

        return run(env, go(env))

    t1, d1 = one_run()
    t2, d2 = one_run()
    assert t1 == t2
    assert d1 == d2
