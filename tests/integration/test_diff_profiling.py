"""Integration: the differential-profiling acceptance path, end to end.

This is the PR's contract, run exactly as CI runs it: a live quick
``doctor`` run of the RDMA 4 KiB Fig. 5 cell diffed ``--against`` the
*committed* TCP ledger record must (1) emit a ``repro-diff-v1`` document
whose attributed deltas sum to the observed end-to-end delta within 1%,
(2) name ``dpu.arm_rx`` wait reduction as the top contributor — the
paper's RDMA-vs-TCP claim in delta form — and (3) write byte-stable
red/blue differential folded stacks matching the committed goldens.
"""

import json
import os

import pytest

from repro.bench.cli import main

DATA = os.path.join(os.path.dirname(__file__), os.pardir, "data")
LEDGER_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                          "benchmarks", "ledger")
TCP_4K = "fig5-tcp-dpu-randread-4096"


@pytest.fixture(scope="module")
def diff_artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("diff")
    argv = ["doctor", "--quick", "--transport", "rdma", "--client", "dpu",
            "--rw", "randread", "--bs", "4k", "--jobs", "16",
            "--against", TCP_4K, "--ledger-dir", LEDGER_DIR,
            "--diff-out", str(out / "diff.json"),
            "--diff-flame", str(out / "flame.txt"),
            "--diff-wait-flame", str(out / "wait_flame.txt"),
            "--overlay", str(out / "overlay.json")]
    code = main(argv)
    return code, out


def test_acceptance_command_succeeds(diff_artifacts):
    code, _ = diff_artifacts
    assert code == 0


def test_diff_document_attribution_within_one_percent(diff_artifacts):
    _, out = diff_artifacts
    doc = json.loads((out / "diff.json").read_text())
    assert doc["format"] == "repro-diff-v1"
    assert doc["ok"] is True
    att = doc["checks"]["attribution"]
    assert att["rel_err"] <= 0.01
    assert att["sum_attributed"] == pytest.approx(att["observed_delta"],
                                                  rel=1e-6)
    # RDMA vs TCP on the 4 KiB cell: latency halves, IOPS doubles.
    assert doc["observed"]["latency"]["delta"] < 0
    assert doc["observed"]["iops"]["delta"] > 0


def test_arm_rx_wait_reduction_tops_the_ranking(diff_artifacts):
    _, out = diff_artifacts
    doc = json.loads((out / "diff.json").read_text())
    top = doc["contributors"][0]
    assert top["resource"] == "dpu.arm_rx"
    assert top["delta"] < 0
    assert abs(top["delta_wait"]) >= abs(top["delta_service"])
    assert "dpu.arm_rx" in doc["verdict"]


def test_diff_flames_match_committed_goldens(diff_artifacts):
    _, out = diff_artifacts
    for produced, golden in (("flame.txt", "diff_flame_fig5_golden.txt"),
                             ("wait_flame.txt",
                              "diff_wait_flame_fig5_golden.txt")):
        live = (out / produced).read_text()
        with open(os.path.join(DATA, golden)) as fh:
            assert live == fh.read(), (
                f"{golden} drifted; the sim outcome moved — regenerate the "
                f"golden AND re-record the benchmarks/ledger campaign")


def test_overlay_carries_both_runs_counter_tracks(diff_artifacts):
    from repro.sim.chrometrace import validate_chrome_trace

    _, out = diff_artifacts
    doc = json.loads((out / "overlay.json").read_text())
    assert validate_chrome_trace(doc) == []
    pids = {e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"}
    assert any(p.startswith("A:tcp") for p in pids)
    assert any(p.startswith("B:rdma") for p in pids)
