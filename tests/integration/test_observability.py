"""Integration: the full observability stack on a real Fig. 5 cell.

These are the acceptance checks of the telemetry PR: a sampled run must
(1) satisfy Little's law at every instrumented station — proving the
sampling + downsampling pipeline reports the system that actually ran —
(2) export a schema-valid Perfetto trace carrying both request spans and
the counter tracks the paper's analysis needs, and (3) attribute phases
to plausible bottlenecks (prefill hits NVMe, the steady TCP/DPU window
hits the DPU's RX path).
"""

import json

import pytest

from repro.bench.cli import main
from repro.bench.runner import run_fig5_observed
from repro.sim.chrometrace import build_chrome_trace, validate_chrome_trace
from repro.sim.timeseries import UTILIZATION


@pytest.fixture(scope="module")
def observed():
    """One instrumented TCP/DPU 4 KiB randread cell, shared by the tests."""
    return run_fig5_observed("tcp", "dpu", "randread", 4096, 16,
                             runtime=0.02, sample_every=20)


def test_littles_law_holds_at_every_station(observed):
    law = observed.timeline.littles_law(tolerance=0.05)
    assert law, "no stations instrumented"
    checked = {k: v for k, v in law.items() if v["checked"]}
    assert checked, "no station saw enough arrivals to check"
    for name, row in checked.items():
        assert row["ok"], (
            f"{name}: L={row['L_sampled']:.3f} vs "
            f"lambda*W={row['lambda_W']:.3f} "
            f"(rel_err={row['rel_err'] * 100:.1f}%)")


def test_sampled_series_cover_the_required_signals(observed):
    names = set(observed.sampler.series)
    # CPU, NVMe queue depth, NIC, Arm-core/TCP-RX load, in-flight RPCs.
    assert any(".cpu.busy" in n for n in names)
    assert any(n.startswith("nvme") and n.endswith(".in_flight")
               for n in names)
    assert any(".nic." in n for n in names)
    assert any("tcp_rx" in n for n in names)
    assert "engine.rpc.in_flight" in names
    # Downsampling kept every series within its bound.
    for s in observed.sampler.series.values():
        assert len(s) < s.capacity


def test_perfetto_export_is_valid_and_complete(observed):
    doc = build_chrome_trace(observed.collector.spans, observed.sampler,
                             label="it")
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    counters = {e["name"] for e in events if e["ph"] == "C"}
    spans = [e for e in events if e["ph"] == "X"]
    assert len(counters) >= 5
    assert spans, "no span duration events exported"
    stages = {e["name"] for e in spans}
    assert "nvme" in stages or any("rpc" in s for s in stages)


def test_phase_attribution_is_plausible(observed):
    by_phase = observed.timeline.busiest_by_phase()
    assert set(by_phase) == {"warmup", "steady", "drain"}
    # Warmup = prefill writes: an NVMe device dominates.
    assert by_phase["warmup"]["component"].startswith("nvme")
    # Steady 4 KiB randread over TCP through the DPU: the DPU's RX path
    # (Arm TCP cores or the tcp_stack lock) is the paper's bottleneck.
    steady = by_phase["steady"]["component"]
    assert steady.startswith("dpu."), steady
    assert by_phase["steady"]["utilization"] > 0.5
    # Drain is quieter than steady state.
    assert (by_phase["drain"]["utilization"]
            <= by_phase["steady"]["utilization"])


def test_cli_end_to_end_perfetto_json_and_gate(tmp_path, capsys):
    """fig5 --perfetto --json-out, then compare gates the emitted doc."""
    trace_path = tmp_path / "trace.json"
    results_path = tmp_path / "results.json"
    base_path = tmp_path / "base.json"
    args = ["fig5", "--transport", "tcp", "--client", "dpu",
            "--rw", "randread", "--bs", "4k", "--jobs", "8",
            "--runtime", "0.01",
            "--perfetto", str(trace_path), "--json-out", str(results_path)]
    assert main(args) == 0
    capsys.readouterr()

    doc = json.loads(trace_path.read_text())
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["n_counter_tracks"] >= 5
    assert doc["otherData"]["n_spans"] > 0

    results = json.loads(results_path.read_text())
    assert results["format"] == "repro-fig5-v1"
    assert results["result"]["iops"] > 0
    assert all(row["ok"] for row in results["littles_law"].values())

    # Round-trip through the gate: snapshot, then self-compare passes.
    assert main(["compare", str(results_path), "--baseline", str(base_path),
                 "--write-baseline"]) == 0
    assert main(["compare", str(results_path),
                 "--baseline", str(base_path)]) == 0


def test_determinism_identical_runs_identical_telemetry():
    """The same cell twice: bit-identical results *and* telemetry."""
    a = run_fig5_observed("tcp", "dpu", "randread", 4096, 4,
                          runtime=0.005, sample_every=None)
    b = run_fig5_observed("tcp", "dpu", "randread", 4096, 4,
                          runtime=0.005, sample_every=None)
    assert a.result.to_dict() == b.result.to_dict()
    assert a.sampler.to_dict() == b.sampler.to_dict()
