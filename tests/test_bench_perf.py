"""Tests for the wall-clock perf harness (:mod:`repro.bench.perfbench`).

Wall-clock *values* are machine-dependent and not asserted; what is
pinned here is the deterministic part — event counts, document shape,
and the regression-gate logic the CI perf-smoke job relies on.
"""

import copy
import json

from repro.bench import perfbench as pb
from repro.hw.specs import MIB


def test_bench_kernel_counts_and_rate():
    out = pb.bench_kernel(n_events=5_000, repeat=1, warmup=0)
    # Deterministic: within one event of the requested census (the two
    # tickers' last timeouts may straddle `until`).
    assert abs(out["n_events"] - 5_000) <= 2
    assert out["timeouts_recycled"] > 0.9 * out["n_events"]
    assert out["events_per_sec"] > 0
    assert out["wall_s"] > 0


def test_bench_pipe_event_reduction_meets_floor():
    out = pb.bench_pipe(total_bytes=16 * MIB, transfer_bytes=MIB,
                        repeat=1, warmup=0)
    assert out["n_transfers"] == 16
    # Coalesced: O(1) events per uncontended transfer; chunked: one per
    # 64 KiB chunk.  The >=4x reduction is an acceptance criterion.
    assert out["event_reduction_x"] >= 4.0
    assert out["coalesced"]["coalesced_ops"] == 16
    assert out["chunked"]["coalesced_ops"] == 0
    assert out["coalesced"]["bytes_moved"] == out["chunked"]["bytes_moved"]


def test_bench_fig5_cells_shape():
    # The tiniest possible cell: enough to verify plumbing, not timing.
    cells = {"tiny": ("tcp", "dpu", "read", MIB, 1, 0.004)}
    out = pb.bench_fig5_cells(cells, repeat=1, warmup=0)
    cell = out["tiny"]
    assert cell["total_ios"] > 0
    assert cell["events_processed"] > cell["total_ios"]
    assert cell["events_per_io"] == cell["events_processed"] / cell["total_ios"]
    assert cell["wall_s"] > 0


def _fake_doc():
    return {
        "format": pb.FORMAT,
        "kernel": {"events_per_sec": 1e6},
        "pipe": {
            "event_reduction_x": 8.0,
            "coalesced": {"sim_mib_per_wall_sec": 1000.0,
                          "events_per_transfer": 2.0},
        },
        "fig5": {"cellA": {"events_per_io": 100.0}},
    }


def test_gate_passes_on_identical_docs():
    doc = _fake_doc()
    assert pb.check_against_baseline(doc, copy.deepcopy(doc)) == []


def test_gate_allows_wall_clock_noise_within_threshold():
    cur = _fake_doc()
    cur["kernel"]["events_per_sec"] = 0.75e6  # -25% < 30% tolerance
    cur["pipe"]["coalesced"]["sim_mib_per_wall_sec"] = 750.0
    assert pb.check_against_baseline(cur, _fake_doc()) == []


def test_gate_fails_on_rate_regression_beyond_threshold():
    cur = _fake_doc()
    cur["kernel"]["events_per_sec"] = 0.6e6  # -40%
    failures = pb.check_against_baseline(cur, _fake_doc(),
                                         max_regression=0.30)
    assert any("events_per_sec" in f for f in failures)


def test_gate_fails_when_events_creep_back():
    # The precise signal: deterministic event counts growing means the
    # coalescing/freelist machinery regressed, regardless of wall-clock.
    cur = _fake_doc()
    cur["pipe"]["coalesced"]["events_per_transfer"] = 4.0  # 2 -> 4
    cur["fig5"]["cellA"]["events_per_io"] = 130.0          # +30%
    failures = pb.check_against_baseline(cur, _fake_doc())
    assert any("events_per_transfer" in f for f in failures)
    assert any("fig5.cellA.events_per_io" in f for f in failures)


def test_gate_enforces_absolute_reduction_floor():
    cur = _fake_doc()
    base = _fake_doc()
    cur["pipe"]["event_reduction_x"] = base["pipe"]["event_reduction_x"] = 3.0
    failures = pb.check_against_baseline(cur, base)
    assert any("acceptance floor" in f for f in failures)


def test_gate_reports_missing_metric():
    cur = _fake_doc()
    del cur["fig5"]["cellA"]["events_per_io"]
    failures = pb.check_against_baseline(cur, _fake_doc())
    assert any("missing" in f for f in failures)


def test_committed_perf_baseline_is_loadable_and_self_consistent():
    # The file the CI perf-smoke job gates against must parse and carry
    # every gated metric.
    with open("benchmarks/baselines/perf_smoke.json") as fh:
        base = json.load(fh)
    assert base["format"] == pb.FORMAT
    assert base["pipe"]["event_reduction_x"] >= 4.0
    # A healthy current run against the committed baseline: reuse the
    # baseline itself as "current" — must pass its own gate.
    assert pb.check_against_baseline(copy.deepcopy(base), base) == []


def test_cli_perf_quick_roundtrip(tmp_path, capsys):
    from repro.bench.cli import main

    out = tmp_path / "perf.json"
    baseline = tmp_path / "base.json"
    rc = main(["perf", "--quick", "--repeat", "1", "--warmup", "0",
               "--out", str(out), "--write-baseline", str(baseline)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["format"] == pb.FORMAT
    assert doc["quick"] is True
    assert "summary" in doc and "fig5_speedup_vs_seed" in doc["summary"]
    # Checking a run against its own snapshot passes.  A generous rate
    # threshold keeps this robust on loaded CI machines — the
    # deterministic event-count gates are exact either way.
    rc = main(["perf", "--quick", "--repeat", "1", "--warmup", "0",
               "--max-regression", "0.90", "--check", str(baseline)])
    assert rc == 0
    assert "perf gate OK" in capsys.readouterr().out


def test_bench_campaign_determinism_and_cache():
    out = pb.bench_campaign(jobs=2, quick=True, repeat=1, warmup=0)
    # The hard determinism contract: the serial and the parallel ledger
    # are byte-identical, and the re-run hits the cache on every cell.
    assert out["records_mismatched"] == 0
    assert out["errors"] == 0
    assert out["cache_hits"] == out["n_cells"]
    assert out["cache_misses"] == 0
    # The cached re-run never simulates, so it's far faster than serial
    # (the committed BENCH_perf.json shows >100x; 2x is a safe floor).
    assert out["cached_speedup_x"] >= 2.0
    assert out["cpu_count"] >= 1
    assert out["serial_wall_s"] > 0 and out["parallel_wall_s"] > 0


def _fake_campaign_doc():
    doc = _fake_doc()
    doc["campaign"] = {
        "serial_cells_per_sec": 3.0,
        "cached_cells_per_sec": 500.0,
        "records_mismatched": 0,
        "errors": 0,
    }
    return doc


def test_gate_fails_on_campaign_mismatch_or_error():
    # records_mismatched and errors are gated as counts against a
    # baseline of 0 — any growth at all fails.
    cur = _fake_campaign_doc()
    cur["campaign"]["records_mismatched"] = 1
    failures = pb.check_against_baseline(cur, _fake_campaign_doc())
    assert any("records_mismatched" in f for f in failures)
    cur = _fake_campaign_doc()
    cur["campaign"]["errors"] = 2
    failures = pb.check_against_baseline(cur, _fake_campaign_doc())
    assert any("campaign.errors" in f for f in failures)


def test_gate_bounds_campaign_overhead_rates():
    cur = _fake_campaign_doc()
    cur["campaign"]["cached_cells_per_sec"] = 250.0  # -50% < floor
    failures = pb.check_against_baseline(cur, _fake_campaign_doc(),
                                         max_regression=0.30)
    assert any("cached_cells_per_sec" in f for f in failures)
    assert pb.check_against_baseline(_fake_campaign_doc(),
                                     _fake_campaign_doc()) == []


def test_committed_baseline_carries_campaign_gates():
    with open("benchmarks/baselines/perf_smoke.json") as fh:
        base = json.load(fh)
    camp = base["campaign"]
    assert camp["records_mismatched"] == 0
    assert camp["errors"] == 0
    assert camp["serial_cells_per_sec"] > 0
    assert camp["cached_cells_per_sec"] > 0
