"""Unit tests for ChaCha20 and the inline crypto service."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inline import ChaCha20, InlineCrypto
from repro.hw import make_paper_testbed
from repro.hw.specs import MIB
from repro.sim import Environment
from repro.storage.context import JobThread


# ---------------------------------------------------------------------------
# RFC 8439 test vectors
# ---------------------------------------------------------------------------

RFC_KEY = bytes(range(32))


def test_rfc8439_keystream_block():
    """RFC 8439 section 2.3.2 block-function test vector."""
    nonce = bytes.fromhex("000000090000004a00000000")
    ks = ChaCha20(RFC_KEY, nonce).keystream(1, 64)
    expected = bytes.fromhex(
        "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    )
    assert ks == expected


def test_rfc8439_encryption():
    """RFC 8439 section 2.4.2 sunscreen test vector (first block)."""
    nonce = bytes.fromhex("000000000000004a00000000")
    pt = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you o"
        b"nly one tip for the future, sunscreen would be it."
    )
    ct = ChaCha20(RFC_KEY, nonce).crypt(1, pt)
    assert ct[:16] == bytes.fromhex("6e2e359a2568f98041ba0728dd0d6981")
    assert ChaCha20(RFC_KEY, nonce).crypt(1, ct) == pt


def test_key_nonce_validation():
    with pytest.raises(ValueError):
        ChaCha20(b"short", bytes(12))
    with pytest.raises(ValueError):
        ChaCha20(bytes(32), b"short")
    c = ChaCha20(bytes(32), bytes(12))
    with pytest.raises(ValueError):
        c.keystream(0, 0)
    with pytest.raises(ValueError):
        c.crypt_at(-1, b"x")


def test_empty_payload():
    c = ChaCha20(bytes(32), bytes(12))
    assert c.crypt(1, b"") == b""
    assert c.crypt_at(100, b"") == b""


def test_crypt_at_seekable():
    """Encrypting a whole stream equals encrypting its pieces at offsets."""
    c = ChaCha20(RFC_KEY, bytes(12))
    data = bytes(range(256)) * 8  # 2048 bytes
    whole = c.crypt_at(0, data)
    # Odd split points exercise intra-block offsets.
    for split in [1, 63, 64, 65, 777, 2047]:
        first = c.crypt_at(0, data[:split])
        second = c.crypt_at(split, data[split:])
        assert first + second == whole, f"split at {split}"


@settings(max_examples=40, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=10_000),
    data=st.binary(min_size=1, max_size=1024),
)
def test_crypt_at_roundtrip_property(offset, data):
    c = ChaCha20(RFC_KEY, bytes(12))
    assert c.crypt_at(offset, c.crypt_at(offset, data)) == data


@settings(max_examples=20, deadline=None)
@given(data=st.binary(min_size=1, max_size=512))
def test_different_keys_differ(data):
    a = ChaCha20(bytes(32), bytes(12)).crypt_at(0, data)
    b = ChaCha20(bytes([1]) + bytes(31), bytes(12)).crypt_at(0, data)
    assert a != b or len(data) == 0


# ---------------------------------------------------------------------------
# InlineCrypto timing
# ---------------------------------------------------------------------------

def test_dpu_accelerated_by_default():
    env = Environment()
    top = make_paper_testbed(env, client="dpu")
    crypto = InlineCrypto(top.client, bytes(32))
    assert crypto.accelerated
    host_crypto = InlineCrypto(top.launcher, bytes(32))
    assert not host_crypto.accelerated


def test_accelerated_crypto_cheaper_than_software():
    def run(client, accelerated):
        env = Environment()
        top = make_paper_testbed(env, client=client)
        crypto = InlineCrypto(top.client, bytes(32), accelerated=accelerated)
        ctx = JobThread(env, "t", factor=top.client.spec.cycle_factor)

        def proc(env):
            for _ in range(8):
                yield from crypto.crypt(ctx, 0, nbytes=MIB)

        env.process(proc(env))
        env.run()
        return env.now

    assert run("dpu", True) < run("host", False)


def test_crypto_functional_and_timed():
    env = Environment()
    top = make_paper_testbed(env, client="dpu")
    crypto = InlineCrypto(top.client, RFC_KEY)
    ctx = JobThread(env, "t")
    got = []

    def proc(env):
        ct = yield from crypto.crypt(ctx, 0, data=b"secret words")
        pt = yield from crypto.crypt(ctx, 0, data=ct)
        got.append((ct, pt))

    env.process(proc(env))
    env.run()
    ct, pt = got[0]
    assert ct != b"secret words"
    assert pt == b"secret words"
    assert env.now > 0
    assert crypto.bytes_processed == 24


def test_crypt_requires_size_or_data():
    env = Environment()
    top = make_paper_testbed(env)
    crypto = InlineCrypto(top.client, bytes(32))
    ctx = JobThread(env, "t")
    with pytest.raises(ValueError):
        list(crypto.crypt(ctx, 0))
