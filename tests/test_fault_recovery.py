"""Recovery-path tests: error propagation, degraded reads, end-to-end chaos.

Covers the failure semantics DESIGN.md §14 promises: RPC errors carry
op/target/sim-time context, degraded reads are counted at the engine,
an injected engine crash rebuilds and heals, and small end-to-end chaos
cells (tcp_reset, NVMe media error) recover with conservation intact.
"""

import pytest

from repro.daos import DaosClient, DaosEngine
from repro.daos.rpc import RpcClient, RpcError, RpcServer, RpcTimeout
from repro.daos.types import DaosError, ObjectClass
from repro.faults.plan import FaultEvent, FaultPlan
from repro.hw import make_paper_testbed
from repro.net import Fabric
from repro.sim import Environment


# ---------------------------------------------------------------------------
# RPC error context (regression: bare RpcError lost op/target/time)
# ---------------------------------------------------------------------------

def rpc_setup(provider="ucx+rc"):
    env = Environment()
    top = make_paper_testbed(env)
    fab = Fabric(env)
    ch = fab.connect(top.client, top.server, provider)
    server = RpcServer(top.server)
    client = RpcClient(top.client, ch).start()
    return env, top, ch, server, client


def test_rpc_error_carries_context():
    env, top, ch, server, client = rpc_setup()

    def failing(args, src, channel):
        yield env.timeout(0)
        raise DaosError("backend exploded")

    server.register("boom", failing)
    server.serve(ch)

    def main(env):
        yield from client.call("boom", {})

    p = env.process(main(env))
    with pytest.raises(RpcError) as ei:
        env.run(until=p)
    exc = ei.value
    assert exc.remote_error == "DaosError: backend exploded"
    assert exc.op == "boom"
    assert exc.target == top.server.name
    assert exc.sim_time is not None and exc.sim_time > 0
    # The rendered message locates the failure without attribute access.
    assert "op=boom" in str(exc)
    assert f"target={top.server.name}" in str(exc)


def test_rpc_timeout_carries_context_and_drops_late_reply():
    env, top, ch, server, client = rpc_setup()

    def slow(args, src, channel):
        yield env.timeout(0.02)
        return {"late": True}

    server.register("slow", slow)
    server.serve(ch)

    def main(env):
        yield from client.call("slow", {}, deadline=0.001)

    p = env.process(main(env))
    with pytest.raises(RpcTimeout) as ei:
        env.run(until=p)
    assert ei.value.op == "slow"
    assert ei.value.sim_time is not None
    assert "no reply within" in str(ei.value)
    # Drain the heap: the late reply must be dropped by the demux, not
    # crash it or leak into a later call's pending slot.
    env.run()
    assert not client._pending


# ---------------------------------------------------------------------------
# Degraded reads at the engine (replication + erasure coding)
# ---------------------------------------------------------------------------

def engine_setup(fault_plan=None):
    env = Environment()
    if fault_plan is not None:
        fault_plan.install(env)
    top = make_paper_testbed(env, n_ssds=1)
    fab = Fabric(env)
    engine = DaosEngine(top.server, data_mode=True)
    pool = engine.create_pool()
    ch = fab.connect(top.client, top.server, "ucx+rc")
    engine.serve(ch)
    daos = DaosClient(top.client, ch, data_mode=True)
    ctx = daos.new_context()

    def go(env):
        ph = yield from daos.connect_pool(ctx, pool)
        return (yield from ph.create_container(ctx))

    p = env.process(go(env))
    env.run(until=p)
    return env, engine, daos, ctx, p.value


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def make_payload(n_stripes=2):
    from repro.daos.erasure import STRIPE_BYTES
    return bytes((i * 31 + 5) % 256 for i in range(n_stripes * STRIPE_BYTES))


def test_rp2_failover_read_is_counted_degraded():
    env, engine, daos, ctx, cont = engine_setup()
    payload = b"r" * 4096

    def go(env):
        oids = yield from cont.alloc_oid(ctx, ObjectClass.RP2, 1)
        obj = cont.obj(oids[0])
        yield from obj.update(ctx, b"d", b"a", 0, data=payload)
        primary = engine.replicas_for(obj.oid, b"d")[0]
        engine.fail_target(primary.index)
        got = yield from obj.fetch(ctx, b"d", b"a", 0, len(payload))
        primary.down = False
        healthy = yield from obj.fetch(ctx, b"d", b"a", 0, len(payload))
        return got, healthy

    assert engine.degraded_reads == 0
    got, healthy = run(env, go(env))
    assert got == payload and healthy == payload
    # Only the failover read counts; the healthy one takes the fast path.
    assert engine.degraded_reads == 1


@pytest.mark.parametrize("victim,degraded", [(0, 1), (1, 1), (2, 0)])
def test_ec_loss_patterns_count_degraded_reads(victim, degraded):
    # Losing either data cell forces an XOR reconstruction (degraded);
    # losing only the parity leaves the data path healthy.
    env, engine, daos, ctx, cont = engine_setup()
    payload = make_payload()

    def go(env):
        oids = yield from cont.alloc_oid(ctx, ObjectClass.EC2P1, 1)
        obj = cont.obj(oids[0])
        yield from obj.update(ctx, b"d", b"a", 0, data=payload)
        engine.fail_target(engine.ec_targets(obj.oid, b"d")[victim].index)
        return (yield from obj.fetch(ctx, b"d", b"a", 0, len(payload)))

    assert run(env, go(env)) == payload
    assert engine.degraded_reads == degraded


def test_ec_double_fault_is_fatal_not_retried():
    from repro.faults.retry import is_retryable

    env, engine, daos, ctx, cont = engine_setup()
    payload = make_payload(1)

    def go(env):
        oids = yield from cont.alloc_oid(ctx, ObjectClass.EC2P1, 1)
        obj = cont.obj(oids[0])
        yield from obj.update(ctx, b"d", b"a", 0, data=payload)
        targets = engine.ec_targets(obj.oid, b"d")
        engine.fail_target(targets[0].index)
        engine.fail_target(targets[1].index)
        yield from obj.fetch(ctx, b"d", b"a", 0, len(payload))

    p = env.process(go(env))
    with pytest.raises(RpcError, match="too many targets") as ei:
        env.run(until=p)
    # The retry classifier must not spin on an unrecoverable loss.
    assert not is_retryable(ei.value)
    assert engine.degraded_reads == 0


# ---------------------------------------------------------------------------
# Injected engine crash: fail -> degraded reads -> rebuild -> healed
# ---------------------------------------------------------------------------

def test_engine_crash_rebuilds_and_heals():
    # Discovery pass (deterministic): learn which target holds EC cell 0.
    env, engine, daos, ctx, cont = engine_setup()

    def discover(env):
        oids = yield from cont.alloc_oid(ctx, ObjectClass.EC2P1, 1)
        return engine.ec_targets(cont.obj(oids[0]).oid, b"d")[0].index

    victim = run(env, discover(env))

    # Real pass: the injector crashes that target 1 ms after arming and
    # restarts+rebuilds it 2 ms later.
    plan = FaultPlan(events=(
        FaultEvent(kind="engine_crash", target=f"engine.target{victim}",
                   at=0.001, duration=0.002),
    ))
    env, engine, daos, ctx, cont = engine_setup(fault_plan=plan)
    fx = env._faults
    payload = make_payload()

    def go(env):
        oids = yield from cont.alloc_oid(ctx, ObjectClass.EC2P1, 1)
        obj = cont.obj(oids[0])
        yield from obj.update(ctx, b"d", b"a", 0, data=payload)
        fx.arm(env.now)
        yield env.timeout(0.002)  # inside the outage window
        during = yield from obj.fetch(ctx, b"d", b"a", 0, len(payload))
        degraded_then = engine.degraded_reads
        yield env.timeout(0.02)   # well past restart + rebuild
        after = yield from obj.fetch(ctx, b"d", b"a", 0, len(payload))
        return during, after, degraded_then

    during, after, degraded_then = run(env, go(env))
    env.run()  # drain: let the rebuild process finish if still running
    assert during == payload and after == payload
    assert fx.stats.injected == {"engine_crash": 1}
    assert degraded_then >= 1
    # Healed: the target is back and post-rebuild reads are not degraded.
    assert not engine.targets[victim].down
    assert engine.degraded_reads == degraded_then


# ---------------------------------------------------------------------------
# End-to-end chaos cells (small): tcp_reset and NVMe media errors
# ---------------------------------------------------------------------------

def run_small_chaos(transport, events, seed_key="chaos"):
    from repro.bench.runner import run_fig5_chaos

    plan = FaultPlan(events=tuple(events), seed_key=seed_key)
    return run_fig5_chaos(transport, "dpu", "randread", 4096, 4, plan,
                          runtime=0.01, sample_every=10)


def test_tcp_reset_recovers_with_conservation():
    from repro.bench.chaos import chaos_sections

    chaos = run_small_chaos("tcp", [
        FaultEvent(kind="tcp_reset", target="dpu.tcp", at=0.005,
                   duration=0.001),
    ])
    stats = chaos.stats
    assert stats.injected == {"tcp_reset": 1}
    # The reset window drops replies; deadlines + retries ride it out.
    assert stats.replies_dropped > 0
    assert stats.timeouts > 0
    assert stats.retries > 0
    assert stats.submitted == stats.completed + stats.failed
    sections = chaos_sections(chaos.run.result, stats, chaos.plan,
                              tracer=chaos.run.tracer)
    assert sections["ok"], sections["checks"]
    assert any(name.startswith("fault:dpu.tcp")
               for name in sections["fault_blame"])


def test_nvme_media_errors_are_retried_to_success():
    chaos = run_small_chaos("rdma", [
        FaultEvent(kind="nvme_media_error", target="nvme.ssd0", at=0.004,
                   duration=0.002),
    ])
    stats = chaos.stats
    assert stats.injected == {"nvme_media_error": 1}
    assert stats.retries > 0
    assert stats.submitted == stats.completed + stats.failed
    # Media errors are transient here (the window closes): every op
    # eventually succeeds, so the window shows full goodput.
    assert chaos.run.result.errors == 0
    assert stats.failed == 0
