"""Tracing must be free when off: identical results, zero allocations.

The design rule in :mod:`repro.sim.spans` is that spans never schedule
events or touch the event loop, so a traced run is *bit-identical* to an
untraced one, and the only hot-loop cost with no collector attached is an
``is not None`` test (no Span objects are ever created).
"""

import repro.sim.spans as spans_mod
from repro.bench.runner import run_fig5_cell, run_fig5_traced
from repro.sim import SpanCollector


def _cell(**kw):
    return run_fig5_cell("tcp", "dpu", "randread", 4096, 2,
                         runtime=0.004, **kw)


class TestTracedRunsAreBitIdentical:
    def test_same_result_with_and_without_collector(self):
        base = _cell()
        traced, col, _ = run_fig5_traced("tcp", "dpu", "randread", 4096, 2,
                                         runtime=0.004, sample_every=10)
        assert col.traces_started > 0
        assert traced.total_ios == base.total_ios
        assert traced.iops == base.iops
        assert traced.latency == base.latency
        assert traced.bandwidth == base.bandwidth

    def test_sampled_out_requests_do_not_perturb(self):
        """A collector that samples (almost) nothing == no collector."""
        base = _cell()
        # sample_every larger than the request count: only the very first
        # request is traced, every later trace() returns None.
        traced, col, _ = run_fig5_traced("tcp", "dpu", "randread", 4096, 2,
                                         runtime=0.004,
                                         sample_every=10_000_000)
        assert col.traces_started == 1
        assert col.requests_seen > 10
        assert traced.total_ios == base.total_ios
        assert traced.iops == base.iops
        assert traced.latency == base.latency


class TestZeroCostWhenOff:
    def test_no_spans_allocated_without_collector(self):
        """The global span-id counter must not move during an untraced run."""
        before = next(spans_mod._span_ids)
        _cell()
        after = next(spans_mod._span_ids)
        assert after == before + 1

    def test_unsampled_requests_allocate_no_spans(self):
        """Only the single sampled request (the first) allocates spans."""
        before = next(spans_mod._span_ids)
        _, col, _ = run_fig5_traced("tcp", "dpu", "randread", 4096, 2,
                                    runtime=0.004, sample_every=10_000_000)
        after = next(spans_mod._span_ids)
        allocated = after - before - 1  # minus this probe's own next()
        # One trace's worth of spans (a few dozen stages), not one per I/O.
        assert col.requests_seen > 10
        assert allocated <= 50

    def test_collector_absent_means_no_trace_kwarg_cost(self):
        """run_fio with collector=None never calls SpanCollector.trace."""
        calls = []
        orig = SpanCollector.trace
        SpanCollector.trace = lambda self, *a, **k: calls.append(1) or orig(
            self, *a, **k)
        try:
            _cell(collector=None)
        finally:
            SpanCollector.trace = orig
        assert calls == []
